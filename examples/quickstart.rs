//! Quickstart: profile a small kernel with two sampling methods and
//! compare their accuracy against instrumented ground truth.
//!
//! ```text
//! cargo run --release -p countertrust --example quickstart
//! ```

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::Session;
use ct_isa::asm::assemble;
use ct_sim::MachineModel;

fn main() {
    // 1. A workload: assemble it from text (builders work too — see the
    //    ct-workloads crate for programmatic generation).
    let program = assemble(
        "quickstart",
        r#"
        .func main
            movi r1, 300000
            movi r4, 3
        top:
            andi r2, r1, 1
            brz r2, even
            div r3, r3, r4      ; long-latency path
            nop
            jmp next
        even:
            add r3, r3, r4
            nop
            nop
        next:
            addi r5, r5, 1
            subi r1, r1, 1
            brnz r1, top
            halt
        .endfunc
        "#,
    )
    .expect("valid assembly");

    // 2. A machine: the paper's Ivy Bridge (PEBS + PDIR + LBR).
    let machine = MachineModel::ivy_bridge();

    // 3. A session binds machine and program, and lazily collects the
    //    exact reference profile (the paper's Pin "REF" run).
    let mut session = Session::new(&machine, &program);
    let total = session
        .reference()
        .expect("reference run")
        .total_instructions();
    println!("workload retired {total} instructions\n");

    // 4. Run sampling methods and compare.
    let opts = MethodOptions::default();
    println!("{:<22} {:>10} {:>9}", "method", "samples", "error");
    for kind in [
        MethodKind::Classic,
        MethodKind::PrecisePrime,
        MethodKind::PreciseFix,
        MethodKind::Lbr,
    ] {
        let inst = kind
            .instantiate(&machine, &opts)
            .expect("supported on Ivy Bridge");
        let run = session.run_method(&inst, 42).expect("profiling run");
        println!(
            "{:<22} {:>10} {:>8.2}%",
            kind.label(),
            run.samples,
            run.accuracy_error * 100.0
        );
    }
    println!(
        "\nLower is better; the error is sum |BB_est - BB_ref| / instructions (§3.3 \
         of the paper). Classic sampling mis-attributes the div's shadow; the \
         LBR stack walk reconstructs basic-block counts almost exactly."
    );
}
