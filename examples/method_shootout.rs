//! A compact Table-1-style shootout: every method on every machine for a
//! chosen kernel, in one screen.
//!
//! ```text
//! cargo run --release -p countertrust --example method_shootout -- [kernel]
//! # kernels: latency_biased callchain g4box test40
//! ```

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::Session;
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = args.first().map_or("latency_biased", String::as_str);
    let kernels = ct_workloads::kernel_set(0.5);
    let Some(w) = kernels.iter().find(|w| w.name == kernel) else {
        eprintln!(
            "unknown kernel `{kernel}`; available: {}",
            kernels
                .iter()
                .map(|w| w.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    println!(
        "method shootout on kernel `{}` (accuracy error, lower is better)\n",
        w.name
    );
    print!("{:<32}", "machine");
    for kind in MethodKind::ALL {
        print!("{:>20}", kind.label());
    }
    println!();

    let opts = MethodOptions::default();
    for machine in MachineModel::paper_machines() {
        let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
        print!("{:<32}", machine.name);
        for kind in MethodKind::ALL {
            match kind.instantiate(&machine, &opts) {
                Some(inst) => match session.run_method(&inst, 3) {
                    Ok(run) => print!("{:>19.1}%", run.accuracy_error * 100.0),
                    Err(e) => {
                        print!("{:>20}", format!("err:{e:.12}"));
                    }
                },
                None => print!("{:>20}", "n/a"),
            }
        }
        println!();
    }
    println!(
        "\nShapes to look for: classic is worst; prime periods beat round ones; \
         the PDIR fix column collapses only on Ivy Bridge (the machine that has \
         PDIR); LBR wins nearly everywhere it exists; AMD never gets the LBR \
         or fix columns."
    );
}
