//! Multi-tenant serving in miniature: two named catalogs behind one
//! shared profile cache — with per-tenant residency quotas and weighted
//! round-robin fairness, so neither tenant can starve the other —
//! JSON-lines requests streamed through the staged intake pipeline
//! (intake → plan(registry) → build → evaluate) with per-request latency
//! stamping, and the per-tenant accounting printed last. A coda serves
//! the same service over TCP and drives it with a keep-alive
//! protocol-v2 client multiplexing two logical streams on one
//! connection.
//!
//! ```text
//! cargo run --release -p countertrust --example serve_requests
//! ```

use countertrust::cache::{AdmissionPolicy, CacheQuotas};
use countertrust::methods::MethodOptions;
use countertrust::serve::{
    Catalog, CatalogRegistry, EvalService, FairnessPolicy, PipelineOptions,
};
use ct_bench_shim::workload_specs;
use ct_sim::MachineModel;

/// The bench crate owns the full stream generators; this example stays
/// dependency-light and inlines the one helper it needs.
mod ct_bench_shim {
    use countertrust::grid::WorkloadSpec;
    use ct_workloads::Workload;

    pub fn workload_specs(workloads: &[Workload]) -> Vec<WorkloadSpec<'_>> {
        workloads
            .iter()
            .map(|w| WorkloadSpec {
                name: &w.name,
                program: &w.program,
                run_config: &w.run_config,
            })
            .collect()
    }
}

fn main() {
    // Tenant "default": the full paper matrix over the kernel set.
    let machines = MachineModel::paper_machines();
    let kernels = ct_workloads::kernel_set(0.02);
    let kernel_specs = workload_specs(&kernels);

    // Tenant "apps": Intel-only machines over the application proxies —
    // same registry, its own method options, sharing the one cache.
    let intel = MachineModel::intel_machines();
    let apps = ct_workloads::applications(0.01);
    let app_specs = workload_specs(&apps);

    let registry = CatalogRegistry::new(Catalog::new(&machines, &kernel_specs))
        .register(
            "apps",
            Catalog::new(&intel, &app_specs).method_options(MethodOptions::fast()),
        );

    // What clients send over the wire: one JSON request per line. Lines
    // 1–2 hit the default catalog (no `catalog` field — the pre-registry
    // wire format), line 3 is not JSON at all, line 4 names a catalog
    // nobody registered, and lines 5–6 are tenant traffic for "apps".
    // Every failure comes back as an in-order error response; the
    // pipeline keeps draining.
    let wire = r#"
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"lbr","runs":3,"seed":7}
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"classic","runs":3,"seed":7}
this line is not a request at all
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"lbr","runs":1,"seed":7,"catalog":"nope"}
{"machine":"Westmere (Xeon X5650)","workload":"mcf","method":"precise","runs":2,"seed":9,"catalog":"apps"}
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"povray","method":"lbr","runs":1,"seed":5,"catalog":"apps"}
"#;

    // Each tenant may keep at most four entries resident in the shared
    // 8-slot cache, and the pipeline interleaves the tenants' work
    // round-robin — neither knob changes a single response byte.
    let service = EvalService::with_registry(registry)
        .method_options(MethodOptions::fast())
        .cache_capacity(8)
        .admission(AdmissionPolicy::Frequency)
        .cache_quotas(CacheQuotas::per_catalog(4));

    // Requests flow straight from the reader: while one chunk evaluates,
    // the next chunk's reference profiles are already building. Latency
    // stamping adds queue/build/eval micros to every response (and makes
    // the output wall-clock-dependent — leave it off when byte-identity
    // matters).
    println!("# responses");
    let mut stdout = std::io::stdout().lock();
    let pipeline = service
        .serve_pipelined(
            wire.as_bytes(),
            &mut stdout,
            &PipelineOptions::new()
                .depth(2)
                .chunk(2)
                .record_latency(true)
                .fairness(FairnessPolicy::Weighted),
        )
        .expect("stdout accepts responses");
    drop(stdout);

    let stats = service.stats();
    let cache = service.cache_stats();
    println!("# accounting");
    println!(
        "catalogs {:?} | lines {} | requests {} | parse errors {} | chunks {}",
        service.registry().names().collect::<Vec<_>>(),
        pipeline.lines,
        pipeline.requests,
        pipeline.parse_errors,
        pipeline.chunks
    );
    println!(
        "requests {} | cache hits {} | builds {} | errors {} | hit rate {:.0}%",
        stats.requests,
        stats.cache_hits,
        stats.builds,
        stats.errors,
        stats.hit_rate() * 100.0
    );
    println!(
        "latency p50 {} µs | p99 {} µs over {} timed requests",
        stats.latency_p50_us, stats.latency_p99_us, stats.timed_requests
    );
    for tenant in &stats.tenants {
        println!(
            "tenant {:<7} requests {} | hit rate {:.0}% | p99 {} µs | errors {}",
            tenant.catalog,
            tenant.requests,
            tenant.hit_rate() * 100.0,
            tenant.latency_p99_us,
            tenant.errors
        );
    }
    println!("cache: {cache}");

    // --- Protocol v2 coda: the same service behind a socket --------------
    // One keep-alive connection carries two logical streams of tagged
    // frames — tenant traffic for "apps" on stream 0, default-catalog
    // traffic on stream 1. Within a stream, responses come back in
    // request order and are byte-identical to what a plain v1 connection
    // carrying that stream's lines would return (the server negotiates
    // the protocol per connection; v1 clients need no changes).
    use countertrust::serve::net::{EvalServer, NetOptions};
    use countertrust::serve::proto::exchange_v2;

    let server = EvalServer::listen("127.0.0.1:0", NetOptions::default())
        .expect("loopback listener binds");
    let addr = server.local_addr();
    let handle = server.handle();
    let streams = [
        concat!(
            r#"{"machine":"Westmere (Xeon X5650)","workload":"mcf","method":"precise","runs":2,"seed":9,"catalog":"apps"}"#,
            "\n",
            r#"{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"povray","method":"lbr","runs":1,"seed":5,"catalog":"apps"}"#,
            "\n"
        )
        .to_string(),
        concat!(
            r#"{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"classic","runs":3,"seed":7}"#,
            "\n"
        )
        .to_string(),
    ];
    let replies = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&service));
        let replies = exchange_v2(addr, &streams).expect("v2 loopback exchange");
        handle.shutdown();
        serving
            .join()
            .expect("server thread")
            .expect("accept loop stays clean");
        replies
    });
    println!(
        "# protocol v2: one keep-alive connection, {} multiplexed streams",
        streams.len()
    );
    for (s, reply) in replies.iter().enumerate() {
        for line in reply.lines() {
            println!("stream {s}: {line}");
        }
    }

    // --- Data-catalog coda: a directory served as a tenant ---------------
    // Workloads are data: author a `.ctasm` source and a JSON manifest,
    // point the server at the directory, and it becomes a served tenant
    // catalog (named after the directory) — assembled, size-checked and
    // rejected with typed errors *before* the first accept. Requests
    // address it with `"catalog":"<dirname>"`.
    use countertrust::serve::net::exchange;

    let dir = std::env::temp_dir().join(format!("ct_example_catalog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(
        dir.join("00_spin.json"),
        r#"{
  "name": "spin",
  "class": "kernel",
  "source": "00_spin.ctasm",
  "scaled": { "N": { "base": 40000, "min": 100 } }
}
"#,
    )
    .expect("manifest");
    std::fs::write(
        dir.join("00_spin.ctasm"),
        "; A counted loop, sized by the manifest's scaled constant.\n\
         .const N = 40000\n\
         .func main\n    movi r1, N\ntop:\n    addi r2, r2, 1\n    subi r1, r1, 1\n    brnz r1, top\n    halt\n.endfunc\n",
    )
    .expect("source");
    let tenant = dir.file_name().unwrap().to_string_lossy().into_owned();

    let server = EvalServer::listen(
        "127.0.0.1:0",
        NetOptions::new().workload_dir(&dir).workload_scale(0.5),
    )
    .expect("loopback listener binds");
    // configure_service compiles the directory into the served registry;
    // a malformed catalog errors out here, not at request time.
    let service = server
        .configure_service(service)
        .expect("catalog directory is well-formed");
    let addr = server.local_addr();
    let handle = server.handle();
    let wire = format!(
        "{{\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"spin\",\"method\":\"classic\",\"runs\":2,\"seed\":11,\"catalog\":\"{tenant}\"}}\n"
    );
    let reply = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&service));
        let reply = exchange(addr, &wire).expect("loopback exchange");
        handle.shutdown();
        serving
            .join()
            .expect("server thread")
            .expect("accept loop stays clean");
        reply
    });
    println!("# data catalog: directory {tenant:?} served as a tenant");
    for line in reply.lines() {
        println!("{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
