//! Serving mode in miniature: parse JSON-lines evaluation requests,
//! serve them as one batch through the profile cache, and print JSON-lines
//! responses plus the cache accounting.
//!
//! ```text
//! cargo run --release -p countertrust --example serve_requests
//! ```

use countertrust::methods::MethodOptions;
use countertrust::serve::{EvalRequest, EvalService};
use ct_bench_shim::workload_specs;
use ct_sim::MachineModel;

/// The bench crate owns the full stream generators; this example stays
/// dependency-light and inlines the one helper it needs.
mod ct_bench_shim {
    use countertrust::grid::WorkloadSpec;
    use ct_workloads::Workload;

    pub fn workload_specs(workloads: &[Workload]) -> Vec<WorkloadSpec<'_>> {
        workloads
            .iter()
            .map(|w| WorkloadSpec {
                name: &w.name,
                program: &w.program,
                run_config: &w.run_config,
            })
            .collect()
    }
}

fn main() {
    let machines = MachineModel::paper_machines();
    let workloads = ct_workloads::kernel_set(0.02);
    let specs = workload_specs(&workloads);

    // What a client would send over the wire: one JSON request per line.
    // The third line is deliberately bad — errors come back as responses,
    // they never take the service down.
    let wire = r#"
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"lbr","runs":3,"seed":7}
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"classic","runs":3,"seed":7}
{"machine":"Magny-Cours (Opteron 6164 HE)","workload":"callchain","method":"lbr","runs":1,"seed":7}
{"machine":"Westmere (Xeon X5650)","workload":"g4box","method":"precise+prime+rand","runs":2,"seed":9}
"#;
    let requests: Vec<EvalRequest> = wire
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("well-formed request line"))
        .collect();

    let service = EvalService::new(&machines, &specs)
        .method_options(MethodOptions::fast())
        .cache_capacity(8);

    println!("# responses");
    print!("{}", service.serve_jsonl(&requests));

    let stats = service.stats();
    let cache = service.cache_stats();
    println!("# accounting");
    println!(
        "requests {} | cache hits {} | builds {} | errors {} | hit rate {:.0}%",
        stats.requests,
        stats.cache_hits,
        stats.builds,
        stats.errors,
        stats.hit_rate() * 100.0
    );
    println!(
        "cache: {} resident / capacity 8, {} evictions",
        cache.resident, cache.evictions
    );
}
