//! Serving mode in miniature: stream JSON-lines evaluation requests
//! through the staged intake pipeline (intake → plan → build → evaluate)
//! and print JSON-lines responses plus the cache accounting.
//!
//! ```text
//! cargo run --release -p countertrust --example serve_requests
//! ```

use countertrust::cache::AdmissionPolicy;
use countertrust::methods::MethodOptions;
use countertrust::serve::{EvalService, PipelineOptions};
use ct_bench_shim::workload_specs;
use ct_sim::MachineModel;

/// The bench crate owns the full stream generators; this example stays
/// dependency-light and inlines the one helper it needs.
mod ct_bench_shim {
    use countertrust::grid::WorkloadSpec;
    use ct_workloads::Workload;

    pub fn workload_specs(workloads: &[Workload]) -> Vec<WorkloadSpec<'_>> {
        workloads
            .iter()
            .map(|w| WorkloadSpec {
                name: &w.name,
                program: &w.program,
                run_config: &w.run_config,
            })
            .collect()
    }
}

fn main() {
    let machines = MachineModel::paper_machines();
    let workloads = ct_workloads::kernel_set(0.02);
    let specs = workload_specs(&workloads);

    // What a client would send over the wire: one JSON request per line.
    // The third line is not even JSON and the fourth names a method AMD
    // cannot run — both come back as in-order error responses, and the
    // pipeline keeps draining; errors never take the service down.
    let wire = r#"
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"lbr","runs":3,"seed":7}
{"machine":"Ivy Bridge (Xeon E3-1265L)","workload":"callchain","method":"classic","runs":3,"seed":7}
this line is not a request at all
{"machine":"Magny-Cours (Opteron 6164 HE)","workload":"callchain","method":"lbr","runs":1,"seed":7}
{"machine":"Westmere (Xeon X5650)","workload":"g4box","method":"precise+prime+rand","runs":2,"seed":9}
"#;

    let service = EvalService::new(&machines, &specs)
        .method_options(MethodOptions::fast())
        .cache_capacity(8)
        .admission(AdmissionPolicy::Frequency);

    // Requests flow straight from the reader: while one chunk evaluates,
    // the next chunk's reference profiles are already building.
    println!("# responses");
    let mut stdout = std::io::stdout().lock();
    let pipeline = service
        .serve_pipelined(
            wire.as_bytes(),
            &mut stdout,
            &PipelineOptions::new().depth(2).chunk(2),
        )
        .expect("stdout accepts responses");
    drop(stdout);

    let stats = service.stats();
    let cache = service.cache_stats();
    println!("# accounting");
    println!(
        "lines {} | requests {} | parse errors {} | chunks {}",
        pipeline.lines, pipeline.requests, pipeline.parse_errors, pipeline.chunks
    );
    println!(
        "requests {} | cache hits {} | builds {} | errors {} | hit rate {:.0}%",
        stats.requests,
        stats.cache_hits,
        stats.builds,
        stats.errors,
        stats.hit_rate() * 100.0
    );
    println!(
        "cache: {} resident / capacity 8 ({} admission), {} evictions, {} rejected",
        cache.resident,
        AdmissionPolicy::Frequency.name(),
        cache.evictions,
        cache.rejected
    );
}
