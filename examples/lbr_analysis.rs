//! LBR anatomy: capture one sample's frozen Last Branch Record stack,
//! print its entries, walk the §3.2 segments, and show the reconstructed
//! basic blocks — the machinery behind the paper's most accurate method.
//!
//! ```text
//! cargo run --release -p countertrust --example lbr_analysis
//! ```

use countertrust::lbrwalk::{credit_stack, segments};
use countertrust::methods::{MethodKind, MethodOptions};
use ct_isa::Cfg;
use ct_pmu::Sampler;
use ct_sim::{Cpu, MachineModel, RunConfig};

fn main() {
    let program = ct_workloads::kernels::g4box(5_000);
    let machine = MachineModel::ivy_bridge();
    let cfg = Cfg::build(&program);

    let inst = MethodKind::Lbr
        .instantiate(&machine, &MethodOptions::default())
        .expect("LBR available on Ivy Bridge");
    let mut sampler = Sampler::new(&machine, &inst.config).expect("valid config");
    let nominal = sampler.nominal_period();
    Cpu::new(&machine)
        .run(&program, &RunConfig::default(), &mut [&mut sampler])
        .expect("run");
    let batch = sampler.into_batch();
    println!(
        "collected {} LBR samples (taken-branch period {nominal})\n",
        batch.len()
    );

    let sample = &batch.samples[batch.len() / 2];
    let lbr = sample.lbr.as_ref().expect("LBR attached");
    println!("one frozen 16-entry stack (oldest first):");
    println!("{:>4}  {:>8} -> {:<8}", "#", "from", "to");
    for (i, e) in lbr.iter().enumerate() {
        println!("{i:>4}  {:>8} -> {:<8}", e.from, e.to);
    }

    let segs = segments(lbr);
    println!(
        "\n{} straight-line segments between consecutive entries:",
        segs.len()
    );
    for s in &segs {
        let nblocks = cfg.block_of(s.end) - cfg.block_of(s.start) + 1;
        println!(
            "  [{:>5}, {:>5}]  ({} instructions, {} basic blocks, each executed exactly once)",
            s.start,
            s.end,
            s.end - s.start + 1,
            nblocks,
        );
    }

    // Accumulate all stacks into per-block estimated instruction counts.
    let mut bb_mass = vec![0.0; cfg.num_blocks()];
    for s in &batch.samples {
        if let Some(lbr) = &s.lbr {
            credit_stack(lbr, &cfg, nominal, &mut bb_mass);
        }
    }
    let reference =
        ct_instrument::ReferenceProfile::collect(&machine, &program, &RunConfig::default())
            .expect("reference");
    println!("\nhottest blocks, estimated vs exact instruction counts:");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "block", "estimated", "exact", "len"
    );
    let scale: f64 = reference.total_instructions() as f64 / bb_mass.iter().sum::<f64>();
    let mut order: Vec<usize> = (0..bb_mass.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(reference.bb_instructions[i]));
    for &i in order.iter().take(10) {
        println!(
            "{:>6} {:>12.0} {:>12} {:>8}",
            i,
            bb_mass[i] * scale,
            reference.bb_instructions[i],
            cfg.block(i as u32).len(),
        );
    }
}
