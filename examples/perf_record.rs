//! A miniature `perf record` / `perf report`: profile a named workload
//! with a named method and print the hot-function table, annotated with
//! the exact (instrumented) shares for comparison.
//!
//! ```text
//! cargo run --release -p countertrust --example perf_record -- [workload] [method] [machine]
//! # e.g.
//! cargo run --release -p countertrust --example perf_record -- omnetpp lbr ivb
//! ```

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::Session;
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_name = args.first().map_or("omnetpp", String::as_str);
    let method_name = args.get(1).map_or("lbr", String::as_str);
    let machine_name = args.get(2).map_or("ivb", String::as_str);

    let machine = match machine_name {
        "wsm" | "westmere" => MachineModel::westmere(),
        "amd" | "magny" => MachineModel::magny_cours(),
        _ => MachineModel::ivy_bridge(),
    };
    let workloads = ct_workloads::all(0.5);
    let Some(w) = workloads.iter().find(|w| w.name == workload_name) else {
        eprintln!(
            "unknown workload `{workload_name}`; available: {}",
            workloads
                .iter()
                .map(|w| w.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let Some(kind) = MethodKind::ALL
        .iter()
        .find(|k| k.label() == method_name)
        .copied()
    else {
        eprintln!(
            "unknown method `{method_name}`; available: {}",
            MethodKind::ALL
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let Some(inst) = kind.instantiate(&machine, &MethodOptions::default()) else {
        eprintln!(
            "method `{method_name}` is not available on {}",
            machine.name
        );
        std::process::exit(1);
    };

    println!(
        "# perf-record: {} with {} on {}",
        w.name,
        inst.name(),
        machine.name
    );
    let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
    let reference = session.reference().expect("reference run").clone();
    let run = session.run_method(&inst, 7).expect("profiling run");

    println!(
        "# {} samples, accuracy error {:.2}%, mean skid {:.1} instructions\n",
        run.samples,
        run.accuracy_error * 100.0,
        run.mean_skid
    );
    println!("{:>9}  {:>9}  {:<24}", "est %", "exact %", "function");
    let est_total: f64 = run.profile.function_mass.iter().sum();
    let ref_total = reference.total_instructions() as f64;
    for (name, mass) in run.profile.function_ranking().into_iter().take(12) {
        let exact = reference
            .function_names
            .iter()
            .position(|n| *n == name)
            .map_or(0.0, |i| {
                reference.function_instructions[i] as f64 / ref_total
            });
        println!(
            "{:>8.2}%  {:>8.2}%  {:<24}",
            mass / est_total * 100.0,
            exact * 100.0,
            name
        );
    }
}
