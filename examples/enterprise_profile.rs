//! The enterprise-workload story (§5.2): profile the FullCMS proxy and
//! show why choosing a method matters — and why even the best method does
//! not recover the exact hot-function ranking.
//!
//! ```text
//! cargo run --release -p countertrust --example enterprise_profile
//! ```

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::{kendall_tau, top_n_exact_match, Session};
use ct_sim::MachineModel;

fn main() {
    let apps = ct_workloads::applications(0.5);
    let fullcms = apps.iter().find(|w| w.name == "fullcms").expect("registry");
    let machine = MachineModel::ivy_bridge();
    let mut session =
        Session::with_run_config(&machine, &fullcms.program, fullcms.run_config.clone());
    let truth: Vec<(String, u64)> = session
        .reference()
        .expect("reference")
        .function_ranking()
        .into_iter()
        .take(10)
        .collect();

    println!("FullCMS proxy on {}\n", machine.name);
    println!("exact top-10 functions (instrumented):");
    for (i, (name, count)) in truth.iter().enumerate() {
        println!("  {:>2}. {:<16} {count}", i + 1, name);
    }
    let truth_names: Vec<String> = truth.iter().map(|(n, _)| n.clone()).collect();

    let opts = MethodOptions::default();
    for kind in [MethodKind::Classic, MethodKind::PreciseFix, MethodKind::Lbr] {
        let inst = kind.instantiate(&machine, &opts).expect("supported");
        let run = session.run_method(&inst, 11).expect("profiling run");
        let est = run.profile.top_functions(10);
        println!(
            "\n{} — error {:.1}%, top-10 {} (kendall tau {:.3}):",
            kind.label(),
            run.accuracy_error * 100.0,
            if top_n_exact_match(&est, &truth_names, 10) {
                "EXACT ORDER"
            } else {
                "misordered"
            },
            kendall_tau(&est, &truth_names),
        );
        for (i, name) in est.iter().enumerate() {
            let marker = if truth_names.get(i) == Some(name) {
                ' '
            } else {
                '*'
            };
            println!("  {:>2}. {name}{marker}", i + 1);
        }
    }
    println!("\n(* = position differs from the instrumented ranking)");
    println!(
        "\nThe paper's observation holds: none of the methods produces the top 10 \
         functions in the right order, although LBR comes closest."
    );
}
