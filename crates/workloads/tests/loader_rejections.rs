//! The loader's rejection matrix: every malformed catalog input maps to
//! a typed [`LoaderError`], never a panic, and never reaches a
//! [`Workload`]. Each test is one cell of the matrix.

use ct_isa::IsaError;
use ct_workloads::loader::{self, LoaderError, LoaderLimits};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

const OK_SOURCE: &str = "\
.const N = 1000
.data 8
.func main
    movi r1, N
top:
    subi r1, r1, 1
    brnz r1, top
    halt
.endfunc
";

fn manifest(extra: &str) -> String {
    format!(
        "{{\n  \"name\": \"demo\",\n  \"class\": \"kernel\",\n  \"source\": \"demo.ctasm\",\n  \"scaled\": {{ \"N\": {{ \"base\": 1000, \"min\": 10 }} }}{extra}\n}}\n"
    )
}

fn load(manifest_text: &str, source: &str) -> Result<ct_workloads::Workload, LoaderError> {
    loader::load_pair(
        Path::new("test.json"),
        manifest_text,
        source,
        1.0,
        &LoaderLimits::default(),
    )
}

/// A fresh scratch directory per test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ct_loader_test_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write(&self, name: &str, contents: &str) {
        std::fs::write(self.0.join(name), contents).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn well_formed_pair_loads() {
    let w = load(&manifest(""), OK_SOURCE).unwrap();
    assert_eq!(w.name, "demo");
    assert_eq!(w.program.insns[0].op, ct_isa::Opcode::MovI(ct_isa::Reg::new(1), 1000));
}

#[test]
fn oversized_data_segment_is_rejected() {
    let m = manifest(",\n  \"limits\": { \"max_data_words\": 4 }");
    match load(&m, OK_SOURCE).unwrap_err() {
        LoaderError::DataSegmentTooLarge { workload, words, limit } => {
            assert_eq!(workload, "demo");
            assert_eq!(words, 8);
            assert_eq!(limit, 4);
        }
        other => panic!("expected DataSegmentTooLarge, got {other}"),
    }
}

#[test]
fn enforced_data_cap_applies_even_without_declared_limits() {
    let mut limits = LoaderLimits::default();
    limits.max_data_words = 4;
    let e = loader::load_pair(Path::new("test.json"), &manifest(""), OK_SOURCE, 1.0, &limits)
        .unwrap_err();
    assert!(matches!(e, LoaderError::DataSegmentTooLarge { .. }));
}

#[test]
fn declared_limits_cannot_widen_enforced_caps() {
    let mut limits = LoaderLimits::default();
    limits.max_data_words = 4;
    // The manifest declares a generous limit; the enforced cap still wins.
    let m = manifest(",\n  \"limits\": { \"max_data_words\": 1000000 }");
    let e = loader::load_pair(Path::new("test.json"), &m, OK_SOURCE, 1.0, &limits).unwrap_err();
    assert!(matches!(e, LoaderError::DataSegmentTooLarge { limit: 4, .. }));
}

#[test]
fn oversized_program_is_rejected() {
    let m = manifest(",\n  \"limits\": { \"max_program_insns\": 3 }");
    match load(&m, OK_SOURCE).unwrap_err() {
        LoaderError::ProgramTooLarge { insns, limit, .. } => {
            assert_eq!(insns, 4);
            assert_eq!(limit, 3);
        }
        other => panic!("expected ProgramTooLarge, got {other}"),
    }
}

#[test]
fn step_limit_overflow_is_rejected() {
    let m = manifest(
        ",\n  \"run_config\": { \"max_insns\": 5000 },\n  \"limits\": { \"max_step_limit\": 4999 }",
    );
    match load(&m, OK_SOURCE).unwrap_err() {
        LoaderError::StepLimitTooLarge { max_insns, limit, .. } => {
            assert_eq!(max_insns, 5000);
            assert_eq!(limit, 4999);
        }
        other => panic!("expected StepLimitTooLarge, got {other}"),
    }
}

#[test]
fn huge_init_range_is_rejected_at_assembly_not_oom() {
    // A hostile range fill must die inside the assembler as a typed
    // error, before it can allocate 2^62 init entries — the loader's
    // post-assembly data cap would be far too late.
    let bad_src = ".const N = 1000\n.init 0..0x4000000000000000, 1\n.func main\n halt\n.endfunc\n";
    match load(&manifest(""), bad_src).unwrap_err() {
        LoaderError::Assemble { error, .. } => {
            assert!(
                matches!(error, IsaError::DataTooLarge { line: 2, .. }),
                "expected DataTooLarge, got {error:?}"
            );
        }
        other => panic!("expected Assemble(DataTooLarge), got {other}"),
    }
}

#[test]
fn manifest_source_mismatch_is_typed() {
    // The manifest scales a constant the source never defines.
    let m = "{\n  \"name\": \"demo\",\n  \"class\": \"kernel\",\n  \"source\": \"demo.ctasm\",\n  \"scaled\": { \"MISSING\": { \"base\": 7 } }\n}\n";
    match load(m, OK_SOURCE).unwrap_err() {
        LoaderError::Assemble { error, .. } => {
            assert_eq!(
                error,
                IsaError::UnknownOverride {
                    name: "MISSING".into()
                }
            );
        }
        other => panic!("expected Assemble(UnknownOverride), got {other}"),
    }
}

#[test]
fn assembler_syntax_error_carries_position() {
    let bad_src = ".func main\n frobnicate r1\n halt\n.endfunc\n";
    match load(&manifest(""), bad_src).unwrap_err() {
        LoaderError::Assemble { error, .. } => {
            assert!(matches!(error, IsaError::Parse { line: 2, .. }));
        }
        other => panic!("expected Assemble(Parse), got {other}"),
    }
}

#[test]
fn malformed_manifest_json_is_typed() {
    let e = load("{ not json", OK_SOURCE).unwrap_err();
    assert!(matches!(e, LoaderError::Manifest { .. }), "got {e}");
}

#[test]
fn manifest_missing_fields_are_typed() {
    for m in [
        "{}",
        "{\"name\": \"x\"}",
        "{\"name\": \"x\", \"class\": \"nonsense\", \"source\": \"x.ctasm\"}",
        "{\"name\": \"x\", \"class\": \"kernel\"}",
        "{\"name\": \"x\", \"class\": \"kernel\", \"source\": \"s.ctasm\", \"scaled\": 3}",
        "{\"name\": \"x\", \"class\": \"kernel\", \"source\": \"s.ctasm\", \"run_config\": {\"max_insns\": \"many\"}}",
    ] {
        let e = load(m, OK_SOURCE).unwrap_err();
        assert!(matches!(e, LoaderError::Manifest { .. }), "{m}: got {e}");
    }
}

#[test]
fn duplicate_workload_names_across_manifests_are_rejected() {
    let dir = Scratch::new();
    dir.write("a.json", &manifest("").replace("demo.ctasm", "a.ctasm"));
    dir.write("a.ctasm", OK_SOURCE);
    dir.write("b.json", &manifest("").replace("demo.ctasm", "b.ctasm"));
    dir.write("b.ctasm", OK_SOURCE);
    let e = loader::load_dir(&dir.0, 1.0, &LoaderLimits::default()).unwrap_err();
    assert_eq!(
        e,
        LoaderError::DuplicateWorkload {
            name: "demo".into()
        }
    );
}

#[test]
fn missing_source_file_is_io_error() {
    let dir = Scratch::new();
    dir.write("a.json", &manifest(""));
    // demo.ctasm is never written.
    let e = loader::load_dir(&dir.0, 1.0, &LoaderLimits::default()).unwrap_err();
    assert!(matches!(e, LoaderError::Io { .. }), "got {e}");
}

#[test]
fn missing_directory_is_io_error() {
    let e = loader::load_dir("/nonexistent/catalog/dir", 1.0, &LoaderLimits::default())
        .unwrap_err();
    assert!(matches!(e, LoaderError::Io { .. }));
}

#[test]
fn load_dir_orders_by_filename_and_scales() {
    let dir = Scratch::new();
    // Written out of order; loaded in filename order.
    dir.write(
        "01_second.json",
        "{\"name\": \"second\", \"class\": \"application\", \"source\": \"01_second.ctasm\"}",
    );
    dir.write("01_second.ctasm", ".func main\n halt\n.endfunc\n");
    dir.write(
        "00_first.json",
        &manifest("")
            .replace("\"demo\"", "\"first\"")
            .replace("demo.ctasm", "00_first.ctasm"),
    );
    dir.write("00_first.ctasm", OK_SOURCE);
    let ws = loader::load_dir(&dir.0, 0.1, &LoaderLimits::default()).unwrap();
    let names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
    assert_eq!(names, ["first", "second"]);
    // base 1000 at scale 0.1 → 100.
    assert_eq!(
        ws[0].program.insns[0].op,
        ct_isa::Opcode::MovI(ct_isa::Reg::new(1), 100)
    );
    assert_eq!(ws[1].class, ct_workloads::WorkloadClass::Application);
}

/// The end-to-end identity the CI serve leg depends on: a directory
/// copy of the checked-in built-ins loads to exactly the registry's
/// workload list.
#[test]
fn programs_dir_loads_identical_to_registry() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let loaded = loader::load_dir(&dir, 0.01, &LoaderLimits::default()).unwrap();
    let builtin = ct_workloads::all(0.01);
    assert_eq!(loaded.len(), builtin.len());
    for (l, b) in loaded.iter().zip(&builtin) {
        assert_eq!(l.name, b.name);
        assert_eq!(l.class, b.class);
        assert_eq!(l.program, b.program, "{}", l.name);
        assert_eq!(l.run_config.max_insns, b.run_config.max_insns);
        assert_eq!(l.run_config.args, b.run_config.args);
        assert_eq!(l.run_config.call_stack_limit, b.run_config.call_stack_limit);
    }
}
