//! Shared code-generation helpers for workload builders.

use ct_isa::reg::names::*;
use ct_isa::{ProgramBuilder, Reg};

/// Emits an in-register linear congruential step: `r = r * A + C` using the
/// Numerical Recipes constants (wrapping arithmetic matches the executor).
///
/// The generated code is 2 instructions; the low bits of `r` cycle with
/// full period 2^64.
pub fn emit_lcg_step(b: &mut ProgramBuilder, r: Reg) {
    b.muli(r, r, 6_364_136_223_846_793_005);
    b.addi(r, r, 1_442_695_040_888_963_407);
}

/// Emits `dst = (src >> shift) & mask` (3 instructions) — the standard way
/// workloads extract a pseudo-random field from an LCG register.
pub fn emit_extract(b: &mut ProgramBuilder, dst: Reg, src: Reg, shift: i64, mask: i64) {
    b.movi(dst, shift);
    b.shr(dst, src, dst);
    b.andi(dst, dst, mask);
}

/// A tiny host-side deterministic RNG for program *generation* (function
/// sizes, call targets); not used at simulation time.
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform choice from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Registers conventionally used by the generators.
pub mod conv {
    pub use super::*;
    /// Loop counter of the outermost loop.
    pub const LOOP: Reg = R1;
    /// LCG state register.
    pub const RNG: Reg = R10;
    /// Scratch registers safe inside generated leaf bodies.
    pub const SCRATCH: [Reg; 4] = [R6, R7, R8, R9];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_rng_is_deterministic_and_varied() {
        let mut a = GenRng::new(7);
        let mut b = GenRng::new(7);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let distinct: std::collections::HashSet<_> = va.iter().collect();
        assert!(distinct.len() >= 9);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = GenRng::new(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn lcg_step_compiles_and_runs() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        b.movi(R10, 12345);
        emit_lcg_step(&mut b, R10);
        emit_extract(&mut b, R5, R10, 33, 0xFF);
        b.mov(R0, R5);
        b.halt();
        b.end_func();
        let p = b.build().unwrap();
        let m = ct_sim::MachineModel::ivy_bridge();
        let s = ct_sim::exec::run_with(
            &m,
            &p,
            &ct_sim::RunConfig::default(),
            &mut ct_sim::event::NullObserver,
        )
        .unwrap();
        let expected = ((12345i64
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407)) as u64
            >> 33) as i64
            & 0xFF;
        assert_eq!(s.result, expected);
    }
}
