//! The workload registry: named, sized instances of every kernel and
//! application, as consumed by the evaluation binaries.
//!
//! Since the workloads-as-data refactor the built-in catalog is
//! *compiled from data*: every workload's checked-in `.ctasm` +
//! manifest pair under `programs/` is embedded at build time and fed
//! through [`crate::loader`] — the same construction path a
//! `--workload-dir` tenant catalog takes at runtime. The Rust builders
//! in [`crate::kernels`]/[`crate::apps`] remain the generators of
//! record: [`crate::emit`] renders them to the checked-in files, and
//! its tests prove the loaded programs structurally identical to
//! builder output at every scale.

use crate::loader::{self, LoaderLimits};
use ct_isa::Program;
use ct_sim::RunConfig;

/// Kernel vs application (Tables 1 and 2 respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    Kernel,
    Application,
}

/// A ready-to-run workload.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    pub class: WorkloadClass,
    pub program: Program,
    pub run_config: RunConfig,
}

/// `(label, manifest JSON, .ctasm source)` triples embedded from
/// `programs/`. Array order is catalog order; the `NN_` filename
/// prefixes make a directory scan of the same files agree.
macro_rules! builtin {
    ($stem:literal) => {
        (
            concat!($stem, ".json"),
            include_str!(concat!("../programs/", $stem, ".json")),
            include_str!(concat!("../programs/", $stem, ".ctasm")),
        )
    };
}

const BUILTIN_KERNELS: &[(&str, &str, &str)] = &[
    builtin!("00_latency_biased"),
    builtin!("01_callchain"),
    builtin!("02_g4box"),
    builtin!("03_test40"),
];

const BUILTIN_APPS: &[(&str, &str, &str)] = &[
    builtin!("04_mcf"),
    builtin!("05_povray"),
    builtin!("06_omnetpp"),
    builtin!("07_xalancbmk"),
    builtin!("08_fullcms"),
];

fn load_builtins(pairs: &[(&str, &str, &str)], scale: f64) -> Vec<Workload> {
    loader::load_embedded(pairs, scale, &LoaderLimits::default())
        .expect("embedded built-in catalog is well-formed")
}

/// The four kernels of Table 1 at a given scale. Scale 1.0 sizes every
/// kernel to roughly 1.5×10^7 dynamic instructions so the default sampling
/// periods yield several thousand samples per run (the paper's sampling
/// regime, scaled); tests use much smaller scales.
#[must_use]
pub fn kernels(scale: f64) -> Vec<Workload> {
    load_builtins(BUILTIN_KERNELS, scale)
}

/// The five applications of Table 2 at a given scale (1.0 ≈ 1.5×10^7
/// dynamic instructions each).
#[must_use]
pub fn applications(scale: f64) -> Vec<Workload> {
    load_builtins(BUILTIN_APPS, scale)
}

/// Every workload (kernels then applications).
#[must_use]
pub fn all(scale: f64) -> Vec<Workload> {
    let mut v = kernels(scale);
    v.extend(applications(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, StopReason};

    #[test]
    fn every_workload_runs_on_every_machine() {
        for m in MachineModel::paper_machines() {
            for w in all(0.02) {
                let s = run_with(&m, &w.program, &w.run_config, &mut NullObserver)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name));
                assert_eq!(s.stop, StopReason::Halted, "{} on {}", w.name, m.name);
                assert!(s.instructions > 1_000, "{} too small", w.name);
            }
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<String> = all(0.01).into_iter().map(|w| w.name).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn classes_are_assigned() {
        assert!(kernels(0.01)
            .iter()
            .all(|w| w.class == WorkloadClass::Kernel));
        assert!(applications(0.01)
            .iter()
            .all(|w| w.class == WorkloadClass::Application));
    }

    /// The data path (embedded `.ctasm` + manifest through the loader)
    /// must reproduce the hand-coded Rust builders exactly — this is
    /// what keeps the golden exec-trace digests pinned across the
    /// workloads-as-data refactor.
    #[test]
    fn data_path_matches_builders_at_every_scale() {
        for scale in [0.000_001, 0.01, 0.02, 1.0] {
            let catalog = all(scale);
            for spec in crate::emit::specs() {
                let w = catalog
                    .iter()
                    .find(|w| w.name == spec.name)
                    .unwrap_or_else(|| panic!("{} missing from catalog", spec.name));
                let sized = ((spec.base as f64 * scale) as u64).max(spec.min);
                assert_eq!(
                    w.program,
                    (spec.build)(sized),
                    "{} @ scale {scale}",
                    spec.name
                );
                assert_eq!(w.class, spec.class);
            }
        }
    }

    #[test]
    fn scale_controls_size() {
        let m = MachineModel::ivy_bridge();
        let small = &kernels(0.01)[0];
        let large = &kernels(0.05)[0];
        let si = run_with(&m, &small.program, &small.run_config, &mut NullObserver)
            .unwrap()
            .instructions;
        let li = run_with(&m, &large.program, &large.run_config, &mut NullObserver)
            .unwrap()
            .instructions;
        assert!(li > 3 * si);
    }
}
