//! The workload registry: named, sized instances of every kernel and
//! application, as consumed by the evaluation binaries.

use crate::{apps, kernels};
use ct_isa::Program;
use ct_sim::RunConfig;

/// Kernel vs application (Tables 1 and 2 respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    Kernel,
    Application,
}

/// A ready-to-run workload.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    pub class: WorkloadClass,
    pub program: Program,
    pub run_config: RunConfig,
}

impl Workload {
    fn new(name: &str, class: WorkloadClass, program: Program) -> Self {
        Self {
            name: name.to_string(),
            class,
            program,
            run_config: RunConfig::default(),
        }
    }
}

/// The four kernels of Table 1 at a given scale. Scale 1.0 sizes every
/// kernel to roughly 1.5×10^7 dynamic instructions so the default sampling
/// periods yield several thousand samples per run (the paper's sampling
/// regime, scaled); tests use much smaller scales.
#[must_use]
pub fn kernels(scale: f64) -> Vec<Workload> {
    let s = |base: u64| ((base as f64 * scale) as u64).max(100);
    vec![
        Workload::new(
            "latency_biased",
            WorkloadClass::Kernel,
            kernels::latency_biased(s(1_900_000)),
        ),
        Workload::new(
            "callchain",
            WorkloadClass::Kernel,
            kernels::callchain(s(185_000), 10),
        ),
        Workload::new("g4box", WorkloadClass::Kernel, kernels::g4box(s(260_000))),
        Workload::new("test40", WorkloadClass::Kernel, kernels::test40(s(300_000))),
    ]
}

/// The five applications of Table 2 at a given scale (1.0 ≈ 1.5×10^7
/// dynamic instructions each).
#[must_use]
pub fn applications(scale: f64) -> Vec<Workload> {
    let s = |base: u64| ((base as f64 * scale) as u64).max(50);
    vec![
        Workload::new(
            "mcf",
            WorkloadClass::Application,
            apps::mcf(1 << 16, s(10_000)),
        ),
        Workload::new(
            "povray",
            WorkloadClass::Application,
            apps::povray(s(130_000)),
        ),
        Workload::new(
            "omnetpp",
            WorkloadClass::Application,
            apps::omnetpp(s(160_000), 4096),
        ),
        Workload::new(
            "xalancbmk",
            WorkloadClass::Application,
            apps::xalanc(8192, s(170)),
        ),
        Workload::new(
            "fullcms",
            WorkloadClass::Application,
            apps::fullcms(s(22_000)),
        ),
    ]
}

/// Every workload (kernels then applications).
#[must_use]
pub fn all(scale: f64) -> Vec<Workload> {
    let mut v = kernels(scale);
    v.extend(applications(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, StopReason};

    #[test]
    fn every_workload_runs_on_every_machine() {
        for m in MachineModel::paper_machines() {
            for w in all(0.02) {
                let s = run_with(&m, &w.program, &w.run_config, &mut NullObserver)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name));
                assert_eq!(s.stop, StopReason::Halted, "{} on {}", w.name, m.name);
                assert!(s.instructions > 1_000, "{} too small", w.name);
            }
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<String> = all(0.01).into_iter().map(|w| w.name).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn classes_are_assigned() {
        assert!(kernels(0.01)
            .iter()
            .all(|w| w.class == WorkloadClass::Kernel));
        assert!(applications(0.01)
            .iter()
            .all(|w| w.class == WorkloadClass::Application));
    }

    #[test]
    fn scale_controls_size() {
        let m = MachineModel::ivy_bridge();
        let small = &kernels(0.01)[0];
        let large = &kernels(0.05)[0];
        let si = run_with(&m, &small.program, &small.run_config, &mut NullObserver)
            .unwrap()
            .instructions;
        let li = run_with(&m, &large.program, &large.run_config, &mut NullObserver)
            .unwrap()
            .instructions;
        assert!(li > 3 * si);
    }
}
