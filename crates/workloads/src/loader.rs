//! Workloads as data: compiling `.ctasm` source + JSON manifest pairs
//! into ready-to-run [`Workload`]s.
//!
//! A *catalog directory* holds one JSON manifest per workload plus the
//! `.ctasm` assembler source it references:
//!
//! ```json
//! {
//!   "name": "latency_biased",
//!   "class": "kernel",
//!   "source": "00_latency_biased.ctasm",
//!   "scaled": { "N": { "base": 1900000, "min": 100 } },
//!   "run_config": { "max_insns": 2000000000 },
//!   "limits": { "max_program_insns": 65536, "max_data_words": 131072 }
//! }
//! ```
//!
//! * `name` / `class` — registry identity (`"kernel"` or `"application"`).
//! * `source` — the `.ctasm` file, relative to the manifest.
//! * `scaled` — named constants recomputed at load time: each `.const
//!   NAME` in the source is overridden with
//!   `((base * scale) as u64).max(min)`, the exact sizing rule the
//!   built-in registry has always used. A `scaled` entry naming a
//!   constant the source never defines is a typed manifest/source
//!   mismatch error, not a silent no-op.
//! * `run_config` — optional [`RunConfig`] field overrides.
//! * `limits` — optional *declared* resource bounds, intersected with
//!   the loader's enforced [`LoaderLimits`]; the assembled program must
//!   fit or loading fails with a typed error **before** anything
//!   reaches the evaluation cache.
//!
//! The built-in catalog ([`crate::all`]) and directory-loaded tenant
//! catalogs share this one construction path; built-ins are simply
//! `include_str!`-embedded pairs. Directory scans load manifests in
//! filename order, which is why the checked-in built-ins carry `NN_`
//! prefixes — a directory copy reproduces the registry order (kernels
//! then applications) byte-for-byte.

use crate::registry::{Workload, WorkloadClass};
use ct_isa::{asm, IsaError};
use ct_sim::RunConfig;
use serde::Value;
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Enforced resource caps for loaded workloads. Declared manifest
/// limits may tighten these but never widen them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoaderLimits {
    /// Maximum static program length in instructions.
    pub max_program_insns: usize,
    /// Maximum data segment size in words.
    pub max_data_words: usize,
    /// Maximum dynamic step limit (`RunConfig::max_insns`).
    pub max_step_limit: u64,
}

impl Default for LoaderLimits {
    fn default() -> Self {
        // Permissive: every built-in fits with orders of magnitude to
        // spare, while a hostile tenant file cannot make the serving
        // tier allocate unbounded memory or spin forever.
        Self {
            max_program_insns: 1 << 20,
            max_data_words: 1 << 22,
            max_step_limit: 1 << 40,
        }
    }
}

/// Typed loader failures. Every malformed input maps here — the loader
/// never panics on tenant-supplied bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderError {
    /// A file could not be read.
    Io { path: PathBuf, detail: String },
    /// The manifest is not valid JSON or is missing/mistyping a field.
    Manifest { path: PathBuf, detail: String },
    /// The `.ctasm` source failed to assemble (includes the
    /// manifest/source mismatch case, [`IsaError::UnknownOverride`]).
    Assemble { path: PathBuf, error: IsaError },
    /// Two manifests in one catalog declare the same workload name.
    DuplicateWorkload { name: String },
    /// The assembled program exceeds the instruction budget.
    ProgramTooLarge {
        workload: String,
        insns: usize,
        limit: usize,
    },
    /// The assembled program's data segment exceeds the word budget.
    DataSegmentTooLarge {
        workload: String,
        words: usize,
        limit: usize,
    },
    /// The manifest's `run_config.max_insns` exceeds the step budget.
    StepLimitTooLarge {
        workload: String,
        max_insns: u64,
        limit: u64,
    },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderError::Io { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            LoaderError::Manifest { path, detail } => {
                write!(f, "{}: bad manifest: {detail}", path.display())
            }
            LoaderError::Assemble { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            LoaderError::DuplicateWorkload { name } => {
                write!(f, "duplicate workload name `{name}` in catalog")
            }
            LoaderError::ProgramTooLarge {
                workload,
                insns,
                limit,
            } => write!(
                f,
                "workload `{workload}`: program has {insns} instructions, limit {limit}"
            ),
            LoaderError::DataSegmentTooLarge {
                workload,
                words,
                limit,
            } => write!(
                f,
                "workload `{workload}`: data segment is {words} words, limit {limit}"
            ),
            LoaderError::StepLimitTooLarge {
                workload,
                max_insns,
                limit,
            } => write!(
                f,
                "workload `{workload}`: step limit {max_insns} exceeds cap {limit}"
            ),
        }
    }
}

impl std::error::Error for LoaderError {}

// --- manifest parsing -------------------------------------------------------

fn bad(path: &Path, detail: impl Into<String>) -> LoaderError {
    LoaderError::Manifest {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::UInt(u) => i64::try_from(*u).ok(),
        _ => None,
    }
}

fn req_u64(path: &Path, v: &Value, key: &str) -> Result<u64, LoaderError> {
    v.get(key)
        .and_then(as_u64)
        .ok_or_else(|| bad(path, format!("`{key}` must be a non-negative integer")))
}

/// A parsed manifest, before assembly.
struct Manifest {
    name: String,
    /// The assembled [`Program`]'s internal name; defaults to `name`.
    /// Exists because one registry workload (`xalancbmk`) wraps a
    /// builder whose program is named differently (`xalanc`), and the
    /// program name participates in structural equality and pair
    /// fingerprints.
    program_name: String,
    class: WorkloadClass,
    source: String,
    /// `(const name, base, min)` — resolved against `scale` at load.
    scaled: Vec<(String, u64, u64)>,
    run_config: RunConfig,
    declared: LoaderLimits,
}

fn parse_manifest(path: &Path, text: &str, limits: &LoaderLimits) -> Result<Manifest, LoaderError> {
    let v = serde_json::parse(text).map_err(|e| bad(path, e.to_string()))?;
    let name = match v.get("name") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err(bad(path, "`name` must be a non-empty string")),
    };
    let class = match v.get("class") {
        Some(Value::Str(s)) if s == "kernel" => WorkloadClass::Kernel,
        Some(Value::Str(s)) if s == "application" => WorkloadClass::Application,
        _ => return Err(bad(path, "`class` must be \"kernel\" or \"application\"")),
    };
    let program_name = match v.get("program") {
        None => name.clone(),
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err(bad(path, "`program` must be a non-empty string")),
    };
    let source = match v.get("source") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err(bad(path, "`source` must name a .ctasm file")),
    };
    let mut scaled = Vec::new();
    if let Some(s) = v.get("scaled") {
        let entries = s
            .as_map()
            .ok_or_else(|| bad(path, "`scaled` must be a map of const name -> {base, min}"))?;
        for (cname, spec) in entries {
            let base = req_u64(path, spec, "base")
                .map_err(|_| bad(path, format!("scaled `{cname}`: `base` must be an integer")))?;
            let min = match spec.get("min") {
                None => 0,
                Some(m) => as_u64(m)
                    .ok_or_else(|| bad(path, format!("scaled `{cname}`: bad `min`")))?,
            };
            scaled.push((cname.clone(), base, min));
        }
    }
    let mut run_config = RunConfig::default();
    if let Some(rc) = v.get("run_config") {
        if rc.as_map().is_none() {
            return Err(bad(path, "`run_config` must be a map"));
        }
        if let Some(mi) = rc.get("max_insns") {
            run_config.max_insns = as_u64(mi)
                .ok_or_else(|| bad(path, "`run_config.max_insns` must be an integer"))?;
        }
        if let Some(args) = rc.get("args") {
            let seq = args
                .as_seq()
                .ok_or_else(|| bad(path, "`run_config.args` must be a list of integers"))?;
            run_config.args = seq
                .iter()
                .map(|a| {
                    as_i64(a).ok_or_else(|| bad(path, "`run_config.args` must be a list of integers"))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(cs) = rc.get("call_stack_limit") {
            let raw = as_u64(cs)
                .ok_or_else(|| bad(path, "`run_config.call_stack_limit` must be an integer"))?;
            run_config.call_stack_limit = usize::try_from(raw)
                .map_err(|_| bad(path, "`run_config.call_stack_limit` out of range"))?;
        }
    }
    // Declared limits tighten the enforced caps, never widen them.
    let mut declared = *limits;
    if let Some(l) = v.get("limits") {
        if l.as_map().is_none() {
            return Err(bad(path, "`limits` must be a map"));
        }
        if let Some(x) = l.get("max_program_insns") {
            let raw = as_u64(x).ok_or_else(|| bad(path, "`limits.max_program_insns`"))?;
            declared.max_program_insns = declared
                .max_program_insns
                .min(usize::try_from(raw).unwrap_or(usize::MAX));
        }
        if let Some(x) = l.get("max_data_words") {
            let raw = as_u64(x).ok_or_else(|| bad(path, "`limits.max_data_words`"))?;
            declared.max_data_words = declared
                .max_data_words
                .min(usize::try_from(raw).unwrap_or(usize::MAX));
        }
        if let Some(x) = l.get("max_step_limit") {
            let raw = as_u64(x).ok_or_else(|| bad(path, "`limits.max_step_limit`"))?;
            declared.max_step_limit = declared.max_step_limit.min(raw);
        }
    }
    Ok(Manifest {
        name,
        program_name,
        class,
        source,
        scaled,
        run_config,
        declared,
    })
}

// --- loading ----------------------------------------------------------------

/// The registry's sizing rule, applied to a manifest `scaled` entry.
fn scaled_value(base: u64, min: u64, scale: f64) -> i64 {
    let v = ((base as f64 * scale) as u64).max(min);
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Compiles one manifest + source pair into a [`Workload`]. `path` is
/// the manifest's path (or an `embedded:` label for built-ins), used in
/// diagnostics only.
pub fn load_pair(
    path: &Path,
    manifest_text: &str,
    source_text: &str,
    scale: f64,
    limits: &LoaderLimits,
) -> Result<Workload, LoaderError> {
    let m = parse_manifest(path, manifest_text, limits)?;
    compile(path, m, source_text, scale)
}

/// Assembles and limit-checks an already-parsed manifest against its
/// source — the single back half shared by [`load_pair`] and
/// [`load_dir`], so each manifest is parsed exactly once.
fn compile(path: &Path, m: Manifest, source_text: &str, scale: f64) -> Result<Workload, LoaderError> {
    let overrides: Vec<(String, i64)> = m
        .scaled
        .iter()
        .map(|(name, base, min)| (name.clone(), scaled_value(*base, *min, scale)))
        .collect();
    let override_refs: Vec<(&str, i64)> =
        overrides.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let program =
        asm::assemble_with(&m.program_name, source_text, &override_refs).map_err(|error| {
            LoaderError::Assemble {
                path: path.with_file_name(&m.source),
                error,
            }
        })?;
    if program.insns.len() > m.declared.max_program_insns {
        return Err(LoaderError::ProgramTooLarge {
            workload: m.name,
            insns: program.insns.len(),
            limit: m.declared.max_program_insns,
        });
    }
    if program.data_words > m.declared.max_data_words {
        return Err(LoaderError::DataSegmentTooLarge {
            workload: m.name,
            words: program.data_words,
            limit: m.declared.max_data_words,
        });
    }
    if m.run_config.max_insns > m.declared.max_step_limit {
        return Err(LoaderError::StepLimitTooLarge {
            workload: m.name,
            max_insns: m.run_config.max_insns,
            limit: m.declared.max_step_limit,
        });
    }
    Ok(Workload {
        name: m.name,
        class: m.class,
        program,
        run_config: m.run_config,
    })
}

/// Loads every workload in a catalog directory: each `*.json` manifest
/// (in filename order) plus the `.ctasm` source it references. Fails on
/// the first malformed pair or duplicate workload name.
pub fn load_dir(
    dir: impl AsRef<Path>,
    scale: f64,
    limits: &LoaderLimits,
) -> Result<Vec<Workload>, LoaderError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| LoaderError::Io {
        path: dir.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mut manifests: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    manifests.sort();
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(manifests.len());
    for mpath in manifests {
        let manifest_text = std::fs::read_to_string(&mpath).map_err(|e| LoaderError::Io {
            path: mpath.clone(),
            detail: e.to_string(),
        })?;
        // Resolve `source` relative to the manifest; parse first so the
        // error for a broken manifest names the manifest, not the
        // source file.
        let m = parse_manifest(&mpath, &manifest_text, limits)?;
        let spath = mpath.with_file_name(&m.source);
        let source_text = std::fs::read_to_string(&spath).map_err(|e| LoaderError::Io {
            path: spath.clone(),
            detail: e.to_string(),
        })?;
        let w = compile(&mpath, m, &source_text, scale)?;
        if !seen.insert(w.name.clone()) {
            return Err(LoaderError::DuplicateWorkload { name: w.name });
        }
        out.push(w);
    }
    Ok(out)
}

/// Loads embedded (manifest, source) text pairs — the built-in catalog
/// path. `label` appears in diagnostics in place of a filesystem path.
pub fn load_embedded(
    pairs: &[(&str, &str, &str)],
    scale: f64,
    limits: &LoaderLimits,
) -> Result<Vec<Workload>, LoaderError> {
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(pairs.len());
    for (label, manifest_text, source_text) in pairs {
        let path = Path::new("embedded:").join(label);
        let w = load_pair(&path, manifest_text, source_text, scale, limits)?;
        if !seen.insert(w.name.clone()) {
            return Err(LoaderError::DuplicateWorkload { name: w.name });
        }
        out.push(w);
    }
    Ok(out)
}
