//! `ct-workloads` — the paper's measurement workloads.
//!
//! Two families, mirroring §4.3:
//!
//! * **kernels** — small hand-written codes, each emphasizing one
//!   difficulty for sampling: [`kernels::latency_biased`] (non-uniform
//!   basic-block execution times), [`kernels::callchain`] (10-deep chains
//!   of short methods), [`kernels::g4box`] (chains of tests and branches →
//!   very short basic blocks), [`kernels::test40`] (fragmented,
//!   conditionally executed physics methods);
//! * **applications** — synthetic proxies for the paper's SPEC CPU2006
//!   subset (mcf, povray, omnetpp, xalancbmk) and the CERN FullCMS
//!   production workload. Each proxy reproduces the *shape* that drives
//!   sampling accuracy on the original: hotspot structure, basic-block
//!   size distribution, instructions-per-taken-branch ratio, memory
//!   behaviour and call-chain depth (see DESIGN.md for the substitution
//!   argument).
//!
//! All generators are deterministic: the same parameters produce the same
//! program and the same dynamic instruction stream.
//!
//! # Examples
//!
//! The registry hands out ready-to-run workloads at any scale (`1.0` ≈
//! 1.5×10⁷ dynamic instructions each); the same scale always yields the
//! same programs:
//!
//! ```
//! let kernels = ct_workloads::kernel_set(0.01);
//! let names: Vec<&str> = kernels.iter().map(|w| w.name.as_str()).collect();
//! assert_eq!(names, ["latency_biased", "callchain", "g4box", "test40"]);
//!
//! let again = ct_workloads::kernel_set(0.01);
//! assert_eq!(
//!     kernels[0].program.insns.len(),
//!     again[0].program.insns.len(),
//!     "generators are deterministic"
//! );
//! assert_eq!(ct_workloads::all(0.01).len(), kernels.len() + 5);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod apps;
pub mod emit;
pub mod kernels;
pub mod loader;
pub mod registry;
pub mod util;

pub use loader::{LoaderError, LoaderLimits};
pub use registry::{all, applications, kernels as kernel_set, Workload, WorkloadClass};
