//! `ct-workloads` — the paper's measurement workloads.
//!
//! Two families, mirroring §4.3:
//!
//! * **kernels** — small hand-written codes, each emphasizing one
//!   difficulty for sampling: [`kernels::latency_biased`] (non-uniform
//!   basic-block execution times), [`kernels::callchain`] (10-deep chains
//!   of short methods), [`kernels::g4box`] (chains of tests and branches →
//!   very short basic blocks), [`kernels::test40`] (fragmented,
//!   conditionally executed physics methods);
//! * **applications** — synthetic proxies for the paper's SPEC CPU2006
//!   subset (mcf, povray, omnetpp, xalancbmk) and the CERN FullCMS
//!   production workload. Each proxy reproduces the *shape* that drives
//!   sampling accuracy on the original: hotspot structure, basic-block
//!   size distribution, instructions-per-taken-branch ratio, memory
//!   behaviour and call-chain depth (see DESIGN.md for the substitution
//!   argument).
//!
//! All generators are deterministic: the same parameters produce the same
//! program and the same dynamic instruction stream.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod apps;
pub mod kernels;
pub mod registry;
pub mod util;

pub use registry::{all, applications, kernels as kernel_set, Workload, WorkloadClass};
