//! 453.povray proxy — ray tracing.
//!
//! Shape properties preserved from the original: floating-point dominated
//! compute with long-latency `fdiv`/`fsqrt` in small math helpers
//! (`vdot`, `vnormalize`), a quadratic-discriminant intersection routine
//! with data-dependent branches, and a shading routine composing the
//! helpers through short call chains.

use crate::util::{conv, emit_extract, emit_lcg_step};
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

/// Builds the povray proxy tracing `rays` pseudo-random rays against four
/// spheres.
///
/// # Panics
///
/// Panics if `rays == 0`.
#[must_use]
pub fn povray(rays: u64) -> Program {
    assert!(rays > 0);
    let mut b = ProgramBuilder::new("povray");

    b.begin_func("main");
    b.movi(conv::LOOP, rays as i64);
    b.movi(conv::RNG, 0xC0FFEE);
    let top = b.here_label();
    // Ray direction from random bits (f1, f2, f3).
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R2, conv::RNG, 16, 1023);
    b.cvt_if(F1, R2);
    emit_extract(&mut b, R2, conv::RNG, 26, 1023);
    b.cvt_if(F2, R2);
    emit_extract(&mut b, R2, conv::RNG, 36, 1023);
    b.cvt_if(F3, R2);
    b.call("vnormalize");
    // Test against four spheres; r5 counts hits.
    b.movi(R3, 4);
    let sphere_loop = b.here_label();
    b.call("intersect_sphere");
    let miss = b.new_label();
    b.brz(R4, miss);
    b.call("shade");
    b.addi(R5, R5, 1);
    b.bind(miss).expect("fresh label");
    b.subi(R3, R3, 1);
    b.brnz(R3, sphere_loop);
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.mov(R0, R5);
    b.halt();
    b.end_func();

    // f0 = f1*f1 + f2*f2 + f3*f3 (the dot-product helper every routine
    // leans on).
    b.begin_func("vdot");
    b.fmul(F4, F1, F1);
    b.fmul(F5, F2, F2);
    b.fadd(F4, F4, F5);
    b.fmul(F5, F3, F3);
    b.fadd(F0, F4, F5);
    b.ret();
    b.end_func();

    // Normalizes (f1,f2,f3): fsqrt + three fdivs — long-latency FP.
    b.begin_func("vnormalize");
    b.call("vdot");
    b.fmovi(F6, 1.0e-9);
    b.fadd(F0, F0, F6); // avoid division by zero
    b.fsqrt(F6, F0);
    b.fdiv(F1, F1, F6);
    b.fdiv(F2, F2, F6);
    b.fdiv(F3, F3, F6);
    b.ret();
    b.end_func();

    // Quadratic discriminant test: hit (r4=1) iff b^2 - 4ac > 0 for
    // sphere parameters derived from the ray and the loop index r3.
    // (`vdot` clobbers f4/f5, so it runs before b^2 is staged.)
    b.begin_func("intersect_sphere");
    b.call("vdot"); // a term in f0
    b.fmovi(F6, 0.85);
    b.fmul(F6, F0, F6); // 4ac surrogate
    b.cvt_if(F7, R3); // sphere center offset from index
    b.fmovi(F8, 0.35);
    b.fmul(F7, F7, F8);
    b.fadd(F4, F1, F7);
    b.fmul(F5, F4, F4); // b^2 term
    b.fsub(F5, F5, F6);
    b.movi(R4, 0);
    b.cvt_fi(R6, F5);
    let done = b.new_label();
    b.movi(R7, 0);
    b.br(Cond::Le, R6, R7, done);
    b.movi(R4, 1);
    b.fsqrt(F5, F5); // root distance
    b.bind(done).expect("fresh label");
    b.ret();
    b.end_func();

    // Shading: diffuse term via vdot, attenuation via fdiv.
    b.begin_func("shade");
    b.call("vdot");
    b.fmovi(F6, 2.5);
    b.fdiv(F7, F0, F6);
    b.fadd(F8, F8, F7);
    b.ret();
    b.end_func();

    b.build().expect("povray proxy is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    #[test]
    fn runs_and_hits_some_spheres() {
        let p = povray(2_000);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(s.stop, StopReason::Halted);
        assert!(s.result > 0, "at least one ray should hit");
    }

    #[test]
    fn fp_dominated_profile() {
        let p = povray(1_000);
        let hist = p.class_histogram();
        let fp: usize = ["FpAdd", "FpMul", "FpDiv"]
            .iter()
            .filter_map(|k| hist.get(*k))
            .sum();
        assert!(fp >= 20, "static FP share too small: {hist:?}");
        let m = MachineModel::westmere();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        // All helpers execute.
        for f in ["vdot", "vnormalize", "intersect_sphere", "shade"] {
            let i = r.function_names.iter().position(|n| n == f).unwrap();
            assert!(r.function_instructions[i] > 0, "{f} never ran");
        }
    }
}
