//! 483.xalancbmk proxy — XSLT/XML transformation.
//!
//! Shape properties preserved from the original: a character-scanning loop
//! dispatching through a class table to many *tiny* handler routines
//! (2-8 instructions — the very short basic blocks that challenge plain
//! sampling, §3.1's jump-table remark), extremely high taken-branch
//! density, and nested-structure bookkeeping (tag depth).

use crate::util::{conv, emit_extract, emit_lcg_step};
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

const CLASSES: usize = 8;

/// Builds the xalancbmk proxy: a synthetic "document" of `doc_words`
/// character-class codes scanned `passes` times (one pass per template).
///
/// # Panics
///
/// Panics if `doc_words < 64` or `passes == 0`.
#[must_use]
pub fn xalanc(doc_words: usize, passes: u64) -> Program {
    assert!(doc_words >= 64);
    assert!(passes > 0);
    // Memory map: [0, doc_words) document; table after it.
    let table = doc_words as i64;
    let mut b = ProgramBuilder::new("xalanc");
    b.data(doc_words + CLASSES);

    b.begin_func("main");
    b.movi(R15, 0);
    b.movi(conv::RNG, 0xDEAD_0001);
    b.call("gen_document");
    b.movi(R11, passes as i64);
    let pass_top = b.here_label();
    b.call("scan_pass");
    b.subi(R11, R11, 1);
    b.brnz(R11, pass_top);
    b.mov(R0, R14);
    b.halt();
    b.end_func();

    // Fills the document with class codes skewed towards text (class 2).
    b.begin_func("gen_document");
    b.movi(R2, 0);
    b.movi(R3, doc_words as i64);
    let gen_top = b.here_label();
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R4, conv::RNG, 33, 15);
    // Map 0..15 -> classes: 0,1 tags; 2..9 text; 10,11 attr; 12 entity;
    // 13 digit; 14 space; 15 other.
    let is_text = b.new_label();
    let store = b.new_label();
    b.movi(R5, 2);
    b.br(Cond::Lt, R4, R5, store); // classes 0,1 pass through
    b.movi(R5, 10);
    b.br(Cond::Lt, R4, R5, is_text);
    b.subi(R4, R4, 8); // 10..15 -> 2..7... (attr..other)
    b.jmp(store);
    b.bind(is_text).expect("fresh label");
    b.movi(R4, 2);
    b.bind(store).expect("fresh label");
    b.store(R4, R2, 0);
    b.addi(R2, R2, 1);
    b.br(Cond::Lt, R2, R3, gen_top);
    b.ret();
    b.end_func();

    // One template pass over the document: load class, dispatch handler.
    b.begin_func("scan_pass");
    b.movi(R2, 0);
    b.movi(R3, doc_words as i64);
    let scan_top = b.here_label();
    b.load(R4, R2, 0);
    b.load(R5, R4, table);
    b.call_ind(R5);
    b.addi(R2, R2, 1);
    b.br(Cond::Lt, R2, R3, scan_top);
    b.ret();
    b.end_func();

    // Tiny handlers — one per character class.
    b.begin_func("h_tag_open"); // class 0
    b.addi(R6, R6, 1); // depth++
    b.addi(R14, R14, 3);
    b.ret();
    b.end_func();

    b.begin_func("h_tag_close"); // class 1
    let floor = b.new_label();
    b.brz(R6, floor);
    b.subi(R6, R6, 1);
    b.bind(floor).expect("fresh label");
    b.ret();
    b.end_func();

    b.begin_func("h_text"); // class 2 (hottest)
    b.addi(R7, R7, 1);
    b.ret();
    b.end_func();

    b.begin_func("h_attr"); // class 3: short inner loop
    b.movi(R8, 2);
    let attr_top = b.here_label();
    b.addi(R14, R14, 1);
    b.subi(R8, R8, 1);
    b.brnz(R8, attr_top);
    b.ret();
    b.end_func();

    b.begin_func("h_entity"); // class 4: table lookup
    b.andi(R8, R7, 7);
    b.load(R9, R8, table);
    b.add(R14, R14, R9);
    b.ret();
    b.end_func();

    b.begin_func("h_digit"); // class 5: value accumulate
    b.muli(R9, R9, 10);
    b.addi(R9, R9, 4);
    b.ret();
    b.end_func();

    b.begin_func("h_space"); // class 6
    b.ret();
    b.end_func();

    b.begin_func("h_other"); // class 7
    b.xori(R14, R14, 0x55);
    b.ret();
    b.end_func();

    let mut p = b.build().expect("xalanc proxy is structurally valid");
    let names = [
        "h_tag_open",
        "h_tag_close",
        "h_text",
        "h_attr",
        "h_entity",
        "h_digit",
        "h_space",
        "h_other",
    ];
    for (c, name) in names.iter().enumerate() {
        let entry = p
            .symbols
            .by_name(name)
            .expect("handler emitted above")
            .entry;
        p.init_data.push(((table as usize) + c, i64::from(entry)));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    #[test]
    fn scans_all_passes() {
        let p = xalanc(1024, 20);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(s.stop, StopReason::Halted);
    }

    #[test]
    fn very_short_blocks_and_dense_branches() {
        let p = xalanc(2048, 10);
        let cfg = ct_isa::Cfg::build(&p);
        let mean_len = p.len() as f64 / cfg.num_blocks() as f64;
        assert!(
            mean_len < 3.5,
            "xalanc proxy blocks should be tiny, got {mean_len:.2}"
        );
        let m = MachineModel::ivy_bridge();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let ipb = r.total_instructions as f64 / r.taken_branches as f64;
        assert!(ipb < 8.0, "branch density too low: {ipb:.1}");
    }

    #[test]
    fn text_handler_is_hottest() {
        let p = xalanc(4096, 10);
        let m = MachineModel::westmere();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let count = |name: &str| {
            r.function_names
                .iter()
                .position(|n| n == name)
                .map(|i| r.function_instructions[i])
                .unwrap()
        };
        // Text is ~half of all classes by construction; its handler must
        // dominate the other handlers.
        assert!(count("h_text") > count("h_tag_open"));
        assert!(count("h_text") > count("h_entity"));
    }
}
