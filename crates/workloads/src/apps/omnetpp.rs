//! 471.omnetpp proxy — discrete event simulation.
//!
//! Shape properties preserved from the original: a binary-heap future
//! event set whose sift loops are branchy and data-dependent, and
//! object-oriented event *dispatch through function pointers* (modeled
//! with `callind` through an in-memory handler table) to many short
//! handler methods — the fragmented, virtual-call-heavy profile the paper
//! calls enterprise-like.

use crate::util::{conv, emit_extract, emit_lcg_step};
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

const HANDLERS: usize = 8;

/// Builds the omnetpp proxy processing `events` events through a binary
/// heap of capacity `heap_cap`.
///
/// # Panics
///
/// Panics if `events == 0` or `heap_cap < 128`.
#[must_use]
pub fn omnetpp(events: u64, heap_cap: usize) -> Program {
    assert!(events > 0);
    assert!(heap_cap >= 128);
    // Memory map: [0, heap_cap) heap slots; [heap_cap] heap size;
    // [heap_cap+1, heap_cap+1+HANDLERS) handler table.
    let n_addr = heap_cap as i64;
    let table = heap_cap as i64 + 1;
    let mut b = ProgramBuilder::new("omnetpp");
    b.data(heap_cap + 1 + HANDLERS);

    // R15 stays zero throughout (memory base), R1 loop, R10 RNG.
    b.begin_func("main");
    b.movi(R15, 0);
    b.movi(conv::RNG, 0xACE1_BEEF);
    b.call("seed_events");
    b.movi(conv::LOOP, events as i64);
    let top = b.here_label();
    b.call("heap_pop"); // r2 = key (simulation time)
    b.andi(R3, R2, (HANDLERS - 1) as i64); // event type
    b.load(R4, R3, table); // handler pointer
    b.call_ind(R4); // virtual dispatch
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.mov(R0, R14);
    b.halt();
    b.end_func();

    // Pushes key r5 (clobbers r6-r9, r11).
    b.begin_func("heap_push");
    b.load(R6, R15, n_addr);
    b.movi(R7, heap_cap as i64 - 1);
    let full = b.new_label();
    b.br(Cond::Ge, R6, R7, full);
    b.store(R5, R6, 0); // heap[n] = key
    let sift = b.here_label();
    let done = b.new_label();
    b.brz(R6, done);
    b.subi(R7, R6, 1);
    b.movi(R8, 1);
    b.shr(R7, R7, R8); // parent
    b.load(R9, R7, 0);
    b.load(R11, R6, 0);
    b.br(Cond::Ge, R11, R9, done); // min-heap: child >= parent
    b.store(R9, R6, 0);
    b.store(R11, R7, 0);
    b.mov(R6, R7);
    b.jmp(sift);
    b.bind(done).expect("fresh label");
    b.load(R6, R15, n_addr);
    b.addi(R6, R6, 1);
    b.store(R6, R15, n_addr);
    b.bind(full).expect("fresh label");
    b.ret();
    b.end_func();

    // Pops the minimum into r2 (clobbers r6-r9, r11-r13). An empty heap
    // yields a synthetic timer event.
    b.begin_func("heap_pop");
    b.load(R6, R15, n_addr);
    let nonempty = b.new_label();
    b.brnz(R6, nonempty);
    b.addi(R2, R2, 1); // synthetic event: time advances
    b.ret();
    b.bind(nonempty).expect("fresh label");
    b.subi(R6, R6, 1);
    b.load(R2, R15, 0); // root
    b.load(R9, R6, 0); // last
    b.store(R9, R15, 0);
    b.store(R6, R15, n_addr);
    b.movi(R7, 0); // sift index
    let sift = b.here_label();
    let sdone = b.new_label();
    let nocheck = b.new_label();
    b.add(R8, R7, R7);
    b.addi(R8, R8, 1); // left child
    b.br(Cond::Ge, R8, R6, sdone);
    b.mov(R9, R8);
    b.addi(R11, R8, 1); // right child
    b.br(Cond::Ge, R11, R6, nocheck);
    b.load(R12, R11, 0);
    b.load(R13, R8, 0);
    b.br(Cond::Ge, R12, R13, nocheck);
    b.mov(R9, R11);
    b.bind(nocheck).expect("fresh label");
    b.load(R12, R9, 0);
    b.load(R13, R7, 0);
    b.br(Cond::Ge, R12, R13, sdone);
    b.store(R12, R7, 0);
    b.store(R13, R9, 0);
    b.mov(R7, R9);
    b.jmp(sift);
    b.bind(sdone).expect("fresh label");
    b.ret();
    b.end_func();

    // Seeds 96 initial events.
    b.begin_func("seed_events");
    b.movi(R3, 96);
    let seed_top = b.here_label();
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R5, conv::RNG, 24, 0xFFFF);
    b.call("heap_push");
    b.subi(R3, R3, 1);
    b.brnz(R3, seed_top);
    b.ret();
    b.end_func();

    // Handler "methods": short, each schedules follow-up events with a
    // type-specific delay profile. Deliberately unequal shapes.
    for h in 0..HANDLERS {
        b.begin_func(format!("handle_{h}"));
        emit_lcg_step(&mut b, conv::RNG);
        emit_extract(&mut b, R5, conv::RNG, 30, 63);
        b.add(R5, R5, R2); // new key = now + delay
        b.addi(R5, R5, h as i64 + 1);
        b.call("heap_push");
        // Some handlers schedule a second event (fan-out).
        if h % 3 == 0 {
            emit_lcg_step(&mut b, conv::RNG);
            emit_extract(&mut b, R5, conv::RNG, 18, 31);
            b.add(R5, R5, R2);
            b.addi(R5, R5, 2);
            b.call("heap_push");
        }
        // Per-type statistics work of varying length.
        for k in 0..(2 + h % 4) {
            b.addi(R14, R14, k as i64 + 1);
        }
        b.ret();
        b.end_func();
    }

    let mut p = b.build().expect("omnetpp proxy is structurally valid");
    // Install the virtual dispatch table now that entry addresses exist.
    for h in 0..HANDLERS {
        let entry = p
            .symbols
            .by_name(&format!("handle_{h}"))
            .expect("handler emitted above")
            .entry;
        p.init_data.push(((table as usize) + h, i64::from(entry)));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    #[test]
    fn processes_all_events() {
        let p = omnetpp(5_000, 1024);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(s.stop, StopReason::Halted);
        assert!(s.result > 0, "handlers ran and accumulated stats");
    }

    #[test]
    fn all_handlers_dispatched() {
        let p = omnetpp(8_000, 1024);
        let m = MachineModel::westmere();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        for h in 0..HANDLERS {
            let name = format!("handle_{h}");
            let i = r.function_names.iter().position(|n| *n == name).unwrap();
            assert!(r.function_instructions[i] > 0, "{name} never dispatched");
        }
        // Heap machinery dominates (the real omnetpp's event-set hotspot).
        let heap_i = r
            .function_names
            .iter()
            .position(|n| n == "heap_pop")
            .unwrap();
        assert!(r.function_instructions[heap_i] > r.total_instructions / 20);
    }

    #[test]
    fn enterprise_like_branch_density() {
        let p = omnetpp(4_000, 512);
        let m = MachineModel::ivy_bridge();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let ipb = r.total_instructions as f64 / r.taken_branches as f64;
        assert!(
            ipb < 12.0,
            "instructions per taken branch should be enterprise-like (6-12), got {ipb:.1}"
        );
    }
}
