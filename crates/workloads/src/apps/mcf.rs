//! 429.mcf proxy — vehicle-scheduling network simplex.
//!
//! What matters for sampling accuracy in real mcf, preserved here:
//!
//! * **pointer chasing over a working set far larger than L2** — the inner
//!   loop's dependent loads miss constantly, creating long retirement
//!   stalls whose shadows distort imprecise profiles;
//! * **tight compare/update blocks** after each load (short blocks around
//!   loads);
//! * a secondary streaming pass (`refresh_potential`) with a different
//!   access pattern.
//!
//! The paper finds the LBR method "noticeably better than precise
//! sampling, especially so in the case of mcf" — the miss-stall bursts
//! defeat even PEBS's distribution, while the LBR walk does not depend on
//! where samples land.

use crate::util::conv;
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

/// Builds the mcf proxy.
///
/// `arcs` must be a power of two (it sizes the pointer-chase arena in
/// words); `iterations` is the number of simplex pivots.
///
/// # Panics
///
/// Panics if `arcs` is not a power of two or `iterations == 0`.
#[must_use]
pub fn mcf(arcs: usize, iterations: u64) -> Program {
    assert!(arcs.is_power_of_two(), "arena must be a power of two");
    assert!(iterations > 0);
    let mask = (arcs - 1) as i64;
    let mut b = ProgramBuilder::new("mcf");
    b.data(arcs + 64);

    b.begin_func("main");
    b.call("init_arcs");
    b.movi(conv::LOOP, iterations as i64);
    b.movi(R12, 0); // current arc cursor (even = next-pointer slot)
    let top = b.here_label();
    b.call("primal_bea_mpp");
    b.call("refresh_potential");
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.mov(R0, R14);
    b.halt();
    b.end_func();

    // Arcs are (next, cost) pairs: even slot 2i holds the next pointer,
    // odd slot 2i+1 the cost. Next pointers form a full-period LCG orbit
    // over the even slots (`a ≡ 1 mod 4`, odd increment), so chasing
    // visits the whole arena in a cache-hostile order — and the refresh
    // pass below only ever touches odd (cost) slots, keeping the
    // permutation intact.
    let half = (arcs / 2) as i64;
    b.begin_func("init_arcs");
    b.movi(R2, 0);
    b.movi(R3, half);
    let init_top = b.here_label();
    b.muli(R4, R2, 2_654_435_761);
    b.addi(R4, R4, 12_345);
    b.andi(R4, R4, half - 1);
    b.add(R4, R4, R4); // even target slot
    b.add(R5, R2, R2); // this arc's even slot
    b.store(R4, R5, 0);
    b.xori(R7, R4, 0x3F);
    b.store(R7, R5, 1); // cost
    b.addi(R2, R2, 1);
    b.br(Cond::Lt, R2, R3, init_top);
    b.ret();
    b.end_func();

    // The hot pricing loop: chase 64 arcs, tracking the best reduced cost.
    b.begin_func("primal_bea_mpp");
    b.movi(R4, 64); // chase length per pivot
    b.movi(R15, i64::MAX); // best cost
    let chase = b.here_label();
    b.load(R13, R12, 0); // next arc (dependent, cache-hostile)
    b.load(R14, R13, 1); // its cost field
    let no_improve = b.new_label();
    b.br(Cond::Ge, R14, R15, no_improve);
    b.mov(R15, R14); // new best
    b.addi(R6, R6, 1);
    b.bind(no_improve).expect("fresh label");
    b.mov(R12, R13); // advance cursor
    b.subi(R4, R4, 1);
    b.brnz(R4, chase);
    b.ret();
    b.end_func();

    // Streaming potential refresh over a rotating 128-pair window,
    // updating only cost (odd) slots.
    b.begin_func("refresh_potential");
    b.andi(R2, R12, mask & !255);
    b.movi(R4, 128);
    let scan = b.here_label();
    b.load(R5, R2, 1);
    b.addi(R5, R5, 1);
    b.andi(R5, R5, mask);
    let skip_store = b.new_label();
    b.andi(R7, R5, 7);
    b.brnz(R7, skip_store);
    b.store(R5, R2, 1); // write back every 8th entry
    b.bind(skip_store).expect("fresh label");
    b.addi(R2, R2, 2);
    b.subi(R4, R4, 1);
    b.brnz(R4, scan);
    b.ret();
    b.end_func();

    b.build().expect("mcf proxy is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    #[test]
    fn runs_to_completion() {
        let p = mcf(1 << 12, 50);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(s.stop, StopReason::Halted);
        assert!(s.instructions > 20_000);
    }

    #[test]
    fn large_arena_misses_in_cache() {
        // Arena of 2^16 words = 512 KiB > L2 (256 KiB). Enough pivots that
        // the chase dominates the (sequential, line-friendly) init pass.
        let p = mcf(1 << 16, 1_500);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        let total = s.l1_hits + s.l2_hits + s.mem_accesses;
        // Long-latency loads (L1 misses) are what create retirement-stall
        // shadows; the chase should produce them constantly.
        let l1_miss_rate = (s.l2_hits + s.mem_accesses) as f64 / total as f64;
        assert!(
            l1_miss_rate > 0.2,
            "pointer chase should miss L1 often, got {l1_miss_rate:.3}"
        );
        assert!(s.mem_accesses > 10_000, "memory-level misses expected");
    }

    #[test]
    fn chase_visits_whole_arena() {
        // The multiplier is odd, so next[i] = a*i+c mod 2^k is a bijection;
        // verify the emitted constant stays odd (a build-time invariant the
        // cache-hostility argument rests on).
        assert_eq!(2_654_435_761i64 % 2, 1);
    }
}
