//! FullCMS proxy — the CERN production workload (§4.3.5).
//!
//! The original is a Geant4 application simulating physics events in an
//! LHC detector, running on ~300,000 cores. Its profile signature — the
//! one that matters for sampling accuracy — is a *long tail* of small,
//! fragmented floating-point methods reached through deep call chains,
//! with process selection that makes execution "similar ... to the
//! callchain kernel" (§5.2, explaining why pure-LBR does not beat
//! precise-with-fix there).
//!
//! The proxy generates that structure programmatically: a three-level
//! call DAG (processes → modules → helpers) of dozens of short functions,
//! with Zipf-weighted process selection so the function ranking has the
//! close-mass tail that defeats top-10 ordering for every method.

use crate::util::{conv, emit_extract, emit_lcg_step, GenRng};
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FullCmsParams {
    /// Number of simulated events (outer loop).
    pub events: u64,
    /// Steps per event (each step selects and runs one process).
    pub steps_per_event: u32,
    /// Top-level physics processes.
    pub processes: usize,
    /// Mid-level geometry/stepping modules.
    pub modules: usize,
    /// Leaf math helpers.
    pub helpers: usize,
    /// Structure-generation seed.
    pub seed: u64,
}

impl Default for FullCmsParams {
    fn default() -> Self {
        Self {
            events: 4_000,
            steps_per_event: 10,
            processes: 14,
            modules: 12,
            helpers: 16,
            seed: 0xCE57,
        }
    }
}

/// Builds the FullCMS proxy with default structure and `events` events.
#[must_use]
pub fn fullcms(events: u64) -> Program {
    fullcms_with(FullCmsParams {
        events,
        ..FullCmsParams::default()
    })
}

/// Builds the FullCMS proxy with explicit parameters.
///
/// # Panics
///
/// Panics if any structural parameter is zero.
#[must_use]
pub fn fullcms_with(p: FullCmsParams) -> Program {
    assert!(p.events > 0 && p.steps_per_event > 0);
    assert!(p.processes > 0 && p.modules > 0 && p.helpers > 0);
    let mut gen = GenRng::new(p.seed);
    let mut b = ProgramBuilder::new("fullcms");

    // --- main event loop ---------------------------------------------------
    b.begin_func("main");
    b.movi(conv::LOOP, p.events as i64);
    b.movi(conv::RNG, 0x4C_4843_2D43_4D53); // "LHC-CMS"
    b.fmovi(F1, 50.0); // particle energy
    let event_top = b.here_label();
    b.movi(R2, i64::from(p.steps_per_event));
    let step_top = b.here_label();
    // Zipf-weighted process selection: thresholds over an 8-bit draw.
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R5, conv::RNG, 35, 255);
    // Cumulative thresholds for weights w_i = 1/(i+1).
    let total: f64 = (0..p.processes).map(|i| 1.0 / (i as f64 + 1.0)).sum();
    let mut cum = 0.0;
    let step_done = b.new_label();
    for i in 0..p.processes {
        cum += 1.0 / (i as f64 + 1.0);
        let threshold = ((cum / total) * 256.0).round() as i64;
        let next = b.new_label();
        if i + 1 < p.processes {
            b.movi(R4, threshold.min(256));
            b.br(Cond::Ge, R5, R4, next);
        }
        b.call(format!("G4_proc_{i}"));
        b.jmp(step_done);
        if i + 1 < p.processes {
            b.bind(next).expect("fresh label");
        }
    }
    b.bind(step_done).expect("fresh label");
    b.subi(R2, R2, 1);
    b.brnz(R2, step_top);
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, event_top);
    b.cvt_fi(R0, F1);
    b.halt();
    b.end_func();

    // --- leaf helpers: short FP math ----------------------------------------
    for i in 0..p.helpers {
        b.begin_func(format!("G4_hlp_{i}"));
        let body = 2 + gen.below(5);
        for k in 0..body {
            match (i as u64 + k) % 5 {
                0 => {
                    b.fmovi(F4, 1.0 + i as f64 * 0.01);
                    b.fmul(F5, F1, F4);
                }
                1 => {
                    b.fadd(F6, F5, F4);
                }
                2 => {
                    b.addi(R6, R6, 1);
                }
                3 => {
                    b.fsub(F5, F5, F4);
                }
                _ => {
                    b.fsqrt(F6, F5);
                }
            }
        }
        b.ret();
        b.end_func();
    }

    // --- mid-level modules: work + 1-2 helper calls -------------------------
    for i in 0..p.modules {
        b.begin_func(format!("G4_mod_{i}"));
        b.addi(R7, R7, 1);
        let callees = 1 + gen.below(2);
        for _ in 0..callees {
            let h = gen.below(p.helpers as u64);
            b.call(format!("G4_hlp_{h}"));
        }
        // Conditional fragment: a short block guarded by data.
        let skip = b.new_label();
        b.andi(R8, R6, 3);
        b.brnz(R8, skip);
        b.fmovi(F7, 0.99);
        b.fmul(F1, F1, F7);
        b.bind(skip).expect("fresh label");
        b.ret();
        b.end_func();
    }

    // --- top-level processes: work + 1-3 module calls ------------------------
    for i in 0..p.processes {
        b.begin_func(format!("G4_proc_{i}"));
        emit_lcg_step(&mut b, conv::RNG);
        let callees = 1 + gen.below(3);
        for _ in 0..callees {
            let m = gen.below(p.modules as u64);
            b.call(format!("G4_mod_{m}"));
        }
        // Energy update fragment.
        b.fmovi(F4, 1.0 - 0.002 * (i as f64 + 1.0));
        b.fmul(F1, F1, F4);
        let keep = b.new_label();
        b.cvt_fi(R9, F1);
        b.brnz(R9, keep);
        b.fmovi(F1, 50.0); // re-seed a fresh particle when absorbed
        b.bind(keep).expect("fresh label");
        b.ret();
        b.end_func();
    }

    b.build().expect("fullcms proxy is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    #[test]
    fn runs_to_completion() {
        let p = fullcms(500);
        let s = run_with(
            &MachineModel::ivy_bridge(),
            &p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(s.stop, StopReason::Halted);
        assert!(s.instructions > 100_000);
    }

    #[test]
    fn long_tail_function_profile() {
        let p = fullcms(1_000);
        assert!(
            p.symbols.functions().len() > 40,
            "dozens of functions expected"
        );
        let m = MachineModel::ivy_bridge();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let rank = r.function_ranking();
        // Zipf selection: the hottest function is nowhere near a majority
        // (long tail), yet the top 10 all have real mass.
        let total = r.total_instructions as f64;
        assert!(
            rank[0].1 as f64 / total < 0.5,
            "no single dominating hotspot"
        );
        assert!(rank[9].1 > 0, "top-10 functions all execute");
        // Close-mass tail: the gap between ranks 7 and 10 is small, which
        // is what makes exact top-10 ordering hard for sampled profiles.
        let r7 = rank[6].1 as f64;
        let r10 = rank[9].1 as f64;
        assert!(r10 / r7 > 0.3, "tail masses should be close: {r7} vs {r10}");
    }

    #[test]
    fn structure_is_deterministic() {
        let a = fullcms(100);
        let b = fullcms(100);
        assert_eq!(a.insns, b.insns);
    }

    #[test]
    fn callchain_like_depth() {
        // main -> proc -> mod -> helper: call chains are deep and methods
        // short, the §5.2 explanation for pure-LBR not winning here.
        let p = fullcms(200);
        let m = MachineModel::westmere();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let ipb = r.total_instructions as f64 / r.taken_branches as f64;
        assert!(ipb < 10.0, "fragmented methods expected, got ipb {ipb:.1}");
    }
}
