//! Application proxies (§4.3.5): the SPEC CPU2006 subset the paper selects
//! for its enterprise-like characteristics, plus the CERN FullCMS
//! production workload.
//!
//! Each generator documents the shape properties it preserves from the
//! original; DESIGN.md carries the full substitution table.

pub mod fullcms;
pub mod mcf;
pub mod omnetpp;
pub mod povray;
pub mod xalanc;

pub use fullcms::fullcms;
pub use mcf::mcf;
pub use omnetpp::omnetpp;
pub use povray::povray;
pub use xalanc::xalanc;
