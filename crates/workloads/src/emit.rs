//! Emitter: renders each built-in workload's Rust builder output as a
//! checked-in `.ctasm` + manifest pair under `programs/`.
//!
//! The trick that keeps one source file valid at every scale: build the
//! program at two probe sizes, diff the instruction streams, and
//! require every differing position to be a `movi` whose immediate *is*
//! the size parameter (true of all nine builders — program structure is
//! scale-invariant). Those positions are emitted as `movi rD, N`
//! against a `.const N = <scale-1.0 base>` header, which the loader
//! overrides with the registry sizing rule at load time. Everything
//! else — including the scale-invariant `.init` handler tables omnetpp
//! and xalancbmk patch in after building — is emitted literally.
//!
//! The checked-in files are pinned by a test that re-runs the emitter
//! and byte-compares; regenerate with `CTASM_REGEN=1 cargo test -p
//! ct-workloads emit`.

use crate::registry::WorkloadClass;
use crate::{apps, kernels};
use ct_isa::{Opcode, Program};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One built-in workload's emission recipe.
pub struct EmitSpec {
    /// Registry name (manifest `name`).
    pub name: &'static str,
    pub class: WorkloadClass,
    /// File stem under `programs/`; the `NN_` prefix pins filename
    /// order to registry order for directory loads.
    pub file_stem: &'static str,
    /// The scaled constant's name in the emitted source.
    pub const_name: &'static str,
    /// Scale-1.0 size (the registry base) and clamp floor.
    pub base: u64,
    pub min: u64,
    /// Builds the workload at a given size, fixed params baked in.
    pub build: fn(u64) -> Program,
}

/// All nine built-ins in registry order (kernels then applications).
#[must_use]
pub fn specs() -> Vec<EmitSpec> {
    use WorkloadClass::{Application, Kernel};
    vec![
        EmitSpec {
            name: "latency_biased",
            class: Kernel,
            file_stem: "00_latency_biased",
            const_name: "N",
            base: 1_900_000,
            min: 100,
            build: kernels::latency_biased,
        },
        EmitSpec {
            name: "callchain",
            class: Kernel,
            file_stem: "01_callchain",
            const_name: "N",
            base: 185_000,
            min: 100,
            build: |n| kernels::callchain(n, 10),
        },
        EmitSpec {
            name: "g4box",
            class: Kernel,
            file_stem: "02_g4box",
            const_name: "N",
            base: 260_000,
            min: 100,
            build: kernels::g4box,
        },
        EmitSpec {
            name: "test40",
            class: Kernel,
            file_stem: "03_test40",
            const_name: "N",
            base: 300_000,
            min: 100,
            build: kernels::test40,
        },
        EmitSpec {
            name: "mcf",
            class: Application,
            file_stem: "04_mcf",
            const_name: "N",
            base: 10_000,
            min: 50,
            build: |n| apps::mcf(1 << 16, n),
        },
        EmitSpec {
            name: "povray",
            class: Application,
            file_stem: "05_povray",
            const_name: "N",
            base: 130_000,
            min: 50,
            build: apps::povray,
        },
        EmitSpec {
            name: "omnetpp",
            class: Application,
            file_stem: "06_omnetpp",
            const_name: "N",
            base: 160_000,
            min: 50,
            build: |n| apps::omnetpp(n, 4096),
        },
        EmitSpec {
            name: "xalancbmk",
            class: Application,
            file_stem: "07_xalancbmk",
            const_name: "N",
            base: 170,
            min: 50,
            build: |n| apps::xalanc(8192, n),
        },
        EmitSpec {
            name: "fullcms",
            class: Application,
            file_stem: "08_fullcms",
            const_name: "N",
            base: 22_000,
            min: 50,
            build: apps::fullcms,
        },
    ]
}

/// Positions whose `movi` immediate is the size parameter, found by
/// diffing two probe builds. Panics (emitter-side only) if the builder
/// violates the scale-invariant-structure contract.
fn scaled_positions(spec: &EmitSpec) -> Vec<usize> {
    const P1: u64 = 131;
    const P2: u64 = 257;
    let a = (spec.build)(P1);
    let b = (spec.build)(P2);
    assert_eq!(a.insns.len(), b.insns.len(), "{}: structure varies", spec.name);
    assert_eq!(a.symbols, b.symbols, "{}: symbols vary", spec.name);
    assert_eq!(a.data_words, b.data_words, "{}: data varies", spec.name);
    assert_eq!(a.init_data, b.init_data, "{}: init varies", spec.name);
    let mut out = Vec::new();
    for (i, (x, y)) in a.insns.iter().zip(&b.insns).enumerate() {
        if x == y {
            continue;
        }
        match (x.op, y.op) {
            (Opcode::MovI(d1, v1), Opcode::MovI(d2, v2))
                if d1 == d2 && v1 == P1 as i64 && v2 == P2 as i64 =>
            {
                out.push(i);
            }
            _ => panic!(
                "{}: insn {i} varies with size but is not `movi rD, n`: {x} vs {y}",
                spec.name
            ),
        }
    }
    assert!(!out.is_empty(), "{}: size parameter is never materialized", spec.name);
    out
}

/// Renders the `.ctasm` source for one spec.
#[must_use]
pub fn emit_source(spec: &EmitSpec) -> String {
    let scaled: HashMap<usize, ()> = scaled_positions(spec).into_iter().map(|i| (i, ())).collect();
    let p = (spec.build)(spec.base);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} — generated from the Rust builder (crate ct-workloads, module emit).",
        spec.name
    );
    let _ = writeln!(
        out,
        "; Regenerate with: CTASM_REGEN=1 cargo test -p ct-workloads emit"
    );
    let _ = writeln!(out, ".const {} = {}", spec.const_name, spec.base);
    if p.data_words > 0 {
        let _ = writeln!(out, ".data {}", p.data_words);
    }
    for (idx, val) in &p.init_data {
        let _ = writeln!(out, ".init {idx}, {val}");
    }
    let funcs = p.symbols.functions();
    let mut next = 0usize;
    let mut open_end: Option<u32> = None;
    for a in 0..=p.insns.len() as u32 {
        if open_end == Some(a) {
            let _ = writeln!(out, ".endfunc");
            open_end = None;
        }
        while next < funcs.len() && funcs[next].entry == a && open_end.is_none() {
            let f = &funcs[next];
            let _ = writeln!(out, ".func {}", f.name);
            next += 1;
            if f.end == a {
                let _ = writeln!(out, ".endfunc");
            } else {
                open_end = Some(f.end);
            }
        }
        if let Some(insn) = p.insns.get(a as usize) {
            if scaled.contains_key(&(a as usize)) {
                let Opcode::MovI(d, _) = insn.op else {
                    unreachable!("scaled positions are movi by construction")
                };
                let _ = writeln!(out, "    movi {d}, {}", spec.const_name);
            } else {
                let _ = writeln!(out, "    {insn}");
            }
        }
    }
    out
}

/// Renders the JSON manifest for one spec.
#[must_use]
pub fn emit_manifest(spec: &EmitSpec) -> String {
    let class = match spec.class {
        WorkloadClass::Kernel => "kernel",
        WorkloadClass::Application => "application",
    };
    // The builder may name the program differently from the registry
    // workload (xalancbmk wraps a program named "xalanc"); the manifest
    // records that so the loaded program is structurally identical.
    let program_name = (spec.build)(spec.base).name;
    let program_field = if program_name == spec.name {
        String::new()
    } else {
        format!("\n  \"program\": \"{program_name}\",")
    };
    format!(
        "{{\n  \"name\": \"{}\",{}\n  \"class\": \"{}\",\n  \"source\": \"{}.ctasm\",\n  \"scaled\": {{ \"{}\": {{ \"base\": {}, \"min\": {} }} }}\n}}\n",
        spec.name, program_field, class, spec.file_stem, spec.const_name, spec.base, spec.min
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{self, LoaderLimits};
    use std::path::Path;

    /// Byte-pins every checked-in `programs/` pair to the emitter
    /// output; set `CTASM_REGEN=1` to rewrite them instead.
    #[test]
    fn emit_checked_in_files_are_current() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
        let regen = std::env::var_os("CTASM_REGEN").is_some();
        if regen {
            std::fs::create_dir_all(&dir).unwrap();
        }
        for spec in specs() {
            for (ext, text) in [
                ("ctasm", emit_source(&spec)),
                ("json", emit_manifest(&spec)),
            ] {
                let path = dir.join(format!("{}.{ext}", spec.file_stem));
                if regen {
                    std::fs::write(&path, &text).unwrap();
                } else {
                    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                        panic!("{}: {e} (run with CTASM_REGEN=1 to generate)", path.display())
                    });
                    assert_eq!(
                        on_disk, text,
                        "{} is stale; regenerate with CTASM_REGEN=1",
                        path.display()
                    );
                }
            }
        }
    }

    /// The load path reproduces the builder output exactly, at every
    /// scale the registry uses — including the min-clamped regime.
    #[test]
    fn emitted_pairs_load_identical_to_builders() {
        let limits = LoaderLimits::default();
        for spec in specs() {
            let manifest = emit_manifest(&spec);
            let source = emit_source(&spec);
            for scale in [0.0, 0.000_001, 0.01, 0.02, 1.0] {
                let w = loader::load_pair(
                    Path::new("embedded:test"),
                    &manifest,
                    &source,
                    scale,
                    &limits,
                )
                .unwrap_or_else(|e| panic!("{} @ {scale}: {e}", spec.name));
                let sized = ((spec.base as f64 * scale) as u64).max(spec.min);
                let built = (spec.build)(sized);
                assert_eq!(
                    w.program, built,
                    "{} @ scale {scale}: loaded program differs from builder",
                    spec.name
                );
                assert_eq!(w.name, spec.name);
            }
        }
    }
}
