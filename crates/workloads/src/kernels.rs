//! The paper's four kernels (§4.3.1–§4.3.4).
//!
//! Each kernel isolates one sampling difficulty. Loop-body instruction
//! counts are deliberately *round* (8 per iteration for Latency-Biased) so
//! that the default round sampling periods resonate with them — the effect
//! prime periods and randomization exist to break.

use crate::util::{conv, emit_extract, emit_lcg_step};
use ct_isa::reg::names::*;
use ct_isa::{Cond, Program, ProgramBuilder};

/// §4.3.1 Latency-Biased: `while (n--) ((n % 2) ? x /= y : x += y);`
///
/// Both paths retire exactly 8 instructions per iteration; the odd path's
/// `div` is a long-latency instruction that soaks up imprecisely
/// distributed samples (the shadow effect), distorting the profile.
///
/// # Panics
///
/// Panics if `n == 0` (the builder would emit an empty loop).
#[must_use]
pub fn latency_biased(n: u64) -> Program {
    assert!(n > 0);
    let mut b = ProgramBuilder::new("latency_biased");
    b.begin_func("main");
    b.movi(conv::LOOP, n as i64);
    b.movi(R3, 1_000_000_007); // x
    b.movi(R4, 3); // y
    let top = b.here_label();
    let even = b.new_label();
    let next = b.new_label();
    b.andi(R5, conv::LOOP, 1); // 1: n % 2
    b.brz(R5, even); // 2
    b.div(R3, R3, R4); // 3 (odd): x /= y  — long latency
    b.nop(); // 4
    b.jmp(next); // 5
    b.bind(even).expect("fresh label");
    b.add(R3, R3, R4); // 3 (even): x += y
    b.nop(); // 4
    b.nop(); // 5
    b.bind(next).expect("fresh label");
    b.addi(R6, R6, 1); // 6
    b.subi(conv::LOOP, conv::LOOP, 1); // 7
    b.brnz(conv::LOOP, top); // 8
    b.mov(R0, R3);
    b.halt();
    b.end_func();
    b.build().expect("latency_biased is structurally valid")
}

/// §4.3.2 Callchain: a 10-deep call chain enveloped by a loop.
///
/// Every function performs identical work (8 retired instructions per
/// invocation including `call`/`ret`), so a perfect profiler reports equal
/// instruction counts for all ten. Retirement bursts around the call/ret
/// boundaries ("out-of-order clustering of uops") are what skews sampled
/// profiles here.
///
/// # Panics
///
/// Panics if `n == 0` or `depth == 0`.
#[must_use]
pub fn callchain(n: u64, depth: usize) -> Program {
    assert!(n > 0 && depth > 0);
    let mut b = ProgramBuilder::new("callchain");
    b.begin_func("main");
    b.movi(conv::LOOP, n as i64);
    let top = b.here_label();
    b.call("f1");
    // Bookkeeping filler brings the default 10-deep iteration to 88
    // retired instructions — sharing a factor of 8 with the round
    // sampling period, so fixed-round sampling locks onto a handful of
    // loop phases (the synchronization the prime period breaks).
    b.addi(R2, R2, 1);
    b.addi(R3, R3, 1);
    b.addi(R2, R2, 1);
    b.addi(R3, R3, 1);
    b.addi(R2, R2, 1);
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.halt();
    b.end_func();

    for i in 1..=depth {
        b.begin_func(format!("f{i}"));
        if i < depth {
            // 3 ALU ops + call + 3 ALU ops + ret = 8 instructions.
            b.addi(R6, R6, 1);
            b.addi(R7, R7, 1);
            b.addi(R6, R6, 1);
            b.call(format!("f{}", i + 1));
            b.addi(R7, R7, 1);
            b.addi(R6, R6, 1);
            b.addi(R7, R7, 1);
            b.ret();
        } else {
            // Leaf: 7 ALU ops + ret = 8 instructions.
            for _ in 0..7 {
                b.addi(R6, R6, 1);
            }
            b.ret();
        }
        b.end_func();
    }
    b.build().expect("callchain is structurally valid")
}

/// §4.3.3 G4Box: two functions with an even work split, dominated by
/// chains of tests and branches that generate very short basic blocks —
/// "a good case for LBR analysis".
///
/// `classify` runs an integer threshold cascade; `surface` runs the same
/// cascade shape over a transformed value with floating-point updates.
/// Input data comes from an in-program LCG so branch outcomes vary.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn g4box(n: u64) -> Program {
    assert!(n > 0);
    let mut b = ProgramBuilder::new("g4box");
    b.begin_func("main");
    b.movi(conv::LOOP, n as i64);
    b.movi(conv::RNG, 0x5DEECE66D);
    b.fmovi(F1, 1.0);
    let top = b.here_label();
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R2, conv::RNG, 29, 255);
    b.call("classify");
    b.call("surface");
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.mov(R0, R6);
    b.halt();
    b.end_func();

    // Threshold cascade: 8 tests, each a 3-instruction basic block.
    b.begin_func("classify");
    let done = b.new_label();
    for (i, threshold) in [16i64, 40, 72, 96, 128, 160, 200, 232].iter().enumerate() {
        let next_test = b.new_label();
        b.movi(R7, *threshold);
        b.br(Cond::Ge, R2, R7, next_test);
        b.addi(R6, R6, i as i64 + 1);
        b.jmp(done);
        b.bind(next_test).expect("fresh label");
    }
    b.addi(R6, R6, 9);
    b.bind(done).expect("fresh label");
    b.ret();
    b.end_func();

    // Same cascade shape over a shifted field, with FP work in the arms.
    b.begin_func("surface");
    let sdone = b.new_label();
    emit_extract(&mut b, R3, conv::RNG, 17, 255);
    for threshold in [24i64, 56, 88, 120, 152, 184, 216, 240] {
        let next_test = b.new_label();
        b.movi(R7, threshold);
        b.br(Cond::Ge, R3, R7, next_test);
        b.cvt_if(F2, R3);
        b.fadd(F1, F1, F2);
        b.jmp(sdone);
        b.bind(next_test).expect("fresh label");
    }
    b.fmovi(F2, 0.5);
    b.fmul(F1, F1, F2);
    b.bind(sdone).expect("fresh label");
    b.ret();
    b.end_func();
    b.build().expect("g4box is structurally valid")
}

/// §4.3.4 Geant4 test40: a kernelized doppelganger of large Geant4
/// applications — "an electron travels through a detector with a very
/// simple geometry, triggering physics processes on its way".
///
/// The step loop locates the particle (integer geometry), advances it, and
/// dispatches one of four small fragmented physics methods depending on
/// pseudo-random interaction draws and on the current material. The
/// signature is "a collection of small, fragmented methods, conditionally
/// executed".
///
/// # Panics
///
/// Panics if `steps == 0`.
#[must_use]
pub fn test40(steps: u64) -> Program {
    assert!(steps > 0);
    let mut b = ProgramBuilder::new("test40");
    b.begin_func("main");
    b.movi(conv::LOOP, steps as i64);
    b.movi(conv::RNG, 0x1234_5678_9ABC);
    b.movi(R2, 0); // position (cell index)
    b.fmovi(F1, 100.0); // energy
    let top = b.here_label();
    // Geometry: locate the cell and advance the particle.
    b.call("geom_locate");
    b.call("geom_step");
    // Physics selection from fresh random bits.
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R5, conv::RNG, 40, 3);
    let p_brems = b.new_label();
    let p_scatter = b.new_label();
    let p_absorb = b.new_label();
    let stepped = b.new_label();
    b.movi(R7, 1);
    b.br(Cond::Eq, R5, R7, p_brems);
    b.movi(R7, 2);
    b.br(Cond::Eq, R5, R7, p_scatter);
    b.movi(R7, 3);
    b.br(Cond::Eq, R5, R7, p_absorb);
    b.call("phys_ionize");
    b.jmp(stepped);
    b.bind(p_brems).expect("fresh label");
    b.call("phys_brems");
    b.jmp(stepped);
    b.bind(p_scatter).expect("fresh label");
    b.call("phys_scatter");
    b.jmp(stepped);
    b.bind(p_absorb).expect("fresh label");
    b.call("phys_absorb");
    b.bind(stepped).expect("fresh label");
    b.subi(conv::LOOP, conv::LOOP, 1);
    b.brnz(conv::LOOP, top);
    b.mov(R0, R2);
    b.halt();
    b.end_func();

    // Geometry: cell = |position| % 16 through compare chains (small
    // blocks, integer only).
    b.begin_func("geom_locate");
    b.andi(R3, R2, 15);
    let in_core = b.new_label();
    b.movi(R7, 8);
    b.br(Cond::Lt, R3, R7, in_core);
    b.addi(R4, R4, 1); // tracker region
    b.ret();
    b.bind(in_core).expect("fresh label");
    b.addi(R4, R4, 2); // calorimeter region
    b.ret();
    b.end_func();

    b.begin_func("geom_step");
    emit_lcg_step(&mut b, conv::RNG);
    emit_extract(&mut b, R5, conv::RNG, 21, 7);
    b.add(R2, R2, R5);
    b.andi(R2, R2, 1023);
    b.ret();
    b.end_func();

    // Physics processes: small fragmented FP methods of unequal shapes.
    b.begin_func("phys_ionize");
    b.fmovi(F2, 0.98);
    b.fmul(F1, F1, F2);
    b.addi(R6, R6, 1);
    b.ret();
    b.end_func();

    b.begin_func("phys_brems");
    b.fmovi(F2, 0.75);
    b.fmul(F1, F1, F2);
    b.fsqrt(F3, F1);
    b.fadd(F1, F1, F3);
    b.addi(R6, R6, 2);
    b.ret();
    b.end_func();

    b.begin_func("phys_scatter");
    b.fmovi(F2, 1.02);
    b.fmul(F1, F1, F2);
    b.fmovi(F3, 2.0);
    b.fdiv(F4, F1, F3);
    b.addi(R6, R6, 3);
    b.ret();
    b.end_func();

    b.begin_func("phys_absorb");
    b.fmovi(F1, 100.0); // new particle
    b.addi(R6, R6, 4);
    b.movi(R2, 0);
    b.ret();
    b.end_func();

    b.build().expect("test40 is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_sim::{event::NullObserver, exec::run_with, MachineModel, RunConfig, StopReason};

    fn run(p: &Program) -> ct_sim::RunSummary {
        run_with(
            &MachineModel::ivy_bridge(),
            p,
            &RunConfig::default(),
            &mut NullObserver,
        )
        .unwrap()
    }

    #[test]
    fn latency_biased_iteration_is_exactly_eight_instructions() {
        let p = latency_biased(1000);
        let s = run(&p);
        assert_eq!(s.stop, StopReason::Halted);
        // 3 setup + 8 * n + 2 tail.
        assert_eq!(s.instructions, 3 + 8 * 1000 + 2);
    }

    #[test]
    fn latency_biased_halves_divide() {
        let p = latency_biased(10_000);
        let cfg = ct_isa::Cfg::build(&p);
        // The div instruction exists and is in its own short block.
        let div_addr = p
            .insns
            .iter()
            .position(|i| i.class() == ct_isa::InsnClass::Div)
            .unwrap();
        let blk = cfg.block(cfg.block_of(div_addr as u32));
        assert!(blk.len() <= 3);
        let s = run(&p);
        assert_eq!(s.stop, StopReason::Halted);
    }

    #[test]
    fn callchain_functions_do_equal_work() {
        let p = callchain(2_000, 10);
        assert_eq!(p.symbols.functions().len(), 11); // main + f1..f10
        let m = MachineModel::ivy_bridge();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let per_fn: Vec<u64> = r
            .function_names
            .iter()
            .zip(&r.function_instructions)
            .filter(|(n, _)| n.starts_with('f'))
            .map(|(_, &c)| c)
            .collect();
        assert_eq!(per_fn.len(), 10);
        // All ten functions retire exactly the same instruction count.
        assert!(per_fn.windows(2).all(|w| w[0] == w[1]), "{per_fn:?}");
        assert_eq!(per_fn[0], 8 * 2_000);
    }

    #[test]
    fn g4box_splits_work_evenly_and_has_short_blocks() {
        let p = g4box(5_000);
        let m = MachineModel::ivy_bridge();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        let get = |name: &str| {
            r.function_names
                .iter()
                .position(|n| n == name)
                .map(|i| r.function_instructions[i])
                .unwrap()
        };
        let classify = get("classify") as f64;
        let surface = get("surface") as f64;
        let ratio = classify / surface;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "even work split expected, got {classify} vs {surface}"
        );
        // Short-block signature: mean block length under 4 instructions.
        let cfg = ct_isa::Cfg::build(&p);
        let mean_len = p.len() as f64 / cfg.num_blocks() as f64;
        assert!(mean_len < 4.0, "mean block length {mean_len}");
    }

    #[test]
    fn test40_exercises_all_processes() {
        let p = test40(20_000);
        let m = MachineModel::westmere();
        let r = ct_instrument::ReferenceProfile::collect(&m, &p, &RunConfig::default()).unwrap();
        for proc_name in ["phys_ionize", "phys_brems", "phys_scatter", "phys_absorb"] {
            let i = r
                .function_names
                .iter()
                .position(|n| n == proc_name)
                .unwrap();
            assert!(r.function_instructions[i] > 0, "{proc_name} never executed");
        }
        // Fragmented methods: taken branches are frequent (enterprise-like
        // instructions-per-taken-branch, §2.3 cites ratios of 6-12).
        let ipb = r.total_instructions as f64 / r.taken_branches as f64;
        assert!(ipb < 12.0, "instructions per taken branch {ipb}");
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = run(&latency_biased(5_000));
        let b = run(&latency_biased(5_000));
        assert_eq!(a, b);
        let c = run(&test40(5_000));
        let d = run(&test40(5_000));
        assert_eq!(c, d);
    }
}
