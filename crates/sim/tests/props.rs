//! Property-based tests for the CPU model: conservation laws of the
//! retirement stream on randomly generated (always-terminating) programs.

use ct_isa::reg::names::*;
use ct_isa::{Opcode, ProgramBuilder, Reg};
use ct_sim::{Cpu, MachineModel, RetireEvent, RetireObserver, RunConfig, StopReason};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (2u8..16).prop_map(Reg::new) // r1 is the loop counter, keep it safe
}

fn arb_linear_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Add(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Div(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Mul(a, b, c)),
        (arb_reg(), arb_reg(), -50i64..50).prop_map(|(a, b, i)| Opcode::AddI(a, b, i)),
        (arb_reg(), -100i64..100).prop_map(|(a, i)| Opcode::MovI(a, i)),
        Just(Opcode::Nop),
    ]
}

fn loop_program(loop_n: u16, body: &[Opcode]) -> ct_isa::Program {
    let mut b = ProgramBuilder::new("prop");
    b.begin_func("main");
    b.movi(R1, i64::from(loop_n) + 1);
    let top = b.here_label();
    for op in body {
        b.emit(*op);
    }
    b.subi(R1, R1, 1);
    b.brnz(R1, top);
    b.halt();
    b.end_func();
    b.build().expect("valid")
}

#[derive(Default)]
struct Collector(Vec<RetireEvent>);
impl RetireObserver for Collector {
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.0.push(*ev);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retire_stream_conservation(
        loop_n in 1u16..50,
        body in prop::collection::vec(arb_linear_op(), 0..20),
    ) {
        let p = loop_program(loop_n, &body);
        for machine in MachineModel::paper_machines() {
            let mut c = Collector::default();
            let s = Cpu::new(&machine)
                .run(&p, &RunConfig::default(), &mut [&mut c])
                .unwrap();
            // Every retired instruction is observed exactly once, in order.
            prop_assert_eq!(c.0.len() as u64, s.instructions);
            let expected =
                2 + u64::from(loop_n + 1) * (body.len() as u64 + 2);
            prop_assert_eq!(s.instructions, expected);
            // Sequence numbers dense; cycles monotone; bursts bounded.
            let mut per_cycle = std::collections::HashMap::new();
            let mut prev_cycle = 0u64;
            for (i, ev) in c.0.iter().enumerate() {
                prop_assert_eq!(ev.seq, i as u64);
                prop_assert!(ev.cycle >= prev_cycle);
                prev_cycle = ev.cycle;
                *per_cycle.entry(ev.cycle).or_insert(0u32) += 1;
            }
            for (&cyc, &n) in &per_cycle {
                prop_assert!(
                    n <= machine.retire_width,
                    "cycle {} retired {} > width {}", cyc, n, machine.retire_width
                );
            }
            // Uop totals match.
            let uops: u64 = c.0.iter().map(|e| u64::from(e.uops)).sum();
            prop_assert_eq!(uops, s.uops);
            prop_assert_eq!(s.stop, StopReason::Halted);
        }
    }

    #[test]
    fn taken_branch_count_matches_events(
        loop_n in 1u16..40,
        body in prop::collection::vec(arb_linear_op(), 0..10),
    ) {
        let p = loop_program(loop_n, &body);
        let machine = MachineModel::ivy_bridge();
        let mut c = Collector::default();
        let s = Cpu::new(&machine)
            .run(&p, &RunConfig::default(), &mut [&mut c])
            .unwrap();
        let taken = c.0.iter().filter(|e| e.is_taken_branch()).count() as u64;
        prop_assert_eq!(taken, s.taken_branches);
        // The loop back edge is taken exactly loop_n times.
        prop_assert_eq!(s.taken_branches, u64::from(loop_n));
        // Every taken target is in range and matches the recorded insn.
        for ev in c.0.iter().filter(|e| e.is_taken_branch()) {
            let t = ev.taken_target.unwrap();
            prop_assert!((t as usize) < p.len());
        }
    }

    #[test]
    fn fuel_truncation_is_exact(
        loop_n in 10u16..50,
        fuel in 1u64..200,
    ) {
        let p = loop_program(loop_n, &[Opcode::Nop, Opcode::Nop]);
        let machine = MachineModel::westmere();
        let mut c = Collector::default();
        let cfg = RunConfig { max_insns: fuel, ..RunConfig::default() };
        let s = Cpu::new(&machine).run(&p, &cfg, &mut [&mut c]).unwrap();
        if s.stop == StopReason::FuelExhausted {
            prop_assert_eq!(s.instructions, fuel);
        }
        prop_assert_eq!(c.0.len() as u64, s.instructions);
    }

    #[test]
    fn long_latency_instructions_stall_retirement(
        pre in 1usize..6,
    ) {
        // A div preceded by `pre` adds: its retire cycle must trail the
        // previous instruction's by at least (div latency - hidden).
        let mut body = vec![Opcode::Add(R3, R4, R5); pre];
        body.push(Opcode::Div(R6, R3, R4));
        let p = loop_program(3, &body);
        let machine = MachineModel::ivy_bridge();
        let mut c = Collector::default();
        Cpu::new(&machine).run(&p, &RunConfig::default(), &mut [&mut c]).unwrap();
        let min_gap = u64::from(machine.latencies.div - machine.hide_latency);
        for w in c.0.windows(2) {
            if w[1].class == ct_isa::InsnClass::Div {
                prop_assert!(
                    w[1].cycle - w[0].cycle >= min_gap,
                    "div gap {} < {}", w[1].cycle - w[0].cycle, min_gap
                );
            }
        }
    }
}
