//! A two-level set-associative data-cache model with LRU replacement.
//!
//! Loads are the only variable-latency instructions in the machine model;
//! the cache determines whether a load completes in the L1/L2 hit latency
//! or stalls retirement for a memory round trip. The mcf application proxy
//! relies on this: its pointer-chasing loads miss constantly, producing the
//! long-latency shadows that make classic sampling inaccurate on it.

use crate::machine::CacheConfig;

/// One set-associative cache level (tags only; data values live in the
/// executor's flat memory).
#[derive(Debug, Clone)]
struct Level {
    /// `sets[set][way]` holds a tag or `u64::MAX` for invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
}

impl Level {
    fn new(words: usize, ways: usize, line_words: usize) -> Self {
        let lines = (words / line_words).max(1);
        let sets = (lines / ways).max(1);
        Self {
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            sets,
            ways,
        }
    }

    /// Probes for `line`; on miss, installs it (evicting the LRU way).
    /// Returns whether the probe hit.
    fn access(&mut self, line: u64, now: u64) -> bool {
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = now;
            return true;
        }
        // Miss: evict LRU.
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0);
        self.tags[base + victim] = line;
        self.stamps[base + victim] = now;
        false
    }
}

/// The two-level hierarchy.
#[derive(Debug, Clone)]
pub struct CacheModel {
    l1: Level,
    l2: Level,
    cfg: CacheConfig,
    clock: u64,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

impl CacheModel {
    /// Builds the hierarchy for a machine's cache geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            l1: Level::new(cfg.l1_words, cfg.l1_ways, cfg.line_words),
            l2: Level::new(cfg.l2_words, cfg.l2_ways, cfg.line_words),
            cfg,
            clock: 0,
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
        }
    }

    /// Accesses the word at `word_addr`, returning the access latency in
    /// cycles. Both loads and stores probe the hierarchy (write-allocate).
    pub fn access(&mut self, word_addr: u64) -> u32 {
        self.clock += 1;
        let line = word_addr / self.cfg.line_words as u64;
        if self.l1.access(line, self.clock) {
            self.hits_l1 += 1;
            self.cfg.l1_latency
        } else if self.l2.access(line, self.clock) {
            self.hits_l2 += 1;
            self.cfg.l2_latency
        } else {
            self.misses += 1;
            self.cfg.mem_latency
        }
    }

    /// (L1 hits, L2 hits, memory accesses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CacheConfig {
        CacheConfig {
            l1_words: 64, // 8 lines
            l1_ways: 2,
            l2_words: 256, // 32 lines
            l2_ways: 4,
            line_words: 8,
            l1_latency: 4,
            l2_latency: 12,
            mem_latency: 150,
        }
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = CacheModel::new(tiny_cfg());
        assert_eq!(c.access(0), 150);
        assert_eq!(c.access(1), 4); // same line
        assert_eq!(c.access(7), 4);
        assert_eq!(c.access(8), 150); // next line
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut c = CacheModel::new(tiny_cfg());
        // Touch 16 lines: twice the L1 capacity, within L2.
        for line in 0..16u64 {
            c.access(line * 8);
        }
        // Re-touch: everything left L1 (capacity 8 lines) for the first
        // half; those should hit in L2 now.
        let lat = c.access(0);
        assert_eq!(lat, 12, "evicted from L1 but resident in L2");
    }

    #[test]
    fn streaming_beyond_l2_misses_to_memory() {
        let mut c = CacheModel::new(tiny_cfg());
        for line in 0..1000u64 {
            c.access(line * 8);
        }
        // A line far in the past is gone from both levels.
        assert_eq!(c.access(0), 150);
        let (h1, _h2, miss) = c.stats();
        assert!(miss > h1);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = CacheModel::new(tiny_cfg());
        // 4 sets in L1 (8 lines / 2 ways). Lines 0, 4, 8 map to set 0.
        c.access(0); // install line 0
        c.access(4 * 8); // install line 4 (set 0)
        c.access(0); // touch line 0 -> line 4 is LRU
        c.access(8 * 8); // install line 8, evicts line 4
        assert_eq!(c.access(0), 4, "hot line survived");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = CacheModel::new(tiny_cfg());
        c.access(0);
        c.access(0);
        c.access(0);
        let (h1, h2, m) = c.stats();
        assert_eq!((h1, h2, m), (2, 0, 1));
    }
}
