//! A two-level set-associative data-cache model with LRU replacement.
//!
//! Loads are the only variable-latency instructions in the machine model;
//! the cache determines whether a load completes in the L1/L2 hit latency
//! or stalls retirement for a memory round trip. The mcf application proxy
//! relies on this: its pointer-chasing loads miss constantly, producing the
//! long-latency shadows that make classic sampling inaccurate on it.
//!
//! The layout is built for the interpreter's per-access hot path: set
//! counts are validated powers of two so set selection is a mask (never a
//! division), each way packs its tag and LRU stamp side by side so one
//! probe walks a single contiguous stretch of memory, and the hit scan and
//! LRU victim scan are fused into one pass. [`CacheModel::reset`] restores
//! the cold state without reallocating, so a replay loop reuses the arrays
//! run over run.

use crate::error::SimError;
use crate::machine::CacheConfig;

/// One way of one set: the line tag and its LRU stamp, packed so a set
/// probe touches one contiguous run of `Way`s.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Installed line tag; `u64::MAX` marks a never-filled way.
    tag: u64,
    /// Stamp from the model's access clock; lowest stamp is the LRU
    /// victim.
    stamp: u64,
}

const INVALID: Way = Way {
    tag: u64::MAX,
    stamp: 0,
};

/// One set-associative cache level (tags only; data values live in the
/// executor's flat memory).
#[derive(Debug, Clone)]
struct Level {
    /// `ways[set * ways_per_set + way]`, set-major.
    ways: Vec<Way>,
    /// `sets - 1`; the set count is a validated power of two.
    set_mask: u64,
    ways_per_set: usize,
}

impl Level {
    /// Builds the level. Geometry must already be validated by
    /// [`CacheConfig::validate`] (exact power-of-two set count).
    fn new(words: usize, ways: usize, line_words: usize) -> Self {
        let lines = words / line_words;
        let sets = lines / ways;
        debug_assert!(sets.is_power_of_two() && sets * ways == lines);
        Self {
            ways: vec![INVALID; sets * ways],
            set_mask: sets as u64 - 1,
            ways_per_set: ways,
        }
    }

    /// Invalidates every way without reallocating.
    fn reset(&mut self) {
        self.ways.fill(INVALID);
    }

    /// Probes for `line`; on miss, installs it (evicting the LRU way).
    /// Returns whether the probe hit. One fused pass finds both the hit
    /// way and the LRU victim: a strict `<` keeps the first
    /// lowest-stamped way, matching the old `min_by_key` tie-break.
    #[inline]
    fn access(&mut self, line: u64, now: u64) -> bool {
        let base = (line & self.set_mask) as usize * self.ways_per_set;
        let set = &mut self.ways[base..base + self.ways_per_set];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (w, way) in set.iter_mut().enumerate() {
            if way.tag == line {
                way.stamp = now;
                return true;
            }
            if way.stamp < victim_stamp {
                victim_stamp = way.stamp;
                victim = w;
            }
        }
        set[victim] = Way { tag: line, stamp: now };
        false
    }
}

/// The two-level hierarchy.
#[derive(Debug, Clone)]
pub struct CacheModel {
    l1: Level,
    l2: Level,
    cfg: CacheConfig,
    /// `log2(line_words)`: line extraction is a shift, never a division.
    line_shift: u32,
    clock: u64,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

impl CacheModel {
    /// Builds the hierarchy for a machine's cache geometry, rejecting
    /// degenerate configurations (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        Ok(Self {
            l1: Level::new(cfg.l1_words, cfg.l1_ways, cfg.line_words),
            l2: Level::new(cfg.l2_words, cfg.l2_ways, cfg.line_words),
            cfg,
            line_shift: cfg.line_words.trailing_zeros(),
            clock: 0,
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
        })
    }

    /// Restores the cold state (all ways invalid, counters zero) without
    /// reallocating either level's way array.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.clock = 0;
        self.hits_l1 = 0;
        self.hits_l2 = 0;
        self.misses = 0;
    }

    /// Accesses the word at `word_addr`, returning the access latency in
    /// cycles. Both loads and stores probe the hierarchy (write-allocate);
    /// the L1 and L2 probes share one clock tick and one line extraction.
    #[inline]
    pub fn access(&mut self, word_addr: u64) -> u32 {
        self.clock += 1;
        let line = word_addr >> self.line_shift;
        if self.l1.access(line, self.clock) {
            self.hits_l1 += 1;
            self.cfg.l1_latency
        } else if self.l2.access(line, self.clock) {
            self.hits_l2 += 1;
            self.cfg.l2_latency
        } else {
            self.misses += 1;
            self.cfg.mem_latency
        }
    }

    /// (L1 hits, L2 hits, memory accesses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CacheConfig {
        CacheConfig {
            l1_words: 64, // 8 lines
            l1_ways: 2,
            l2_words: 256, // 32 lines
            l2_ways: 4,
            line_words: 8,
            l1_latency: 4,
            l2_latency: 12,
            mem_latency: 150,
        }
    }

    fn model(cfg: CacheConfig) -> CacheModel {
        CacheModel::new(cfg).expect("test geometry is valid")
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = model(tiny_cfg());
        assert_eq!(c.access(0), 150);
        assert_eq!(c.access(1), 4); // same line
        assert_eq!(c.access(7), 4);
        assert_eq!(c.access(8), 150); // next line
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut c = model(tiny_cfg());
        // Touch 16 lines: twice the L1 capacity, within L2.
        for line in 0..16u64 {
            c.access(line * 8);
        }
        // Re-touch: everything left L1 (capacity 8 lines) for the first
        // half; those should hit in L2 now.
        let lat = c.access(0);
        assert_eq!(lat, 12, "evicted from L1 but resident in L2");
    }

    #[test]
    fn streaming_beyond_l2_misses_to_memory() {
        let mut c = model(tiny_cfg());
        for line in 0..1000u64 {
            c.access(line * 8);
        }
        // A line far in the past is gone from both levels.
        assert_eq!(c.access(0), 150);
        let (h1, _h2, miss) = c.stats();
        assert!(miss > h1);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = model(tiny_cfg());
        // 4 sets in L1 (8 lines / 2 ways). Lines 0, 4, 8 map to set 0.
        c.access(0); // install line 0
        c.access(4 * 8); // install line 4 (set 0)
        c.access(0); // touch line 0 -> line 4 is LRU
        c.access(8 * 8); // install line 8, evicts line 4
        assert_eq!(c.access(0), 4, "hot line survived");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = model(tiny_cfg());
        c.access(0);
        c.access(0);
        c.access(0);
        let (h1, h2, m) = c.stats();
        assert_eq!((h1, h2, m), (2, 0, 1));
    }

    #[test]
    fn reset_restores_the_cold_state() {
        let mut c = model(tiny_cfg());
        for line in 0..1000u64 {
            c.access(line * 8);
        }
        c.reset();
        assert_eq!(c.stats(), (0, 0, 0), "counters cleared");
        // The exact cold-start behavior repeats: first touch misses to
        // memory, the line then hits in L1.
        assert_eq!(c.access(0), 150);
        assert_eq!(c.access(1), 4);
    }

    #[test]
    fn reset_replay_is_bit_identical_to_a_fresh_model() {
        let pattern: Vec<u64> = (0..500u64).map(|i| (i * 37) % 4096).collect();
        let mut reused = model(tiny_cfg());
        for &a in &pattern {
            reused.access(a);
        }
        reused.reset();
        let mut fresh = model(tiny_cfg());
        for &a in &pattern {
            assert_eq!(reused.access(a), fresh.access(a), "latency diverged at {a}");
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn degenerate_geometries_are_typed_errors() {
        // ways > lines: 64 words / 8-word lines = 8 lines, 16 ways.
        let too_many_ways = CacheConfig {
            l1_ways: 16,
            ..tiny_cfg()
        };
        assert!(matches!(
            CacheModel::new(too_many_ways),
            Err(SimError::BadCacheGeometry { level: "L1", .. })
        ));
        // words < line_words: a 4-word L2 with 8-word lines has no lines.
        let short_level = CacheConfig {
            l2_words: 4,
            ..tiny_cfg()
        };
        assert!(matches!(
            CacheModel::new(short_level),
            Err(SimError::BadCacheGeometry { level: "L2", .. })
        ));
        // Non-power-of-two line size.
        let odd_line = CacheConfig {
            line_words: 6,
            ..tiny_cfg()
        };
        assert!(CacheModel::new(odd_line).is_err());
        // Non-power-of-two set count: 24 lines / 2 ways = 12 sets.
        let odd_sets = CacheConfig {
            l1_words: 192,
            ..tiny_cfg()
        };
        assert!(CacheModel::new(odd_sets).is_err());
        // Zero ways.
        let no_ways = CacheConfig {
            l1_ways: 0,
            ..tiny_cfg()
        };
        assert!(CacheModel::new(no_ways).is_err());
    }

    #[test]
    fn paper_machine_geometries_validate() {
        for m in crate::machine::MachineModel::paper_machines() {
            assert!(
                CacheModel::new(m.cache).is_ok(),
                "{} has an unmodelable cache geometry",
                m.name
            );
        }
    }
}
