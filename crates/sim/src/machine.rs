//! Machine models: the three processors evaluated in the paper.
//!
//! §4.1/§4.2 of the paper fix the hardware matrix:
//!
//! | | Westmere (Xeon X5650) | Ivy Bridge (E3-1265L) | Magny-Cours (6164 HE) |
//! |---|---|---|---|
//! | fixed architectural counter | yes | yes | **no** |
//! | PEBS precise sampling | yes | yes | — (IBS instead) |
//! | PDIR precisely-distributed event | **no** | yes | no |
//! | LBR | 16 entries | 16 entries | **none** |
//!
//! The numeric latencies below are representative, not die-accurate; the
//! experiments only depend on their *relative* structure (divides are long,
//! ALU is short, misses dominate hits, AMD PMIs skid further than Intel's).

use serde::{Deserialize, Serialize};

/// CPU vendor, which selects the PMU programming model in `ct-pmu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    Intel,
    Amd,
}

/// Completion latencies (cycles) by instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latencies {
    pub alu: u32,
    pub mul: u32,
    pub div: u32,
    pub fp_add: u32,
    pub fp_mul: u32,
    pub fp_div: u32,
    pub store: u32,
    pub branch: u32,
    pub jump: u32,
    pub call: u32,
    pub ret: u32,
    pub other: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Self {
            alu: 1,
            mul: 3,
            div: 25,
            fp_add: 3,
            fp_mul: 5,
            fp_div: 30,
            store: 1,
            branch: 1,
            jump: 1,
            call: 2,
            ret: 2,
            other: 1,
        }
    }
}

/// Two-level data-cache geometry plus access latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// L1 size in 64-bit words.
    pub l1_words: usize,
    pub l1_ways: usize,
    /// L2 size in 64-bit words.
    pub l2_words: usize,
    pub l2_ways: usize,
    /// Cache line size in words.
    pub line_words: usize,
    pub l1_latency: u32,
    pub l2_latency: u32,
    pub mem_latency: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            // 32 KiB L1, 256 KiB L2, 64-byte lines.
            l1_words: 4096,
            l1_ways: 8,
            l2_words: 32768,
            l2_ways: 8,
            line_words: 8,
            l1_latency: 4,
            l2_latency: 12,
            mem_latency: 150,
        }
    }
}

impl CacheConfig {
    /// Checks that both levels describe a modelable geometry: a
    /// power-of-two line size, each level's word count a nonzero multiple
    /// of it, at least one way, no more ways than lines, and a
    /// power-of-two set count (`lines / ways`) so the cache model can
    /// mask set indices instead of dividing. Degenerate geometries used
    /// to be silently clamped (`max(1)`) into a mis-sized set array; now
    /// they are a typed [`SimError`](crate::error::SimError).
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        for (level, words, ways) in [
            ("L1", self.l1_words, self.l1_ways),
            ("L2", self.l2_words, self.l2_ways),
        ] {
            let bad = || crate::error::SimError::BadCacheGeometry {
                level,
                words,
                ways,
                line_words: self.line_words,
            };
            if self.line_words == 0 || !self.line_words.is_power_of_two() {
                return Err(bad());
            }
            if words == 0 || words % self.line_words != 0 {
                return Err(bad());
            }
            let lines = words / self.line_words;
            if ways == 0 || ways > lines || lines % ways != 0 {
                return Err(bad());
            }
            if !(lines / ways).is_power_of_two() {
                return Err(bad());
            }
        }
        Ok(())
    }
}

/// PMU capabilities of a machine, consumed by `ct-pmu` and the method
/// registry in `countertrust`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuCaps {
    /// Fixed architectural `INST_RETIRED.ANY` counter (Intel).
    pub fixed_counter: bool,
    /// PEBS precise sampling (`INST_RETIRED.ALL`, reports IP+1).
    pub pebs: bool,
    /// The Ivy Bridge `INST_RETIRED.PREC_DIST` precisely-distributed event.
    pub pdir: bool,
    /// AMD Instruction Based Sampling (tags uops, exact IP).
    pub ibs: bool,
    /// Last Branch Record depth; 0 means no LBR facility.
    pub lbr_depth: usize,
    /// AMD hardware randomization of the 4 least-significant period bits.
    pub hw_period_randomization_bits: u32,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: String,
    pub vendor: Vendor,
    /// Instructions retired per cycle when retirement is unstalled.
    pub retire_width: u32,
    /// Out-of-order execution hides completion latencies up to this many
    /// cycles; anything longer stalls retirement (producing bursts).
    pub hide_latency: u32,
    /// Cycles of retirement bubble after a mispredicted branch.
    pub mispredict_penalty: u32,
    /// Mean PMI delivery latency in cycles — the *skid* source.
    pub pmi_latency: u32,
    /// Uniform jitter added to `pmi_latency` (0..=jitter cycles).
    pub pmi_jitter: u32,
    pub latencies: Latencies,
    pub cache: CacheConfig,
    pub pmu: PmuCaps,
}

impl MachineModel {
    /// Intel Xeon X5650 — 1st-generation Core i7 ("Westmere").
    ///
    /// PEBS but no PDIR: the paper observes that the precisely-distributed
    /// accuracy boosts "are not observed on the Westmere microarchitecture,
    /// where that event is not featured".
    #[must_use]
    pub fn westmere() -> Self {
        Self {
            name: "Westmere (Xeon X5650)".into(),
            vendor: Vendor::Intel,
            retire_width: 4,
            hide_latency: 3,
            mispredict_penalty: 17,
            pmi_latency: 120,
            pmi_jitter: 40,
            latencies: Latencies::default(),
            cache: CacheConfig::default(),
            pmu: PmuCaps {
                fixed_counter: true,
                pebs: true,
                pdir: false,
                ibs: false,
                lbr_depth: 16,
                hw_period_randomization_bits: 0,
            },
        }
    }

    /// Intel Xeon E3-1265L — 3rd-generation Core ("Ivy Bridge").
    ///
    /// Adds the `INST_RETIRED.PREC_DIST` (PDIR) precisely-distributed event
    /// on top of Westmere's PEBS+LBR feature set.
    #[must_use]
    pub fn ivy_bridge() -> Self {
        Self {
            name: "Ivy Bridge (Xeon E3-1265L)".into(),
            vendor: Vendor::Intel,
            retire_width: 4,
            hide_latency: 3,
            mispredict_penalty: 14,
            pmi_latency: 100,
            pmi_jitter: 30,
            latencies: Latencies {
                div: 22,
                fp_div: 24,
                ..Latencies::default()
            },
            cache: CacheConfig::default(),
            pmu: PmuCaps {
                fixed_counter: true,
                pebs: true,
                pdir: true,
                ibs: false,
                lbr_depth: 16,
                hw_period_randomization_bits: 0,
            },
        }
    }

    /// AMD Opteron 6164 HE ("Magny-Cours").
    ///
    /// No fixed counter, no LBR; IBS is the precise mechanism and samples
    /// *uops* rather than instructions. The PMI path skids further than on
    /// the Intel parts, matching the paper's "AMD systems are consistently
    /// burdened with high error rates".
    #[must_use]
    pub fn magny_cours() -> Self {
        Self {
            name: "Magny-Cours (Opteron 6164 HE)".into(),
            vendor: Vendor::Amd,
            retire_width: 3,
            hide_latency: 3,
            mispredict_penalty: 20,
            pmi_latency: 200,
            pmi_jitter: 80,
            latencies: Latencies {
                div: 40,
                fp_div: 33,
                ..Latencies::default()
            },
            cache: CacheConfig {
                l1_words: 8192, // 64 KiB L1
                l2_words: 65536,
                mem_latency: 180,
                ..CacheConfig::default()
            },
            pmu: PmuCaps {
                fixed_counter: false,
                pebs: false,
                pdir: false,
                ibs: true,
                lbr_depth: 0,
                hw_period_randomization_bits: 4,
            },
        }
    }

    /// The paper's full machine matrix, in presentation order.
    #[must_use]
    pub fn paper_machines() -> Vec<Self> {
        vec![Self::magny_cours(), Self::westmere(), Self::ivy_bridge()]
    }

    /// The Intel subset of the matrix (Westmere, Ivy Bridge) — every
    /// method family of the taxonomy resolves on both, which makes this
    /// the natural catalog for tenants that must never see
    /// `method unavailable` holes (the AMD part has no LBR/fix).
    #[must_use]
    pub fn intel_machines() -> Vec<Self> {
        vec![Self::westmere(), Self::ivy_bridge()]
    }

    /// Completion latency for an instruction class, excluding memory (loads
    /// consult the cache model instead).
    #[must_use]
    pub fn class_latency(&self, class: ct_isa::InsnClass) -> u32 {
        use ct_isa::InsnClass::*;
        let l = &self.latencies;
        match class {
            Alu => l.alu,
            Mul => l.mul,
            Div => l.div,
            FpAdd => l.fp_add,
            FpMul => l.fp_mul,
            FpDiv => l.fp_div,
            Load => self.cache.l1_latency, // overridden by the cache model
            Store => l.store,
            Jump => l.jump,
            Branch => l.branch,
            Call => l.call,
            Ret => l.ret,
            Other => l.other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_capabilities() {
        let wsm = MachineModel::westmere();
        let ivb = MachineModel::ivy_bridge();
        let amd = MachineModel::magny_cours();

        assert!(wsm.pmu.pebs && !wsm.pmu.pdir && wsm.pmu.lbr_depth == 16);
        assert!(ivb.pmu.pebs && ivb.pmu.pdir && ivb.pmu.lbr_depth == 16);
        assert!(!amd.pmu.pebs && !amd.pmu.pdir && amd.pmu.ibs);
        assert_eq!(amd.pmu.lbr_depth, 0);
        assert!(!amd.pmu.fixed_counter);
        assert_eq!(amd.pmu.hw_period_randomization_bits, 4);
    }

    #[test]
    fn intel_machines_are_the_lbr_capable_subset_of_the_matrix() {
        let intel = MachineModel::intel_machines();
        let paper: Vec<String> = MachineModel::paper_machines()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(intel.len(), 2);
        for m in &intel {
            assert!(paper.contains(&m.name), "{} not in the paper matrix", m.name);
            assert!(m.pmu.lbr_depth > 0, "{} must support LBR", m.name);
        }
    }

    #[test]
    fn amd_skids_further_than_intel() {
        assert!(MachineModel::magny_cours().pmi_latency > MachineModel::ivy_bridge().pmi_latency);
    }

    #[test]
    fn div_is_long_latency_everywhere() {
        for m in MachineModel::paper_machines() {
            assert!(m.class_latency(ct_isa::InsnClass::Div) > 4 * m.hide_latency);
        }
    }
}
