//! `ct-sim` — the CPU substrate: functional execution with cycle accounting.
//!
//! The paper measures sampling-accuracy artifacts that are *timing*
//! phenomena of the retirement stream of an out-of-order x86 core:
//!
//! * **skid** — the address reported by a sample trails the instruction
//!   that overflowed the counter by the PMI delivery latency;
//! * **shadow** — instructions retiring in the shadow of a long-latency
//!   instruction receive few samples, while the long-latency instruction
//!   soaks them up;
//! * **burst ("clustered") retirement** — an out-of-order core retires
//!   several uops per cycle, so event positions inside a retirement cycle
//!   are not observable to imprecise mechanisms.
//!
//! This crate reproduces those phenomena mechanistically without a full
//! out-of-order model: instructions execute functionally in program order
//! while a retirement clock advances using per-class latencies, a two-level
//! cache model for loads, a branch predictor for control flow, and a
//! `retire_width`-wide retirement stage that drains bursts after stalls.
//! Every retired instruction is published to [`event::RetireObserver`]s —
//! the PMU model (`ct-pmu`), the reference instrumentation
//! (`ct-instrument`) and the profiling session (`countertrust`) all observe
//! this one stream, exactly as PMU, Pin and perf all observe one execution
//! on real hardware.
//!
//! # Examples
//!
//! Run a small loop on a paper machine and observe its retirement
//! stream — every retired instruction reaches every observer, once, in
//! program order:
//!
//! ```
//! use ct_isa::asm::assemble;
//! use ct_sim::{Cpu, MachineModel, RetireEvent, RetireObserver, RunConfig, StopReason};
//!
//! struct Count(u64);
//! impl RetireObserver for Count {
//!     fn on_retire(&mut self, _ev: &RetireEvent) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 10\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let mut count = Count(0);
//! let summary = Cpu::new(&MachineModel::ivy_bridge())
//!     .run(&program, &RunConfig::default(), &mut [&mut count])
//!     .unwrap();
//! assert_eq!(summary.stop, StopReason::Halted);
//! assert_eq!(count.0, summary.instructions);
//! assert!(summary.cycles > 0 && summary.ipc() > 0.0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

#[cfg(feature = "alloc_audit")]
pub mod alloc_audit;
pub mod bpred;
pub mod cache;
pub mod error;
pub mod event;
pub mod exec;
pub mod machine;

pub use error::SimError;
pub use event::{RetireEvent, RetireObserver};
pub use exec::{Cpu, RunConfig, RunSummary, StopReason};
pub use machine::{CacheConfig, Latencies, MachineModel, PmuCaps, Vendor};
