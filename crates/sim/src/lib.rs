//! `ct-sim` — the CPU substrate: functional execution with cycle accounting.
//!
//! The paper measures sampling-accuracy artifacts that are *timing*
//! phenomena of the retirement stream of an out-of-order x86 core:
//!
//! * **skid** — the address reported by a sample trails the instruction
//!   that overflowed the counter by the PMI delivery latency;
//! * **shadow** — instructions retiring in the shadow of a long-latency
//!   instruction receive few samples, while the long-latency instruction
//!   soaks them up;
//! * **burst ("clustered") retirement** — an out-of-order core retires
//!   several uops per cycle, so event positions inside a retirement cycle
//!   are not observable to imprecise mechanisms.
//!
//! This crate reproduces those phenomena mechanistically without a full
//! out-of-order model: instructions execute functionally in program order
//! while a retirement clock advances using per-class latencies, a two-level
//! cache model for loads, a branch predictor for control flow, and a
//! `retire_width`-wide retirement stage that drains bursts after stalls.
//! Every retired instruction is published to [`event::RetireObserver`]s —
//! the PMU model (`ct-pmu`), the reference instrumentation
//! (`ct-instrument`) and the profiling session (`countertrust`) all observe
//! this one stream, exactly as PMU, Pin and perf all observe one execution
//! on real hardware.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod bpred;
pub mod cache;
pub mod error;
pub mod event;
pub mod exec;
pub mod machine;

pub use error::SimError;
pub use event::{RetireEvent, RetireObserver};
pub use exec::{Cpu, RunConfig, RunSummary, StopReason};
pub use machine::{CacheConfig, Latencies, MachineModel, PmuCaps, Vendor};
