//! Branch prediction: a bimodal direction predictor plus a last-target
//! table for indirect transfers.
//!
//! Mispredictions insert retirement bubbles, which matters to the sampling
//! experiments in two ways: branch-heavy code develops "burst heads" after
//! each bubble (attracting imprecise samples), and the fragmented
//! enterprise proxies with indirect calls (omnetpp, FullCMS) are penalized
//! more than straight-line kernels.

use ct_isa::Addr;

const TABLE_BITS: usize = 12;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// Direction predictor (2-bit saturating counters) + indirect-target table.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit counters: 0,1 predict not-taken; 2,3 predict taken.
    counters: Vec<u8>,
    /// Last-seen target per indirect branch slot.
    targets: Vec<Addr>,
    lookups: u64,
    mispredicts: u64,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: vec![1u8; TABLE_SIZE],
            targets: vec![0; TABLE_SIZE],
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Restores the initial state (weakly-not-taken counters, cleared
    /// targets, zero counters) without reallocating the tables — the
    /// replay loop's per-run reset.
    pub fn reset(&mut self) {
        self.counters.fill(1);
        self.targets.fill(0);
        self.lookups = 0;
        self.mispredicts = 0;
    }

    fn slot(addr: Addr) -> usize {
        // Multiplicative hash spreads loop bodies across the table.
        ((addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - TABLE_BITS as u32)) as usize
    }

    /// Records a conditional-branch outcome; returns `true` when the
    /// prediction was wrong.
    #[inline]
    pub fn predict_conditional(&mut self, addr: Addr, taken: bool) -> bool {
        self.lookups += 1;
        let c = &mut self.counters[Self::slot(addr)];
        let predicted_taken = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let miss = predicted_taken != taken;
        self.mispredicts += u64::from(miss);
        miss
    }

    /// Records an indirect jump/call resolution; returns `true` on target
    /// mispredict.
    #[inline]
    pub fn predict_indirect(&mut self, addr: Addr, target: Addr) -> bool {
        self.lookups += 1;
        let t = &mut self.targets[Self::slot(addr)];
        let miss = *t != target;
        *t = target;
        self.mispredicts += u64::from(miss);
        miss
    }

    /// `(lookups, mispredicts)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::new();
        // First taken outcome mispredicts (weakly not-taken start)...
        assert!(p.predict_conditional(100, true));
        // ...then the counter trains up (the second outcome may or may not
        // still mispredict) and saturates into correct predictions.
        p.predict_conditional(100, true);
        p.predict_conditional(100, true);
        assert!(!p.predict_conditional(100, true));
        assert!(!p.predict_conditional(100, true));
    }

    #[test]
    fn alternating_branch_mispredicts_often() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for i in 0..100 {
            if p.predict_conditional(5, i % 2 == 0) {
                misses += 1;
            }
        }
        assert!(
            misses >= 45,
            "alternation defeats a bimodal predictor: {misses}"
        );
    }

    #[test]
    fn indirect_learns_monomorphic_target() {
        let mut p = BranchPredictor::new();
        assert!(p.predict_indirect(7, 1000));
        assert!(!p.predict_indirect(7, 1000));
        assert!(p.predict_indirect(7, 2000), "target change mispredicts");
        assert!(!p.predict_indirect(7, 2000));
    }

    #[test]
    fn reset_matches_a_fresh_predictor() {
        let mut reused = BranchPredictor::new();
        for i in 0..200 {
            reused.predict_conditional(i * 3, i % 3 == 0);
            reused.predict_indirect(i * 7, i);
        }
        reused.reset();
        let mut fresh = BranchPredictor::new();
        for i in 0..100 {
            assert_eq!(
                reused.predict_conditional(i * 5, i % 2 == 0),
                fresh.predict_conditional(i * 5, i % 2 == 0)
            );
            assert_eq!(
                reused.predict_indirect(i * 11, i * 2),
                fresh.predict_indirect(i * 11, i * 2)
            );
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn stats_count() {
        let mut p = BranchPredictor::new();
        p.predict_conditional(1, true);
        p.predict_indirect(2, 3);
        let (lookups, _) = p.stats();
        assert_eq!(lookups, 2);
    }
}
