//! The retirement-event stream: what every measurement tool observes.

use ct_isa::{Addr, InsnClass};

/// One retired instruction, as visible to the PMU and to instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Address of the retired instruction.
    pub addr: Addr,
    /// Retirement sequence number (0-based instruction count).
    pub seq: u64,
    /// Cycle at which the instruction retired. Multiple instructions may
    /// share a cycle — that is the retirement *burst* the paper's Callchain
    /// analysis blames ("out-of-order clustering of uops ... retired in
    /// bursts").
    pub cycle: u64,
    /// Number of uops the instruction decodes into (IBS samples these).
    pub uops: u32,
    /// Instruction class.
    pub class: InsnClass,
    /// `Some(target)` when the instruction was a *taken* control transfer
    /// (taken conditional branch, jump, call or return) — exactly the
    /// transfers an LBR records.
    pub taken_target: Option<Addr>,
    /// True when this instruction was a mispredicted branch (adds a
    /// retirement bubble after it).
    pub mispredicted: bool,
}

impl RetireEvent {
    /// True when the event is a taken control transfer (LBR-visible).
    #[must_use]
    pub fn is_taken_branch(&self) -> bool {
        self.taken_target.is_some()
    }
}

/// Observer of the retirement stream.
///
/// Implementations must be cheap: they run once per retired instruction.
pub trait RetireObserver {
    /// Called for every retired instruction in program order.
    fn on_retire(&mut self, ev: &RetireEvent);

    /// Called once when execution finishes, with the final cycle count.
    /// Deferred work (e.g. a PMI still in flight) can be resolved here.
    fn on_finish(&mut self, _final_cycle: u64) {}
}

/// A no-op observer, useful as a placeholder in generic code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RetireObserver for NullObserver {
    fn on_retire(&mut self, _ev: &RetireEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taken_branch_flag() {
        let mut ev = RetireEvent {
            addr: 0,
            seq: 0,
            cycle: 0,
            uops: 1,
            class: InsnClass::Branch,
            taken_target: None,
            mispredicted: false,
        };
        assert!(!ev.is_taken_branch());
        ev.taken_target = Some(5);
        assert!(ev.is_taken_branch());
    }
}
