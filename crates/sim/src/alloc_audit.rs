//! Test-only counting global allocator (feature `alloc_audit`).
//!
//! Enabling the feature installs a [`GlobalAlloc`] that forwards to the
//! system allocator while counting every allocation event, so a test
//! can prove a hot path allocation-free: snapshot the counters, run the
//! steady state, and assert the delta. The counters are process-global
//! and monotonic — audits of concurrent code should measure the whole
//! process and reason in per-unit-of-work bounds.
//!
//! Never enable this feature in a benchmarking or production build: the
//! two atomic increments per allocation are cheap but not free, and the
//! point of the audited hot paths is that they do not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`], counting allocation events (`alloc` and
/// growth-side `realloc`) and bytes requested.
pub struct CountingAllocator;

// SAFETY: defers entirely to the system allocator; the counters are
// plain relaxed atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

/// A point-in-time reading of the process-global allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (calls to `alloc` plus reallocations) so far.
    pub allocations: u64,
    /// Total bytes requested by those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Reads the current counters.
    #[must_use]
    pub fn now() -> Self {
        Self {
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Allocation events since `earlier`.
    #[must_use]
    pub fn allocations_since(&self, earlier: &Self) -> u64 {
        self.allocations - earlier.allocations
    }
}
