//! The executor: functional semantics plus retirement-timing accounting.
//!
//! Instructions execute in program order. A retirement clock advances
//! according to the machine model:
//!
//! * up to `retire_width` instructions retire per cycle (bursts);
//! * completion latencies up to `hide_latency` are hidden by the
//!   out-of-order engine; anything longer stalls retirement for
//!   `latency - hide_latency` cycles, after which a burst drains;
//! * a mispredicted branch inserts a `mispredict_penalty` bubble after it
//!   retires;
//! * load latency comes from the two-level cache model.
//!
//! The stream of [`RetireEvent`]s, with their cycle stamps, is the single
//! source of truth consumed by the PMU model and the instrumentation
//! reference.

use crate::bpred::BranchPredictor;
use crate::cache::CacheModel;
use crate::error::SimError;
use crate::event::{RetireEvent, RetireObserver};
use crate::machine::MachineModel;
use ct_isa::{Addr, InsnClass, Opcode, Program};

/// Run parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Stop after this many retired instructions (safety fuel).
    pub max_insns: u64,
    /// Initial values for `r1..` (workload inputs).
    pub args: Vec<i64>,
    /// Maximum call-stack depth.
    pub call_stack_limit: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            max_insns: 2_000_000_000,
            args: Vec::new(),
            call_stack_limit: 4096,
        }
    }
}

impl RunConfig {
    /// Convenience constructor setting only the fuel limit.
    #[must_use]
    pub fn with_fuel(max_insns: u64) -> Self {
        Self {
            max_insns,
            ..Self::default()
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halted,
    /// The instruction budget ran out.
    FuelExhausted,
}

/// Aggregate statistics for a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    pub instructions: u64,
    pub uops: u64,
    pub cycles: u64,
    pub taken_branches: u64,
    pub mispredicts: u64,
    /// Branch-predictor lookups (conditional + indirect resolutions) —
    /// the denominator for `mispredicts`.
    pub bp_lookups: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub mem_accesses: u64,
    pub stop: StopReason,
    /// Final value of `r0` (workload result, prevents dead-code illusions).
    pub result: i64,
}

impl RunSummary {
    /// Instructions per cycle over the whole run.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The simulated CPU for one machine model.
///
/// A `Cpu` owns reusable run state (`SimScratch`): the decoded
/// instruction table, the flat data memory, the call stack, the branch
/// predictor tables and the cache tag/stamp arrays are allocated once and
/// *reset* at the start of every [`Cpu::run`]. Replaying `runs ×
/// workloads` on a retained `Cpu` therefore performs zero steady-state
/// heap allocations (pinned by the `alloc_audit` test tier); one-shot
/// `Cpu::new(&m).run(..)` callers pay exactly the old per-run cost.
pub struct Cpu<'m> {
    machine: &'m MachineModel,
    scratch: SimScratch,
}

/// Run-to-run reusable interpreter state. Every container is cleared or
/// refilled — never re-`vec!`'d — between runs; capacities ratchet up to
/// the largest program replayed and stay there.
struct SimScratch {
    /// Flat data memory, resized (within retained capacity) to the
    /// program's data segment each run.
    mem: Vec<i64>,
    call_stack: Vec<Addr>,
    /// Predecoded instruction table, rebuilt in place each run.
    decoded: Vec<Decoded>,
    /// Built lazily on first run (construction validates the machine's
    /// cache geometry, which can fail); reset on every later run.
    cache: Option<CacheModel>,
    bpred: BranchPredictor,
}

/// One statically-decoded instruction: opcode plus every per-step
/// attribute the dispatch loop would otherwise recompute.
///
/// `Insn::class()`, `Insn::uops()` and `MachineModel::class_latency()`
/// are all matches over the opcode/class enums; executed once per
/// *dynamic* instruction they dominate the interpreter's per-step
/// overhead. Decoding once per *static* instruction at run start turns
/// each step into a single sequential table read — integer fields on one
/// cache line, no allocation, no rematching — and the branch predictor
/// keeps the one remaining dispatch match.
#[derive(Clone, Copy)]
struct Decoded {
    op: Opcode,
    class: InsnClass,
    uops: u32,
    /// `class_latency(class)` for this machine; loads still override it
    /// with the cache model's access latency.
    latency: u32,
}

/// Internal observer-set abstraction for the dispatch loop.
///
/// [`Cpu::run`] takes `&mut [&mut dyn RetireObserver]`, which forces a
/// virtual call per *retired instruction* — the sampler's whole
/// per-event path (pending-capture resolution, LBR shift, period
/// countdown) hides behind it and can never inline. Monomorphizing the
/// loop over this sink instead lets the single-observer entry points
/// ([`Cpu::run_observed`], [`Cpu::run_silent`]) compile the observer
/// body straight into the interpreter. Semantics are identical across
/// all sinks: same events, same order, same `on_finish` timing.
trait RetireSink {
    fn retire(&mut self, ev: &RetireEvent);
    fn finish(&mut self, final_cycle: u64);
}

/// No observers: the sink compiles away entirely (pure replay).
struct NoSink;

impl RetireSink for NoSink {
    #[inline(always)]
    fn retire(&mut self, _ev: &RetireEvent) {}
    #[inline(always)]
    fn finish(&mut self, _final_cycle: u64) {}
}

/// Exactly one observer, statically typed — the hot-path sink.
struct OneSink<'a, O: RetireObserver + ?Sized>(&'a mut O);

impl<O: RetireObserver + ?Sized> RetireSink for OneSink<'_, O> {
    #[inline(always)]
    fn retire(&mut self, ev: &RetireEvent) {
        self.0.on_retire(ev);
    }
    #[inline(always)]
    fn finish(&mut self, final_cycle: u64) {
        self.0.on_finish(final_cycle);
    }
}

/// Arbitrary observer set behind dyn dispatch (the [`Cpu::run`] API).
struct SliceSink<'a, 'b>(&'a mut [&'b mut dyn RetireObserver]);

impl RetireSink for SliceSink<'_, '_> {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        for obs in self.0.iter_mut() {
            obs.on_retire(ev);
        }
    }
    #[inline]
    fn finish(&mut self, final_cycle: u64) {
        for obs in self.0.iter_mut() {
            obs.on_finish(final_cycle);
        }
    }
}

impl<'m> Cpu<'m> {
    /// Creates a CPU implementing `machine`.
    #[must_use]
    pub fn new(machine: &'m MachineModel) -> Self {
        Self {
            machine,
            scratch: SimScratch {
                mem: Vec::new(),
                call_stack: Vec::with_capacity(64),
                decoded: Vec::new(),
                cache: None,
                bpred: BranchPredictor::new(),
            },
        }
    }

    /// The machine model this CPU implements.
    #[must_use]
    pub fn machine(&self) -> &MachineModel {
        self.machine
    }

    /// Runs `program` to completion, publishing every retired instruction
    /// to `observers` in order.
    ///
    /// Every run starts from the identical architectural cold state
    /// (cleared memory, empty call stack, invalid cache ways,
    /// weakly-not-taken predictor), so results do not depend on what the
    /// retained scratch ran before — a reused `Cpu` is bit-identical to a
    /// fresh one.
    pub fn run(
        &mut self,
        program: &Program,
        config: &RunConfig,
        observers: &mut [&mut dyn RetireObserver],
    ) -> Result<RunSummary, SimError> {
        self.run_sink(program, config, &mut SliceSink(observers))
    }

    /// Like [`Cpu::run`] with exactly one observer, monomorphized over
    /// its concrete type: the observer's `on_retire` inlines into the
    /// dispatch loop instead of paying a virtual call per retired
    /// instruction. The serving layer runs its PMU sampler through
    /// this entry point.
    pub fn run_observed<O: RetireObserver + ?Sized>(
        &mut self,
        program: &Program,
        config: &RunConfig,
        observer: &mut O,
    ) -> Result<RunSummary, SimError> {
        self.run_sink(program, config, &mut OneSink(observer))
    }

    /// Like [`Cpu::run`] with no observers at all: the event stream is
    /// not materialized for anyone, leaving the pure interpreter +
    /// timing model (the `sim_replay` bench scenario measures this).
    pub fn run_silent(
        &mut self,
        program: &Program,
        config: &RunConfig,
    ) -> Result<RunSummary, SimError> {
        self.run_sink(program, config, &mut NoSink)
    }

    fn run_sink<S: RetireSink>(
        &mut self,
        program: &Program,
        config: &RunConfig,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        let m = self.machine;
        let SimScratch {
            mem,
            call_stack,
            decoded,
            cache: cache_slot,
            bpred,
        } = &mut self.scratch;
        let mut regs = [0i64; ct_isa::reg::NUM_REGS];
        let mut fregs = [0f64; ct_isa::reg::NUM_FREGS];
        for (i, &a) in config.args.iter().enumerate().take(5) {
            regs[i + 1] = a;
        }
        mem.clear();
        mem.resize(program.data_words, 0);
        for &(idx, v) in &program.init_data {
            if idx < mem.len() {
                mem[idx] = v;
            }
        }
        call_stack.clear();
        let cache = match cache_slot {
            Some(c) => {
                c.reset();
                c
            }
            None => cache_slot.insert(CacheModel::new(m.cache)?),
        };
        bpred.reset();

        // Predecode: amortize the per-step class/uops/latency matches over
        // the whole run (see [`Decoded`]). Indexing parallels the program,
        // so `decoded[pc]` is exactly `fetch(pc)` plus its attributes.
        decoded.clear();
        decoded.extend(program.insns.iter().map(|insn| {
            let class = insn.class();
            Decoded {
                op: insn.op,
                class,
                uops: insn.uops(),
                latency: m.class_latency(class),
            }
        }));

        let mut pc: Addr = program.entry;
        let mut cycle: u64 = 0;
        let mut slot: u32 = 0;
        let mut pending_bubble: u64 = 0;
        let mut instructions: u64 = 0;
        let mut uops: u64 = 0;
        let mut taken_branches: u64 = 0;
        let mut mispredicts: u64 = 0;
        let hide = m.hide_latency;

        let stop = loop {
            if instructions >= config.max_insns {
                break StopReason::FuelExhausted;
            }
            let insn = decoded[pc as usize];
            let class = insn.class;
            let mut next_pc = pc + 1;
            let mut taken_target: Option<Addr> = None;
            let mut mispredicted = false;
            let mut latency = insn.latency;

            match insn.op {
                Opcode::Add(d, a, b) => {
                    regs[d.index()] = regs[a.index()].wrapping_add(regs[b.index()]);
                }
                Opcode::Sub(d, a, b) => {
                    regs[d.index()] = regs[a.index()].wrapping_sub(regs[b.index()]);
                }
                Opcode::Mul(d, a, b) => {
                    regs[d.index()] = regs[a.index()].wrapping_mul(regs[b.index()]);
                }
                Opcode::Div(d, a, b) => {
                    let den = regs[b.index()];
                    regs[d.index()] = if den == 0 {
                        0
                    } else {
                        regs[a.index()].wrapping_div(den)
                    };
                }
                Opcode::Rem(d, a, b) => {
                    let den = regs[b.index()];
                    regs[d.index()] = if den == 0 {
                        0
                    } else {
                        regs[a.index()].wrapping_rem(den)
                    };
                }
                Opcode::And(d, a, b) => regs[d.index()] = regs[a.index()] & regs[b.index()],
                Opcode::Or(d, a, b) => regs[d.index()] = regs[a.index()] | regs[b.index()],
                Opcode::Xor(d, a, b) => regs[d.index()] = regs[a.index()] ^ regs[b.index()],
                Opcode::Shl(d, a, b) => {
                    regs[d.index()] = regs[a.index()].wrapping_shl(regs[b.index()] as u32 & 63);
                }
                Opcode::Shr(d, a, b) => {
                    regs[d.index()] = regs[a.index()].wrapping_shr(regs[b.index()] as u32 & 63);
                }
                Opcode::AddI(d, a, i) => regs[d.index()] = regs[a.index()].wrapping_add(i),
                Opcode::SubI(d, a, i) => regs[d.index()] = regs[a.index()].wrapping_sub(i),
                Opcode::MulI(d, a, i) => regs[d.index()] = regs[a.index()].wrapping_mul(i),
                Opcode::AndI(d, a, i) => regs[d.index()] = regs[a.index()] & i,
                Opcode::XorI(d, a, i) => regs[d.index()] = regs[a.index()] ^ i,
                Opcode::Mov(d, s) => regs[d.index()] = regs[s.index()],
                Opcode::MovI(d, i) => regs[d.index()] = i,

                Opcode::FAdd(d, a, b) => fregs[d.index()] = fregs[a.index()] + fregs[b.index()],
                Opcode::FSub(d, a, b) => fregs[d.index()] = fregs[a.index()] - fregs[b.index()],
                Opcode::FMul(d, a, b) => fregs[d.index()] = fregs[a.index()] * fregs[b.index()],
                Opcode::FDiv(d, a, b) => fregs[d.index()] = fregs[a.index()] / fregs[b.index()],
                Opcode::FSqrt(d, a) => fregs[d.index()] = fregs[a.index()].abs().sqrt(),
                Opcode::FMov(d, a) => fregs[d.index()] = fregs[a.index()],
                Opcode::FMovI(d, v) => fregs[d.index()] = v,
                Opcode::CvtIF(d, s) => fregs[d.index()] = regs[s.index()] as f64,
                Opcode::CvtFI(d, s) => {
                    let v = fregs[s.index()];
                    regs[d.index()] = if v.is_nan() { 0 } else { v as i64 };
                }

                Opcode::Load(d, b, off) => {
                    let idx = regs[b.index()].wrapping_add(off);
                    let v = *mem
                        .get(
                            usize::try_from(idx)
                                .ok()
                                .filter(|&i| i < mem.len())
                                .ok_or(SimError::MemOutOfBounds { pc, word_addr: idx })?,
                        )
                        .expect("index checked above");
                    regs[d.index()] = v;
                    latency = cache.access(idx as u64);
                }
                Opcode::Store(v, b, off) => {
                    let idx = regs[b.index()].wrapping_add(off);
                    let slot_ref = usize::try_from(idx)
                        .ok()
                        .filter(|&i| i < mem.len())
                        .ok_or(SimError::MemOutOfBounds { pc, word_addr: idx })?;
                    mem[slot_ref] = regs[v.index()];
                    cache.access(idx as u64); // write-allocate; latency hidden by the store buffer
                }
                Opcode::FLoad(d, b, off) => {
                    let idx = regs[b.index()].wrapping_add(off);
                    let raw = *mem
                        .get(
                            usize::try_from(idx)
                                .ok()
                                .filter(|&i| i < mem.len())
                                .ok_or(SimError::MemOutOfBounds { pc, word_addr: idx })?,
                        )
                        .expect("index checked above");
                    fregs[d.index()] = f64::from_bits(raw as u64);
                    latency = cache.access(idx as u64);
                }
                Opcode::FStore(v, b, off) => {
                    let idx = regs[b.index()].wrapping_add(off);
                    let slot_ref = usize::try_from(idx)
                        .ok()
                        .filter(|&i| i < mem.len())
                        .ok_or(SimError::MemOutOfBounds { pc, word_addr: idx })?;
                    mem[slot_ref] = fregs[v.index()].to_bits() as i64;
                    cache.access(idx as u64);
                }

                Opcode::Jmp(t) => {
                    next_pc = t;
                    taken_target = Some(t);
                }
                Opcode::JmpInd(r) => {
                    let t = regs[r.index()];
                    let t_addr = u32::try_from(t)
                        .ok()
                        .filter(|&a| (a as usize) < program.len())
                        .ok_or(SimError::BadIndirectTarget { pc, target: t })?;
                    mispredicted = bpred.predict_indirect(pc, t_addr);
                    next_pc = t_addr;
                    taken_target = Some(t_addr);
                }
                Opcode::Br(c, a, b, t) => {
                    let taken = c.eval(regs[a.index()], regs[b.index()]);
                    mispredicted = bpred.predict_conditional(pc, taken);
                    if taken {
                        next_pc = t;
                        taken_target = Some(t);
                    }
                }
                Opcode::Brz(r, t) => {
                    let taken = regs[r.index()] == 0;
                    mispredicted = bpred.predict_conditional(pc, taken);
                    if taken {
                        next_pc = t;
                        taken_target = Some(t);
                    }
                }
                Opcode::Brnz(r, t) => {
                    let taken = regs[r.index()] != 0;
                    mispredicted = bpred.predict_conditional(pc, taken);
                    if taken {
                        next_pc = t;
                        taken_target = Some(t);
                    }
                }
                Opcode::Call(t) => {
                    if call_stack.len() >= config.call_stack_limit {
                        return Err(SimError::CallStackOverflow {
                            pc,
                            depth: config.call_stack_limit,
                        });
                    }
                    call_stack.push(pc + 1);
                    next_pc = t;
                    taken_target = Some(t);
                }
                Opcode::CallInd(r) => {
                    let t = regs[r.index()];
                    let t_addr = u32::try_from(t)
                        .ok()
                        .filter(|&a| (a as usize) < program.len())
                        .ok_or(SimError::BadIndirectTarget { pc, target: t })?;
                    if !program.symbols.is_entry(t_addr) {
                        return Err(SimError::IndirectCallNotFunction { pc, target: t_addr });
                    }
                    if call_stack.len() >= config.call_stack_limit {
                        return Err(SimError::CallStackOverflow {
                            pc,
                            depth: config.call_stack_limit,
                        });
                    }
                    mispredicted = bpred.predict_indirect(pc, t_addr);
                    call_stack.push(pc + 1);
                    next_pc = t_addr;
                    taken_target = Some(t_addr);
                }
                Opcode::Ret => {
                    // Return-address-stack prediction: always correct.
                    let t = call_stack
                        .pop()
                        .ok_or(SimError::CallStackUnderflow { pc })?;
                    next_pc = t;
                    taken_target = Some(t);
                }
                Opcode::Nop => {}
                Opcode::Halt => {
                    // Retire the halt itself, then stop.
                    let ev = Self::advance_clock(
                        m,
                        &mut cycle,
                        &mut slot,
                        &mut pending_bubble,
                        latency,
                        hide,
                        pc,
                        instructions,
                        insn.uops,
                        class,
                        None,
                        false,
                    );
                    instructions += 1;
                    uops += u64::from(insn.uops);
                    sink.retire(&ev);
                    break StopReason::Halted;
                }
            }

            let ev = Self::advance_clock(
                m,
                &mut cycle,
                &mut slot,
                &mut pending_bubble,
                latency,
                hide,
                pc,
                instructions,
                insn.uops,
                class,
                taken_target,
                mispredicted,
            );
            instructions += 1;
            uops += u64::from(insn.uops);
            taken_branches += u64::from(taken_target.is_some());
            mispredicts += u64::from(mispredicted);
            sink.retire(&ev);
            if mispredicted {
                pending_bubble = u64::from(m.mispredict_penalty);
            }
            pc = next_pc;
        };

        sink.finish(cycle);
        let (l1_hits, l2_hits, mem_accesses) = cache.stats();
        let (bp_lookups, bp_miss) = bpred.stats();
        debug_assert_eq!(bp_miss, mispredicts);
        Ok(RunSummary {
            instructions,
            uops,
            cycles: cycle + 1,
            taken_branches,
            mispredicts,
            bp_lookups,
            l1_hits,
            l2_hits,
            mem_accesses,
            stop,
            result: regs[0],
        })
    }

    /// Advances the retirement clock for one instruction and builds its
    /// retire event.
    #[expect(clippy::too_many_arguments)]
    fn advance_clock(
        m: &MachineModel,
        cycle: &mut u64,
        slot: &mut u32,
        pending_bubble: &mut u64,
        latency: u32,
        hide: u32,
        pc: Addr,
        seq: u64,
        uops: u32,
        class: InsnClass,
        taken_target: Option<Addr>,
        mispredicted: bool,
    ) -> RetireEvent {
        if *pending_bubble > 0 {
            *cycle += *pending_bubble;
            *slot = 0;
            *pending_bubble = 0;
        }
        let stall = u64::from(latency.saturating_sub(hide));
        if stall > 0 {
            // Long-latency completion: retirement drains, the instruction
            // retires alone at the head of a fresh cycle and a burst forms
            // behind it.
            *cycle += stall;
            *slot = 0;
        }
        if *slot >= m.retire_width {
            *cycle += 1;
            *slot = 0;
        }
        let ev = RetireEvent {
            addr: pc,
            seq,
            cycle: *cycle,
            uops,
            class,
            taken_target,
            mispredicted,
        };
        *slot += 1;
        ev
    }
}

/// Runs with a single observer (convenience wrapper over
/// [`Cpu::run_observed`] — statically typed observers inline into the
/// dispatch loop; `&mut dyn RetireObserver` still works).
pub fn run_with<O: RetireObserver + ?Sized>(
    machine: &MachineModel,
    program: &Program,
    config: &RunConfig,
    observer: &mut O,
) -> Result<RunSummary, SimError> {
    Cpu::new(machine).run_observed(program, config, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NullObserver;
    use ct_isa::asm::assemble;

    fn run(src: &str) -> RunSummary {
        run_args(src, &[])
    }

    fn run_args(src: &str, args: &[i64]) -> RunSummary {
        let p = assemble("t", src).unwrap();
        let m = MachineModel::ivy_bridge();
        let cfg = RunConfig {
            args: args.to_vec(),
            ..RunConfig::default()
        };
        run_with(&m, &p, &cfg, &mut NullObserver).unwrap()
    }

    #[test]
    fn arithmetic_result() {
        let s = run(r#"
            .func main
                movi r1, 21
                movi r2, 2
                mul r0, r1, r2
                halt
            .endfunc
        "#);
        assert_eq!(s.result, 42);
        assert_eq!(s.instructions, 4);
        assert_eq!(s.stop, StopReason::Halted);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let s = run(r#"
            .func main
                movi r1, 7
                movi r2, 0
                div r0, r1, r2
                halt
            .endfunc
        "#);
        assert_eq!(s.result, 0);
    }

    #[test]
    fn loop_counts_instructions() {
        // movi + 10 * (subi + brnz) + halt = 22 instructions.
        let s = run(r#"
            .func main
                movi r1, 10
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#);
        assert_eq!(s.instructions, 22);
        assert_eq!(s.taken_branches, 9);
    }

    #[test]
    fn call_and_ret() {
        let s = run(r#"
            .func main
                movi r1, 5
                call double
                mov r0, r1
                halt
            .endfunc
            .func double
                add r1, r1, r1
                ret
            .endfunc
        "#);
        assert_eq!(s.result, 10);
        // call and ret are both taken transfers.
        assert_eq!(s.taken_branches, 2);
    }

    #[test]
    fn fp_math() {
        let s = run(r#"
            .func main
                fmovi f1, 9.0
                fsqrt f2, f1
                cvtfi r0, f2
                halt
            .endfunc
        "#);
        assert_eq!(s.result, 3);
    }

    #[test]
    fn memory_roundtrip() {
        let s = run(r#"
            .data 16
            .func main
                movi r1, 3
                movi r2, 99
                store r2, [r1+2]
                load r0, [r1+2]
                halt
            .endfunc
        "#);
        assert_eq!(s.result, 99);
        assert!(s.mem_accesses >= 1);
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let p = assemble(
            "t",
            r#"
            .data 4
            .func main
                movi r1, 100
                load r0, [r1]
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let err = run_with(&m, &p, &RunConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, SimError::MemOutOfBounds { .. }));
    }

    #[test]
    fn negative_index_errors() {
        let p = assemble(
            "t",
            r#"
            .data 4
            .func main
                movi r1, 0
                load r0, [r1-1]
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let err = run_with(&m, &p, &RunConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            SimError::MemOutOfBounds { word_addr: -1, .. }
        ));
    }

    #[test]
    fn ret_underflow_errors() {
        let p = assemble("t", ".func main\n ret\n.endfunc\n").unwrap();
        let m = MachineModel::ivy_bridge();
        let err = run_with(&m, &p, &RunConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, SimError::CallStackUnderflow { .. }));
    }

    #[test]
    fn call_overflow_errors() {
        let p = assemble(
            "t",
            r#"
            .func main
                call main
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let cfg = RunConfig {
            call_stack_limit: 32,
            ..RunConfig::default()
        };
        let err = run_with(&m, &p, &cfg, &mut NullObserver).unwrap_err();
        assert!(matches!(err, SimError::CallStackOverflow { .. }));
    }

    #[test]
    fn fuel_exhaustion_stops() {
        let p = assemble(
            "t",
            r#"
            .func main
            spin:
                jmp spin
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let cfg = RunConfig::with_fuel(1000);
        let s = run_with(&m, &p, &cfg, &mut NullObserver).unwrap();
        assert_eq!(s.stop, StopReason::FuelExhausted);
        assert_eq!(s.instructions, 1000);
    }

    #[test]
    fn indirect_call_dispatch() {
        let s = run(r#"
            .func main
                movi r10, 4          ; address of f (computed below)
                callind r10
                halt
            .endfunc
            .func pad
                ret
            .endfunc
            .func f
                movi r0, 77
                ret
            .endfunc
        "#);
        assert_eq!(s.result, 77);
    }

    #[test]
    fn indirect_call_to_non_entry_errors() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r10, 1
                callind r10
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let err = run_with(&m, &p, &RunConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, SimError::IndirectCallNotFunction { .. }));
    }

    // --- Timing-model properties -----------------------------------------

    /// Collects events for timing assertions.
    #[derive(Default)]
    struct Collector(Vec<RetireEvent>);
    impl RetireObserver for Collector {
        fn on_retire(&mut self, ev: &RetireEvent) {
            self.0.push(*ev);
        }
    }

    #[test]
    fn cycles_monotone_and_bursts_bounded() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 200
                movi r2, 3
            top:
                add r3, r1, r2
                add r4, r3, r2
                div r5, r1, r2
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let mut c = Collector::default();
        Cpu::new(&m)
            .run(&p, &RunConfig::default(), &mut [&mut c])
            .unwrap();
        let evs = &c.0;
        let mut per_cycle = std::collections::HashMap::new();
        let mut prev = 0u64;
        for ev in evs {
            assert!(ev.cycle >= prev, "retirement cycles are monotone");
            prev = ev.cycle;
            *per_cycle.entry(ev.cycle).or_insert(0u32) += 1;
        }
        assert!(per_cycle.values().all(|&n| n <= m.retire_width));
        // Bursts exist: some cycle retires more than one instruction.
        assert!(
            per_cycle.values().any(|&n| n > 1),
            "no retirement bursts observed"
        );
    }

    #[test]
    fn div_stalls_retirement() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 90
                movi r2, 3
                add r3, r1, r2
                div r4, r1, r2
                add r5, r1, r2
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let mut c = Collector::default();
        Cpu::new(&m)
            .run(&p, &RunConfig::default(), &mut [&mut c])
            .unwrap();
        let evs = &c.0;
        // Gap before the div retires is at least div latency - hide.
        let div_idx = 3;
        let gap = evs[div_idx].cycle - evs[div_idx - 1].cycle;
        assert!(
            gap >= u64::from(m.latencies.div - m.hide_latency),
            "div retired without a stall (gap {gap})"
        );
        // The instruction after the div retires in the same burst cycle.
        assert_eq!(evs[div_idx + 1].cycle, evs[div_idx].cycle);
    }

    #[test]
    fn taken_branches_report_targets() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 3
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::ivy_bridge();
        let mut c = Collector::default();
        Cpu::new(&m)
            .run(&p, &RunConfig::default(), &mut [&mut c])
            .unwrap();
        let taken: Vec<_> = c.0.iter().filter(|e| e.is_taken_branch()).collect();
        assert_eq!(taken.len(), 2);
        assert!(taken
            .iter()
            .all(|e| e.addr == 2 && e.taken_target == Some(1)));
    }

    #[test]
    fn observers_see_every_instruction() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 50
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::westmere();
        let mut c = Collector::default();
        let s = Cpu::new(&m)
            .run(&p, &RunConfig::default(), &mut [&mut c])
            .unwrap();
        assert_eq!(c.0.len() as u64, s.instructions);
        // seq is dense and ordered.
        for (i, ev) in c.0.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
            .data 64
            .func main
                movi r1, 1000
                movi r2, 7
            top:
                rem r3, r1, r2
                store r3, [r3+0]
                load r4, [r3+0]
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#;
        let a = run(src);
        let b = run(src);
        assert_eq!(a, b);
    }

    #[test]
    fn reused_cpu_is_bit_identical_to_fresh_runs() {
        // Two programs with different data-segment sizes, call depths and
        // branch patterns, interleaved on ONE retained Cpu: every summary
        // must match a fresh single-use run, proving the scratch reset
        // leaves no state behind (and handles shrinking/growing memory).
        let a = assemble(
            "a",
            r#"
            .data 64
            .func main
                movi r1, 500
                movi r2, 7
            top:
                rem r3, r1, r2
                store r3, [r3+0]
                load r4, [r3+0]
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let b = assemble(
            "b",
            r#"
            .data 8
            .func main
                movi r1, 40
            top:
                call bump
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
            .func bump
                addi r0, r0, 3
                ret
            .endfunc
        "#,
        )
        .unwrap();
        let m = MachineModel::westmere();
        let cfg = RunConfig::default();
        let mut cpu = Cpu::new(&m);
        for _ in 0..3 {
            for p in [&a, &b] {
                let reused = cpu.run(p, &cfg, &mut [&mut NullObserver]).unwrap();
                let fresh = run_with(&m, p, &cfg, &mut NullObserver).unwrap();
                assert_eq!(reused, fresh);
            }
        }
    }

    #[test]
    fn degenerate_cache_geometry_fails_the_run() {
        let p = assemble("t", ".func main\n halt\n.endfunc\n").unwrap();
        let mut m = MachineModel::ivy_bridge();
        m.cache.l1_ways = m.cache.l1_words; // ways > lines
        let err = run_with(&m, &p, &RunConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, SimError::BadCacheGeometry { level: "L1", .. }));
    }

    #[test]
    fn mispredict_inserts_bubble() {
        // A data-dependent branch alternating taken/not-taken defeats the
        // bimodal predictor; cycles must exceed the well-predicted variant.
        let alternating = run_args(
            r#"
            .func main
                movi r1, 2000
            top:
                andi r2, r1, 1
                brz r2, even
                addi r3, r3, 1
            even:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
            &[],
        );
        let steady = run_args(
            r#"
            .func main
                movi r1, 2000
            top:
                movi r2, 1
                brz r2, even
                addi r3, r3, 1
            even:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
            &[],
        );
        assert!(alternating.mispredicts > steady.mispredicts);
        assert!(alternating.cycles > steady.cycles);
    }
}
