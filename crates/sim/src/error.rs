//! Runtime errors raised by the executor.

use ct_isa::Addr;
use std::fmt;

/// Errors terminating a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A load or store touched a word outside the data segment.
    MemOutOfBounds { pc: Addr, word_addr: i64 },
    /// An indirect jump/call resolved outside the program.
    BadIndirectTarget { pc: Addr, target: i64 },
    /// `ret` executed with an empty call stack.
    CallStackUnderflow { pc: Addr },
    /// The call stack exceeded its configured depth.
    CallStackOverflow { pc: Addr, depth: usize },
    /// An indirect call landed on an address that is not a function entry.
    IndirectCallNotFunction { pc: Addr, target: Addr },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemOutOfBounds { pc, word_addr } => {
                write!(f, "pc {pc}: memory access out of bounds (word {word_addr})")
            }
            SimError::BadIndirectTarget { pc, target } => {
                write!(f, "pc {pc}: indirect target {target} out of range")
            }
            SimError::CallStackUnderflow { pc } => {
                write!(f, "pc {pc}: ret with empty call stack")
            }
            SimError::CallStackOverflow { pc, depth } => {
                write!(f, "pc {pc}: call stack exceeded {depth} frames")
            }
            SimError::IndirectCallNotFunction { pc, target } => {
                write!(
                    f,
                    "pc {pc}: indirect call target {target} is not a function entry"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
