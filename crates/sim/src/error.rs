//! Runtime errors raised by the executor.

use ct_isa::Addr;
use std::fmt;

/// Errors terminating a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A load or store touched a word outside the data segment.
    MemOutOfBounds { pc: Addr, word_addr: i64 },
    /// An indirect jump/call resolved outside the program.
    BadIndirectTarget { pc: Addr, target: i64 },
    /// `ret` executed with an empty call stack.
    CallStackUnderflow { pc: Addr },
    /// The call stack exceeded its configured depth.
    CallStackOverflow { pc: Addr, depth: usize },
    /// An indirect call landed on an address that is not a function entry.
    IndirectCallNotFunction { pc: Addr, target: Addr },
    /// A machine's cache geometry cannot be modeled: the line size must
    /// be a power of two, each level's word count a nonzero multiple of
    /// it, and the ways must divide the lines into a power-of-two number
    /// of sets (with `ways <= lines`).
    BadCacheGeometry {
        level: &'static str,
        words: usize,
        ways: usize,
        line_words: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemOutOfBounds { pc, word_addr } => {
                write!(f, "pc {pc}: memory access out of bounds (word {word_addr})")
            }
            SimError::BadIndirectTarget { pc, target } => {
                write!(f, "pc {pc}: indirect target {target} out of range")
            }
            SimError::CallStackUnderflow { pc } => {
                write!(f, "pc {pc}: ret with empty call stack")
            }
            SimError::CallStackOverflow { pc, depth } => {
                write!(f, "pc {pc}: call stack exceeded {depth} frames")
            }
            SimError::IndirectCallNotFunction { pc, target } => {
                write!(
                    f,
                    "pc {pc}: indirect call target {target} is not a function entry"
                )
            }
            SimError::BadCacheGeometry {
                level,
                words,
                ways,
                line_words,
            } => {
                write!(
                    f,
                    "{level} cache geometry is degenerate ({words} words, {ways} ways, \
                     {line_words}-word lines): line size must be a power of two dividing \
                     the level size, with ways <= lines and a power-of-two set count"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
