//! Regenerates **Table 1**: accuracy errors of every sampling method on
//! the four kernels, per machine (lower is better).
//!
//! ```text
//! cargo run --release -p ct-bench --bin table1 \
//!     [--scale F] [--repeats N] [--seed N] [--threads N] [--json PATH]
//! ```
//!
//! Cells run on the parallel grid engine; `--threads 1` and `--threads N`
//! emit byte-identical output.

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::evaluation_table;
use ct_bench::{grid_runner, maybe_write_json, workload_specs, CliOptions};
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CliOptions::parse(&args);
    let workloads = ct_workloads::kernel_set(cli.scale);
    let machines = MachineModel::paper_machines();
    let opts = MethodOptions::default();

    println!(
        "Table 1: kernel accuracy errors (mean±sd over {} runs, % of net instructions; lower is better)\n",
        cli.repeats
    );
    let evals = grid_runner(&cli).run_standard(
        &machines,
        &workload_specs(&workloads),
        &opts,
        cli.repeats,
        cli.seed,
    );
    let method_labels: Vec<&str> = MethodKind::ALL.iter().map(|k| k.label()).collect();
    for w in &workloads {
        let t = evaluation_table(&w.name, &evals, &method_labels);
        println!("{}", t.render());
    }
    maybe_write_json(&cli, &evals);
}
