//! Serving-mode benchmark: drives the evaluation service
//! ([`countertrust::serve::EvalService`]) with a synthetic JSON-lines
//! request stream — batched or through the staged intake pipeline — and
//! reports throughput, cache hit rate and latency percentiles.
//!
//! ```text
//! cargo run --release -p ct-bench --bin serve_bench -- \
//!     [--pattern hot|cold|zipfian] [--requests N] [--batch N] \
//!     [--pipeline-depth N] [--chunk N] [--admission lru|freq] \
//!     [--capacity N] [--runs N] [--scale F] [--seed N] [--threads N] \
//!     [--smoke]
//! ```
//!
//! Responses go to **stdout** as JSON lines (one per request, in request
//! order) and are byte-identical for any `--threads N`, `--capacity N`,
//! `--admission`, `--pipeline-depth N` and `--chunk N`; all
//! timing-dependent numbers (the summary) go to **stderr**.
//! `--capacity 0` (the default) is an unbounded cache.
//!
//! `--pipeline-depth N` (N ≥ 1) switches from batch-synchronous serving
//! to the staged pipeline: intake parses `--chunk`-sized chunks
//! (default: `--batch`) while earlier chunks build references and
//! evaluate, with at most N chunks buffered between stages.
//!
//! `--smoke` runs a small stream across batched, single-threaded, wide
//! and pipelined services and fails loudly if any output differs, so CI
//! exercises the whole serving path (stream generation, sharding, cache,
//! pipeline, JSON) on every push.

use countertrust::cache::AdmissionPolicy;
use countertrust::methods::MethodOptions;
use countertrust::serve::{EvalRequest, EvalService, PipelineOptions};
use ct_bench::streams::{
    distinct_pairs, percentile, request_stream, to_wire, StreamConfig, StreamPattern,
};
use ct_bench::{workload_specs, CliOptions};
use ct_instrument::CollectionAudit;
use ct_sim::MachineModel;
use std::time::Instant;

struct ServeCli {
    base: CliOptions,
    pattern: StreamPattern,
    requests: usize,
    batch: usize,
    /// `Some(depth)` switches to the staged pipeline.
    pipeline_depth: Option<usize>,
    /// Pipeline chunk size; defaults to `--batch`.
    chunk: Option<usize>,
    admission: AdmissionPolicy,
    capacity: usize,
    runs: usize,
    smoke: bool,
}

fn parse(args: &[String]) -> ServeCli {
    let mut cli = ServeCli {
        base: CliOptions::parse(args),
        pattern: StreamPattern::Zipfian,
        requests: 500,
        batch: 64,
        pipeline_depth: None,
        chunk: None,
        admission: AdmissionPolicy::Lru,
        capacity: 0,
        runs: 1,
        smoke: false,
    };
    let mut i = 0;
    while i < args.len() {
        // Consumes the flag's value, advancing past it (mirrors
        // CliOptions::parse, so a value is never re-read as a flag).
        let take = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--pattern" => {
                if let Some(v) = take(&mut i) {
                    match StreamPattern::parse(v) {
                        Some(p) => cli.pattern = p,
                        None => eprintln!(
                            "warning: unknown --pattern {v:?}; keeping {}",
                            cli.pattern.name()
                        ),
                    }
                }
            }
            "--requests" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.requests = n,
                        _ => eprintln!("warning: ignoring invalid --requests {v:?}"),
                    }
                }
            }
            "--batch" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.batch = n,
                        _ => eprintln!("warning: ignoring invalid --batch {v:?}"),
                    }
                }
            }
            "--pipeline-depth" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.pipeline_depth = Some(n),
                        _ => eprintln!("warning: ignoring invalid --pipeline-depth {v:?}"),
                    }
                }
            }
            "--chunk" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.chunk = Some(n),
                        _ => eprintln!("warning: ignoring invalid --chunk {v:?}"),
                    }
                }
            }
            "--admission" => {
                if let Some(v) = take(&mut i) {
                    match AdmissionPolicy::parse(v) {
                        Some(p) => cli.admission = p,
                        None => eprintln!(
                            "warning: unknown --admission {v:?}; keeping {}",
                            cli.admission.name()
                        ),
                    }
                }
            }
            "--capacity" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) => cli.capacity = n,
                        Err(_) => eprintln!("warning: ignoring invalid --capacity {v:?}"),
                    }
                }
            }
            "--runs" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.runs = n,
                        _ => eprintln!("warning: ignoring invalid --runs {v:?}"),
                    }
                }
            }
            "--smoke" => cli.smoke = true,
            _ => {}
        }
        i += 1;
    }
    cli
}

/// Serves `requests` in batches, returning the JSONL output and the
/// per-request wall-clock latencies (each request's latency is its
/// batch's completion time — requests complete when their batch does).
fn drive(
    service: &EvalService<'_>,
    requests: &[EvalRequest],
    batch: usize,
) -> (String, Vec<f64>) {
    let mut jsonl = String::new();
    let mut latencies_ms = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch) {
        let t = Instant::now();
        jsonl.push_str(&service.serve_jsonl(chunk));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        latencies_ms.extend(std::iter::repeat(ms).take(chunk.len()));
    }
    (jsonl, latencies_ms)
}

/// Serves `requests` through the staged pipeline: the stream is
/// serialized to its JSON-lines wire form and read back incrementally,
/// exactly as a network intake would deliver it.
fn drive_pipelined(
    service: &EvalService<'_>,
    requests: &[EvalRequest],
    options: &PipelineOptions,
) -> String {
    let wire = to_wire(requests);
    let mut out = Vec::new();
    let stats = service
        .serve_pipelined(wire.as_bytes(), &mut out, options)
        .expect("in-memory pipeline never hits I/O errors");
    assert_eq!(stats.parse_errors, 0, "generated streams are well-formed");
    String::from_utf8(out).expect("responses are UTF-8")
}

/// Formats an optional latency percentile (`None` when no requests ran
/// or the mode has no per-batch timings).
fn fmt_ms(p: Option<f64>) -> String {
    p.map_or_else(|| "n/a".to_string(), |ms| format!("{ms:.2} ms"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = parse(&args);
    let mut scale = cli.base.scale;
    if cli.smoke {
        cli.requests = cli.requests.min(24);
        cli.batch = cli.batch.min(8);
        scale = scale.min(0.01);
    }
    let pipeline = PipelineOptions::new()
        .depth(cli.pipeline_depth.unwrap_or(2))
        .chunk(cli.chunk.unwrap_or(cli.batch));

    let machines = MachineModel::paper_machines();
    let workloads = ct_workloads::all(scale);
    let specs = workload_specs(&workloads);
    let opts = if cli.smoke {
        MethodOptions::fast()
    } else {
        MethodOptions::default()
    };
    let stream = request_stream(
        &machines,
        &workloads,
        &opts,
        &StreamConfig {
            pattern: cli.pattern,
            requests: cli.requests,
            seed: cli.base.seed,
            runs: cli.runs,
        },
    );

    let service = EvalService::new(&machines, &specs)
        .method_options(opts.clone())
        .threads(cli.base.threads.unwrap_or(0))
        .cache_capacity(cli.capacity)
        .admission(cli.admission);

    let audit = CollectionAudit::begin();
    let wall = Instant::now();
    let (jsonl, mut latencies) = if cli.pipeline_depth.is_some() {
        (drive_pipelined(&service, &stream, &pipeline), Vec::new())
    } else {
        drive(&service, &stream, cli.batch)
    };
    let elapsed = wall.elapsed().as_secs_f64();
    // Snapshot before the smoke re-serves below: the summary must
    // describe the main run, not the verification replays.
    let collections = audit.collections();

    if cli.smoke {
        // Re-serve the same stream on fresh single-threaded, wide and
        // pipelined services: all outputs must agree byte for byte.
        let narrow = EvalService::new(&machines, &specs)
            .method_options(opts.clone())
            .threads(1)
            .cache_capacity(cli.capacity);
        let wide = EvalService::new(&machines, &specs)
            .method_options(opts.clone())
            .threads(8)
            .cache_capacity(1.max(cli.capacity / 2));
        let piped = EvalService::new(&machines, &specs)
            .method_options(opts)
            .threads(4)
            .cache_capacity(cli.capacity)
            .admission(AdmissionPolicy::Frequency);
        let (narrow_out, _) = drive(&narrow, &stream, cli.batch);
        let (wide_out, _) = drive(&wide, &stream, stream.len());
        let piped_out = drive_pipelined(
            &piped,
            &stream,
            &PipelineOptions::new().depth(1).chunk(cli.batch),
        );
        assert_eq!(jsonl, narrow_out, "smoke: threads must not change output");
        assert_eq!(jsonl, wide_out, "smoke: batching/capacity must not change output");
        assert_eq!(
            jsonl, piped_out,
            "smoke: pipelining/admission must not change output"
        );
        eprintln!(
            "smoke: determinism contract holds across threads, batch size, capacity, \
             pipelining and admission policy"
        );
    }

    print!("{jsonl}");

    let stats = service.stats();
    let cache = service.cache_stats();
    latencies.sort_by(f64::total_cmp);
    eprintln!("serve_bench summary");
    eprintln!("  pattern          {}", cli.pattern.name());
    if cli.pipeline_depth.is_some() {
        eprintln!(
            "  mode             pipelined (depth {}, chunk {})",
            pipeline.depth.max(1),
            pipeline.chunk.max(1)
        );
    } else {
        eprintln!("  mode             batched (batch {})", cli.batch);
    }
    eprintln!(
        "  requests         {} ({} distinct pairs)",
        stream.len(),
        distinct_pairs(&stream)
    );
    eprintln!("  threads          {}", service.thread_count());
    eprintln!(
        "  cache            capacity {} | policy {} | resident {} | evictions {} | rejected {}",
        if cli.capacity == 0 {
            "unbounded".to_string()
        } else {
            cli.capacity.to_string()
        },
        cli.admission.name(),
        cache.resident,
        cache.evictions,
        cache.rejected
    );
    eprintln!(
        "  hit rate         {:.1}% ({} hits / {} builds / {} errors)",
        stats.hit_rate() * 100.0,
        stats.cache_hits,
        stats.builds,
        stats.errors
    );
    eprintln!("  reference runs   {collections} instrumented executions (audited)");
    eprintln!(
        "  throughput       {:.1} req/s ({:.3} s wall)",
        stream.len() as f64 / elapsed.max(1e-9),
        elapsed
    );
    eprintln!(
        "  latency          p50 {} | p99 {} (per-request, batch-completion)",
        fmt_ms(percentile(&latencies, 0.50)),
        fmt_ms(percentile(&latencies, 0.99))
    );
}
