//! Serving-mode benchmark: drives the evaluation service
//! ([`countertrust::serve::EvalService`]) with a synthetic JSON-lines
//! request stream — batched or through the staged intake pipeline — and
//! reports throughput, cache hit rate and latency percentiles.
//!
//! ```text
//! cargo run --release -p ct-bench --bin serve_bench -- \
//!     [--pattern hot|cold|zipfian|mixed] [--requests N] [--batch N] \
//!     [--pipeline-depth N] [--chunk N] [--admission lru|freq] \
//!     [--capacity N] [--quota N] [--fairness fcfs|weighted] [--runs N] \
//!     [--scale F] [--seed N] [--threads N] [--record-latency] \
//!     [--listen ADDR] [--connect ADDR|self] [--connections N] \
//!     [--proto v1|v2] [--snapshot-dir DIR] [--workload-dir DIR] [--smoke]
//! ```
//!
//! `--workload-dir DIR` swaps the compiled-in workload catalog for one
//! compiled at startup from a directory of `.ctasm` + manifest pairs
//! (`countertrust` loads it through `ct_workloads::loader`, the same
//! path the registry's embedded built-ins take). Every downstream knob —
//! stream generation, smoke replicas, network modes — then serves that
//! catalog, so `--smoke --workload-dir crates/workloads/programs` must
//! produce stdout byte-identical to plain `--smoke`: the CI proof that a
//! data catalog served from disk answers exactly like the compiled-in
//! one. A malformed directory is rejected with the loader's typed error
//! before any request is generated.
//!
//! `--snapshot-dir DIR` backs the reference-profile cache with the
//! on-disk snapshot store (`countertrust::store`): cold builds write
//! validated snapshots behind, later runs on the same directory
//! warm-start — zero instrumented executions (see the audited
//! `reference runs` summary line), byte-identical output. Under
//! `--smoke` the determinism replicas share the directory, so the
//! byte-compares double as a warm-vs-cold identity proof.
//!
//! `--pattern mixed` generates the two-tenant interference stream (90%
//! hot default-catalog zipfian, 10% cold `tenant-b` zipfian) and
//! registers the second catalog automatically; `--quota N` caps each
//! tenant's resident cache entries (0 = unlimited) and `--fairness
//! weighted` interleaves plan/build/evaluate work round-robin across
//! tenants. The summary then adds a per-tenant breakdown (requests, hit
//! rate, errors, and p99 latency under `--record-latency`). Neither knob
//! changes response bytes.
//!
//! Responses go to **stdout** as JSON lines (one per request, in request
//! order) and are byte-identical for any `--threads N`, `--capacity N`,
//! `--admission`, `--pipeline-depth N` and `--chunk N`; all
//! timing-dependent numbers (the summary) go to **stderr**.
//! `--capacity 0` (the default) is an unbounded cache. Loopback mode is
//! the one caveat to stdout ordering: the stream is split round-robin
//! across connections and printed as whole per-connection groups, so
//! stdout is a (deterministic) permutation of request order — the
//! byte-identity contract holds *per connection*, against the offline
//! pipelined run of that connection's sub-stream.
//!
//! `--pipeline-depth N` (N ≥ 1) switches from batch-synchronous serving
//! to the staged pipeline: intake parses `--chunk`-sized chunks
//! (default: `--batch`) while earlier chunks build references and
//! evaluate, with at most N chunks buffered between stages.
//! `--record-latency` additionally stamps each pipelined response with
//! its queue/build/eval micros and reports p50/p99 per-request latency
//! (opting out of byte-identity — latency is wall clock).
//!
//! Network modes (`countertrust::serve::net`):
//!
//! * `--listen ADDR --connect self` — loopback benchmark: binds ADDR
//!   (port 0 for ephemeral), serves the catalog over TCP, and drives the
//!   generated stream through `--connections N` concurrent client
//!   connections against its own listener. Each connection's response
//!   stream is verified byte-for-byte against a fresh offline pipelined
//!   run of the same sub-stream (skipped under `--record-latency`).
//! * `--listen ADDR` alone — serves forever (kill to stop).
//! * `--connect ADDR` alone — client mode: streams the generated
//!   requests to a remote server and prints its responses.
//!
//! `--proto v2` switches the client side to the keep-alive multiplexed
//! wire protocol: loopback mode opens ONE connection carrying
//! `--connections` logical streams (the same round-robin split v1 spreads
//! over N connections), and client mode multiplexes the stream the same
//! way. The server needs no flag — it auto-negotiates per connection via
//! the version preamble. Byte-identity is verified per *stream* exactly
//! as v1 verifies per connection.
//!
//! `--smoke` runs a small stream across batched, single-threaded, wide
//! and pipelined services and fails loudly if any output differs, so CI
//! exercises the whole serving path (stream generation, sharding, cache,
//! pipeline, JSON — and with `--listen --connect self`, the TCP intake)
//! on every push.

use countertrust::cache::{AdmissionPolicy, CacheQuotas};
use countertrust::grid::WorkloadSpec;
use countertrust::methods::MethodOptions;
use countertrust::serve::net::{exchange, EvalServer, NetOptions};
use countertrust::serve::proto::exchange_v2;
use countertrust::serve::{
    Catalog, CatalogRegistry, EvalRequest, EvalService, FairnessPolicy, PipelineOptions,
};
use ct_bench::streams::{
    distinct_pairs, percentile, request_stream, to_wire, StreamConfig, StreamPattern,
    MIXED_COLD_CATALOG,
};
use ct_bench::{workload_specs, CliOptions};
use ct_instrument::CollectionAudit;
use ct_sim::MachineModel;
use std::time::Instant;

struct ServeCli {
    base: CliOptions,
    pattern: StreamPattern,
    requests: usize,
    batch: usize,
    /// `Some(depth)` switches to the staged pipeline.
    pipeline_depth: Option<usize>,
    /// Pipeline chunk size; defaults to `--batch`.
    chunk: Option<usize>,
    admission: AdmissionPolicy,
    capacity: usize,
    /// Per-tenant cache residency cap (`0` = unlimited).
    quota: usize,
    /// Cross-tenant scheduling inside each chunk.
    fairness: FairnessPolicy,
    runs: usize,
    record_latency: bool,
    /// Bind address for TCP serving (`0` port = ephemeral).
    listen: Option<String>,
    /// Peer address for client mode, or `self` for loopback against our
    /// own listener.
    connect: Option<String>,
    /// Concurrent client connections in loopback mode.
    connections: usize,
    /// Client wire protocol: `false` = one v1 connection per sub-stream,
    /// `true` = one keep-alive v2 connection multiplexing them all.
    proto_v2: bool,
    /// Snapshot-store directory backing the profile cache
    /// (`countertrust::store`); `None` = no persistence.
    snapshot_dir: Option<String>,
    /// Directory of `.ctasm` + manifest pairs replacing the compiled-in
    /// workload catalog; `None` = serve the registry built-ins.
    workload_dir: Option<String>,
    smoke: bool,
}

/// Parses a count flag that must be ≥ 1, matching the `--threads`
/// convention from PR 1: a zero or negative value is **rejected** by
/// clamping to 1 with a warning (silently keeping the default would make
/// `--pipeline-depth 0` fall back to batched mode behind the user's
/// back); a non-numeric value warns and keeps the current setting.
fn parse_positive_count(flag: &str, raw: &str) -> Option<usize> {
    match raw.parse::<i128>() {
        Ok(n) if n <= 0 => {
            eprintln!("warning: rejecting {flag} {n} (must be >= 1); clamping to 1");
            Some(1)
        }
        Ok(n) => Some(usize::try_from(n).unwrap_or(usize::MAX)),
        Err(_) => {
            eprintln!("warning: ignoring invalid value {raw:?} for {flag}");
            None
        }
    }
}

/// Whether this CLI combination would silently drop `--fairness`:
/// weighted scheduling lives in the serving side's pipeline stages, so
/// it has no effect in local batched mode (no `--pipeline-depth`) or in
/// pure client mode (`--connect` without `--listen`, where the remote
/// server's options govern scheduling). Any `--listen` mode serves
/// pipelined and applies it.
fn fairness_needs_pipeline(cli: &ServeCli) -> bool {
    if cli.fairness == FairnessPolicy::Fcfs || cli.listen.is_some() {
        return false;
    }
    // Local batched mode, or client-only mode.
    cli.connect.is_some() || cli.pipeline_depth.is_none()
}

fn parse(args: &[String]) -> ServeCli {
    let mut cli = ServeCli {
        base: CliOptions::parse(args),
        pattern: StreamPattern::Zipfian,
        requests: 500,
        batch: 64,
        pipeline_depth: None,
        chunk: None,
        admission: AdmissionPolicy::Lru,
        capacity: 0,
        quota: 0,
        fairness: FairnessPolicy::Fcfs,
        runs: 1,
        record_latency: false,
        listen: None,
        connect: None,
        connections: 4,
        proto_v2: false,
        snapshot_dir: None,
        workload_dir: None,
        smoke: false,
    };
    let mut i = 0;
    while i < args.len() {
        // Consumes the flag's value, advancing past it (mirrors
        // CliOptions::parse, so a value is never re-read as a flag).
        let take = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--pattern" => {
                if let Some(v) = take(&mut i) {
                    match StreamPattern::parse(v) {
                        Some(p) => cli.pattern = p,
                        None => eprintln!(
                            "warning: unknown --pattern {v:?}; keeping {}",
                            cli.pattern.name()
                        ),
                    }
                }
            }
            "--requests" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.requests = n,
                        _ => eprintln!("warning: ignoring invalid --requests {v:?}"),
                    }
                }
            }
            "--batch" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.batch = n,
                        _ => eprintln!("warning: ignoring invalid --batch {v:?}"),
                    }
                }
            }
            "--pipeline-depth" => {
                if let Some(v) = take(&mut i) {
                    if let Some(n) = parse_positive_count("--pipeline-depth", v) {
                        cli.pipeline_depth = Some(n);
                    }
                }
            }
            "--chunk" => {
                if let Some(v) = take(&mut i) {
                    if let Some(n) = parse_positive_count("--chunk", v) {
                        cli.chunk = Some(n);
                    }
                }
            }
            "--admission" => {
                if let Some(v) = take(&mut i) {
                    match AdmissionPolicy::parse(v) {
                        Some(p) => cli.admission = p,
                        None => eprintln!(
                            "warning: unknown --admission {v:?}; keeping {}",
                            cli.admission.name()
                        ),
                    }
                }
            }
            "--capacity" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) => cli.capacity = n,
                        Err(_) => eprintln!("warning: ignoring invalid --capacity {v:?}"),
                    }
                }
            }
            "--quota" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        // 0 is meaningful here: it lifts the cap.
                        Ok(n) => cli.quota = n,
                        Err(_) => eprintln!("warning: ignoring invalid --quota {v:?}"),
                    }
                }
            }
            "--fairness" => {
                if let Some(v) = take(&mut i) {
                    match FairnessPolicy::parse(v) {
                        Some(p) => cli.fairness = p,
                        None => eprintln!(
                            "warning: unknown --fairness {v:?}; keeping {}",
                            cli.fairness.name()
                        ),
                    }
                }
            }
            "--runs" => {
                if let Some(v) = take(&mut i) {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.runs = n,
                        _ => eprintln!("warning: ignoring invalid --runs {v:?}"),
                    }
                }
            }
            "--record-latency" => cli.record_latency = true,
            "--listen" => {
                if let Some(v) = take(&mut i) {
                    cli.listen = Some(v.clone());
                }
            }
            "--connect" => {
                if let Some(v) = take(&mut i) {
                    cli.connect = Some(v.clone());
                }
            }
            "--connections" => {
                if let Some(v) = take(&mut i) {
                    if let Some(n) = parse_positive_count("--connections", v) {
                        cli.connections = n;
                    }
                }
            }
            "--proto" => {
                if let Some(v) = take(&mut i) {
                    match v.as_str() {
                        "v1" => cli.proto_v2 = false,
                        "v2" => cli.proto_v2 = true,
                        _ => eprintln!(
                            "warning: unknown --proto {v:?} (expected v1 or v2); keeping {}",
                            if cli.proto_v2 { "v2" } else { "v1" }
                        ),
                    }
                }
            }
            "--snapshot-dir" => {
                if let Some(v) = take(&mut i) {
                    cli.snapshot_dir = Some(v.clone());
                }
            }
            "--workload-dir" => {
                if let Some(v) = take(&mut i) {
                    cli.workload_dir = Some(v.clone());
                }
            }
            "--smoke" => cli.smoke = true,
            _ => {}
        }
        i += 1;
    }
    cli
}

/// Builds the benchmark service: a single default catalog — plus the
/// cold [`MIXED_COLD_CATALOG`] tenant when the stream pattern is
/// multi-tenant — with the capacity/admission/quota knobs applied.
/// Every mode (batched, pipelined, smoke replicas, networked) constructs
/// its services here so the catalogs can never drift apart.
#[allow(clippy::too_many_arguments)]
fn build_service<'a>(
    pattern: StreamPattern,
    machines: &'a [MachineModel],
    specs: &'a [WorkloadSpec<'a>],
    opts: &MethodOptions,
    threads: usize,
    capacity: usize,
    admission: AdmissionPolicy,
    quota: usize,
) -> EvalService {
    let catalog = || Catalog::new(machines, specs).method_options(opts.clone());
    let mut registry = CatalogRegistry::new(catalog());
    if pattern.is_multi_tenant() {
        registry = registry.register(MIXED_COLD_CATALOG, catalog());
    }
    EvalService::with_registry(registry)
        .threads(threads)
        .cache_capacity(capacity)
        .admission(admission)
        .cache_quotas(CacheQuotas::per_catalog(quota))
}

/// Serves `requests` in batches, returning the JSONL output and the
/// per-request wall-clock latencies (each request's latency is its
/// batch's completion time — requests complete when their batch does).
fn drive(
    service: &EvalService,
    requests: &[EvalRequest],
    batch: usize,
) -> (String, Vec<f64>) {
    let mut jsonl = String::new();
    let mut latencies_ms = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch) {
        let t = Instant::now();
        jsonl.push_str(&service.serve_jsonl(chunk));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        latencies_ms.extend(std::iter::repeat(ms).take(chunk.len()));
    }
    (jsonl, latencies_ms)
}

/// Serves `requests` through the staged pipeline: the stream is
/// serialized to its JSON-lines wire form and read back incrementally,
/// exactly as a network intake would deliver it.
fn drive_pipelined(
    service: &EvalService,
    requests: &[EvalRequest],
    options: &PipelineOptions,
) -> String {
    let wire = to_wire(requests);
    let mut out = Vec::new();
    let stats = service
        .serve_pipelined(wire.as_bytes(), &mut out, options)
        .expect("in-memory pipeline never hits I/O errors");
    assert_eq!(stats.parse_errors, 0, "generated streams are well-formed");
    String::from_utf8(out).expect("responses are UTF-8")
}

/// Formats an optional latency percentile (`None` when no requests ran
/// or the mode has no per-batch timings).
fn fmt_ms(p: Option<f64>) -> String {
    p.map_or_else(|| "n/a".to_string(), |ms| format!("{ms:.2} ms"))
}

/// The summary tail every mode shares — cache, hit rate, throughput and
/// latency lines, formatted once here so the batched, pipelined and
/// loopback reports cannot drift apart. `batch_latencies_ms` is empty
/// in modes without per-batch timings (the latency line then reads
/// `n/a` unless `--record-latency` supplied per-request percentiles).
fn print_summary_tail(
    service: &EvalService,
    requests: usize,
    elapsed: f64,
    record_latency: bool,
    batch_latencies_ms: &[f64],
) {
    let stats = service.stats();
    eprintln!("  cache            {}", service.cache_stats().summary());
    eprintln!(
        "  hit rate         {:.1}% ({} hits / {} builds / {} errors)",
        stats.hit_rate() * 100.0,
        stats.cache_hits,
        stats.builds,
        stats.errors
    );
    eprintln!(
        "  throughput       {:.1} req/s ({:.3} s wall)",
        requests as f64 / elapsed.max(1e-9),
        elapsed
    );
    if record_latency && stats.timed_requests > 0 {
        eprintln!(
            "  latency          p50 {} µs | p99 {} µs (per-request, queue+build+eval, {} timed)",
            stats.latency_p50_us, stats.latency_p99_us, stats.timed_requests
        );
    } else {
        eprintln!(
            "  latency          p50 {} | p99 {} (per-request, batch-completion)",
            fmt_ms(percentile(batch_latencies_ms, 0.50)),
            fmt_ms(percentile(batch_latencies_ms, 0.99))
        );
    }
    // The per-tenant breakdown only earns its lines on a multi-tenant
    // service — a single catalog would just repeat the totals.
    if stats.tenants.len() > 1 {
        for tenant in &stats.tenants {
            let p99 = if tenant.timed_requests > 0 {
                format!("p99 {} µs", tenant.latency_p99_us)
            } else {
                "p99 n/a".to_string()
            };
            eprintln!(
                "  tenant {:<9} requests {} | hit rate {:.1}% ({} hits / {} builds) | {} | errors {}",
                tenant.catalog,
                tenant.requests,
                tenant.hit_rate() * 100.0,
                tenant.cache_hits,
                tenant.builds,
                p99,
                tenant.errors
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = parse(&args);
    let mut scale = cli.base.scale;
    if cli.smoke {
        cli.requests = cli.requests.min(24);
        cli.batch = cli.batch.min(8);
        scale = scale.min(0.01);
        if cli.record_latency {
            eprintln!(
                "warning: --smoke byte-compares outputs; ignoring --record-latency"
            );
            cli.record_latency = false;
        }
    }
    if cli.proto_v2 && cli.listen.is_none() && cli.connect.is_none() {
        eprintln!(
            "warning: --proto v2 is a wire-protocol choice and has no effect in \
             local mode (add --connect, or --listen with --connect self)"
        );
    }
    if fairness_needs_pipeline(&cli) {
        eprintln!(
            "warning: --fairness {} has no effect in this mode — it applies to \
             pipelined serving (add --pipeline-depth N, or serve with --listen)",
            cli.fairness.name()
        );
    }
    let pipeline = PipelineOptions::new()
        .depth(cli.pipeline_depth.unwrap_or(2))
        .chunk(cli.chunk.unwrap_or(cli.batch))
        .record_latency(cli.record_latency)
        .fairness(cli.fairness);

    let machines = MachineModel::paper_machines();
    // The whole benchmark — stream generation, every replica, every
    // network mode — flows from this one catalog, so swapping in a
    // `--workload-dir` here is all it takes for the data-catalog path to
    // inherit every byte-identity check below.
    let workloads = match &cli.workload_dir {
        Some(dir) => {
            let loaded = ct_workloads::loader::load_dir(
                dir.as_str(),
                scale,
                &ct_workloads::LoaderLimits::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("serve_bench: --workload-dir {dir}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "serve_bench: workload catalog from {dir} ({} workloads)",
                loaded.len()
            );
            loaded
        }
        None => ct_workloads::all(scale),
    };
    let specs = workload_specs(&workloads);
    let opts = if cli.smoke {
        MethodOptions::fast()
    } else {
        MethodOptions::default()
    };
    let stream = request_stream(
        &machines,
        &workloads,
        &opts,
        &StreamConfig {
            pattern: cli.pattern,
            requests: cli.requests,
            seed: cli.base.seed,
            runs: cli.runs,
        },
    );

    if cli.listen.is_some() || cli.connect.is_some() {
        run_networked(&cli, &machines, &specs, &opts, &stream, &pipeline);
        return;
    }

    let service = build_service(
        cli.pattern,
        &machines,
        &specs,
        &opts,
        cli.base.threads.unwrap_or(0),
        cli.capacity,
        cli.admission,
        cli.quota,
    );
    if let Some(dir) = &cli.snapshot_dir {
        service.attach_snapshot_dir(dir.as_str());
        eprintln!("serve_bench: snapshot store at {dir}");
    }

    let audit = CollectionAudit::begin();
    let wall = Instant::now();
    let (jsonl, mut latencies) = if cli.pipeline_depth.is_some() {
        (drive_pipelined(&service, &stream, &pipeline), Vec::new())
    } else {
        drive(&service, &stream, cli.batch)
    };
    let elapsed = wall.elapsed().as_secs_f64();
    // Snapshot before the smoke re-serves below: the summary must
    // describe the main run, not the verification replays.
    let collections = audit.collections();

    if cli.smoke {
        // Re-serve the same stream on fresh single-threaded, wide and
        // pipelined services: all outputs must agree byte for byte. The
        // pipelined replica flips every fairness knob (frequency
        // admission, per-tenant quota, weighted scheduling) — none may
        // change a single output byte.
        let narrow = build_service(
            cli.pattern, &machines, &specs, &opts, 1, cli.capacity,
            AdmissionPolicy::Lru, 0,
        );
        let wide = build_service(
            cli.pattern, &machines, &specs, &opts, 8,
            1.max(cli.capacity / 2), AdmissionPolicy::Lru, 0,
        );
        let piped = build_service(
            cli.pattern, &machines, &specs, &opts, 4, cli.capacity,
            AdmissionPolicy::Frequency, 1.max(cli.quota),
        );
        if let Some(dir) = &cli.snapshot_dir {
            // The replicas share the main run's store: every replica
            // warm-starts from the snapshots the main run just wrote, so
            // the byte-compares below are also the warm==cold proof.
            narrow.attach_snapshot_dir(dir.as_str());
            wide.attach_snapshot_dir(dir.as_str());
            piped.attach_snapshot_dir(dir.as_str());
        }
        let (narrow_out, _) = drive(&narrow, &stream, cli.batch);
        let (wide_out, _) = drive(&wide, &stream, stream.len());
        let piped_out = drive_pipelined(
            &piped,
            &stream,
            &PipelineOptions::new()
                .depth(1)
                .chunk(cli.batch)
                .fairness(FairnessPolicy::Weighted),
        );
        assert_eq!(jsonl, narrow_out, "smoke: threads must not change output");
        assert_eq!(jsonl, wide_out, "smoke: batching/capacity must not change output");
        assert_eq!(
            jsonl, piped_out,
            "smoke: pipelining/admission/quotas/fairness must not change output"
        );
        eprintln!(
            "smoke: determinism contract holds across threads, batch size, capacity, \
             pipelining, admission policy, quotas and fairness"
        );
    }

    print!("{jsonl}");

    latencies.sort_by(f64::total_cmp);
    eprintln!("serve_bench summary");
    eprintln!("  pattern          {}", cli.pattern.name());
    if cli.pipeline_depth.is_some() {
        eprintln!(
            "  mode             pipelined (depth {}, chunk {}, fairness {})",
            pipeline.depth.max(1),
            pipeline.chunk.max(1),
            pipeline.fairness.name()
        );
    } else {
        eprintln!("  mode             batched (batch {})", cli.batch);
    }
    if cli.quota > 0 {
        eprintln!("  quota            {} resident entries per tenant", cli.quota);
    }
    eprintln!(
        "  requests         {} ({} distinct pairs)",
        stream.len(),
        distinct_pairs(&stream)
    );
    eprintln!("  threads          {}", service.thread_count());
    eprintln!("  reference runs   {collections} instrumented executions (audited)");
    print_summary_tail(&service, stream.len(), elapsed, cli.record_latency, &latencies);
}

/// The TCP serving modes behind `--listen` / `--connect`.
///
/// * both flags — loopback benchmark: bind `--listen` (`--connect self`
///   by convention; the operand is otherwise ignored), drive the stream
///   through `--connections` concurrent client connections against our
///   own listener, and verify each connection's bytes against a fresh
///   offline pipelined run (unless `--record-latency` made responses
///   wall-clock-dependent);
/// * `--listen` alone — serve the catalog forever;
/// * `--connect` alone — stream the generated requests to a peer.
fn run_networked(
    cli: &ServeCli,
    machines: &[MachineModel],
    specs: &[WorkloadSpec<'_>],
    opts: &MethodOptions,
    stream: &[EvalRequest],
    pipeline: &PipelineOptions,
) {
    let service = || {
        build_service(
            cli.pattern,
            machines,
            specs,
            opts,
            cli.base.threads.unwrap_or(0),
            cli.capacity,
            cli.admission,
            cli.quota,
        )
    };

    // Snapshot persistence rides in on the server's options: the dir is
    // attached to the served service before the first accept, so a
    // restarted server on the same directory warm-starts.
    let net_options = |connections: usize| {
        let mut options = NetOptions::new().pipeline(*pipeline).max_connections(connections);
        if let Some(dir) = &cli.snapshot_dir {
            options = options.snapshot_dir(dir.as_str());
            eprintln!("serve_bench: snapshot store at {dir}");
        }
        options
    };

    match (&cli.listen, &cli.connect) {
        (Some(addr), Some(_)) => {
            let connections = cli.connections.max(1);
            let served = service();
            let server = EvalServer::listen(addr.as_str(), net_options(connections))
                .expect("--listen address must bind");
            let local = server.local_addr();
            let handle = server.handle();
            if cli.proto_v2 {
                eprintln!(
                    "serve_bench: loopback on {local}, 1 keep-alive v2 connection \
                     multiplexing {connections} streams"
                );
            } else {
                eprintln!(
                    "serve_bench: loopback on {local}, {connections} concurrent connections"
                );
            }
            // Round-robin split: connection (or v2 stream) c carries
            // requests c, c+N, …
            let subs: Vec<Vec<EvalRequest>> = (0..connections)
                .map(|c| stream.iter().skip(c).step_by(connections).cloned().collect())
                .collect();
            let wall = Instant::now();
            let (outputs, net) = std::thread::scope(|scope| {
                let serving = scope.spawn(|| server.serve(&served));
                let outputs: Vec<String> = if cli.proto_v2 {
                    let wires: Vec<String> = subs.iter().map(|sub| to_wire(sub)).collect();
                    exchange_v2(local, &wires).expect("loopback v2 exchange")
                } else {
                    let clients: Vec<_> = subs
                        .iter()
                        .map(|sub| {
                            scope.spawn(move || {
                                exchange(local, &to_wire(sub)).expect("loopback exchange")
                            })
                        })
                        .collect();
                    clients
                        .into_iter()
                        .map(|c| c.join().expect("client thread"))
                        .collect()
                };
                handle.shutdown();
                let net = serving.join().expect("server thread").expect("accept loop");
                (outputs, net)
            });
            let elapsed = wall.elapsed().as_secs_f64();

            if cli.record_latency {
                eprintln!(
                    "serve_bench: skipping byte-identity verification \
                     (--record-latency stamps responses with wall-clock micros)"
                );
            } else {
                for (c, (sub, got)) in subs.iter().zip(&outputs).enumerate() {
                    let mut expected = Vec::new();
                    service()
                        .serve_pipelined(to_wire(sub).as_bytes(), &mut expected, pipeline)
                        .expect("in-memory pipeline never hits I/O errors");
                    assert_eq!(
                        got.as_bytes(),
                        expected.as_slice(),
                        "{} {c}: TCP responses diverged from the offline pipelined run",
                        if cli.proto_v2 { "stream" } else { "connection" }
                    );
                }
                eprintln!(
                    "serve_bench: {} per-{} streams byte-identical to offline \
                     pipelined runs",
                    subs.len(),
                    if cli.proto_v2 { "stream" } else { "connection" }
                );
            }
            for output in &outputs {
                print!("{output}");
            }

            eprintln!("serve_bench summary");
            eprintln!("  pattern          {}", cli.pattern.name());
            eprintln!(
                "  mode             tcp loopback ({}, {} connections, depth {}, chunk {})",
                if cli.proto_v2 { "proto v2" } else { "proto v1" },
                net.connections,
                pipeline.depth.max(1),
                pipeline.chunk.max(1)
            );
            eprintln!(
                "  net              {} requests | {} responses | {} parse errors | \
                 {} io errors | {} worker panics",
                net.requests, net.responses, net.parse_errors, net.io_errors,
                net.worker_panics
            );
            print_summary_tail(&served, stream.len(), elapsed, cli.record_latency, &[]);
        }
        (Some(addr), None) => {
            let served = service();
            let server = EvalServer::listen(addr.as_str(), net_options(cli.connections.max(1)))
                .expect("--listen address must bind");
            eprintln!(
                "serve_bench: serving on {} (kill to stop)",
                server.local_addr()
            );
            let net = server.serve(&served).expect("accept loop");
            eprintln!(
                "serve_bench: served {} connections ({} responses, {} io errors, \
                 {} worker panics)",
                net.connections, net.responses, net.io_errors, net.worker_panics
            );
        }
        (None, Some(addr)) => {
            let wall = Instant::now();
            let response = if cli.proto_v2 {
                // Multiplex the stream over `--connections` logical
                // streams on one keep-alive connection, mirroring the
                // loopback round-robin split.
                let connections = cli.connections.max(1);
                let wires: Vec<String> = (0..connections)
                    .map(|c| {
                        to_wire(
                            &stream
                                .iter()
                                .skip(c)
                                .step_by(connections)
                                .cloned()
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                exchange_v2(addr.as_str(), &wires)
                    .expect("--connect v2 exchange")
                    .concat()
            } else {
                exchange(addr.as_str(), &to_wire(stream)).expect("--connect exchange")
            };
            let elapsed = wall.elapsed().as_secs_f64();
            print!("{response}");
            eprintln!(
                "serve_bench: {} responses from {addr} in {elapsed:.3} s{}",
                response.lines().count(),
                if cli.proto_v2 { " (proto v2)" } else { "" }
            );
        }
        (None, None) => unreachable!("networked mode requires --listen or --connect"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pipeline_depth_zero_is_clamped_to_one_not_batched_mode() {
        // The regression: `--pipeline-depth 0` used to be silently
        // ignored, leaving `pipeline_depth = None` — i.e. batched mode —
        // when the user explicitly asked for the pipeline.
        let cli = parse(&args(&["--pipeline-depth", "0"]));
        assert_eq!(cli.pipeline_depth, Some(1));
        let cli = parse(&args(&["--pipeline-depth", "-3"]));
        assert_eq!(cli.pipeline_depth, Some(1));
        let cli = parse(&args(&["--pipeline-depth", "4"]));
        assert_eq!(cli.pipeline_depth, Some(4));
        // Non-numeric still keeps the current (batched) setting.
        let cli = parse(&args(&["--pipeline-depth", "deep"]));
        assert_eq!(cli.pipeline_depth, None);
    }

    #[test]
    fn chunk_zero_is_clamped_to_one() {
        let cli = parse(&args(&["--chunk", "0"]));
        assert_eq!(cli.chunk, Some(1));
        let cli = parse(&args(&["--chunk", "-1"]));
        assert_eq!(cli.chunk, Some(1));
        let cli = parse(&args(&["--chunk", "16"]));
        assert_eq!(cli.chunk, Some(16));
        let cli = parse(&args(&["--chunk", "wide"]));
        assert_eq!(cli.chunk, None);
    }

    #[test]
    fn connections_zero_is_clamped_to_one() {
        let cli = parse(&args(&["--connections", "0"]));
        assert_eq!(cli.connections, 1);
        let cli = parse(&args(&["--connections", "-2"]));
        assert_eq!(cli.connections, 1);
        let cli = parse(&args(&["--connections", "7"]));
        assert_eq!(cli.connections, 7);
        // Non-numeric keeps the default.
        let cli = parse(&args(&["--connections", "many"]));
        assert_eq!(cli.connections, 4);
    }

    #[test]
    fn proto_flag_parses_and_defaults_to_v1() {
        let cli = parse(&args(&[]));
        assert!(!cli.proto_v2, "v1 is the default");
        let cli = parse(&args(&["--proto", "v2"]));
        assert!(cli.proto_v2);
        let cli = parse(&args(&["--proto", "v2", "--proto", "v1"]));
        assert!(!cli.proto_v2, "later flag wins");
        let cli = parse(&args(&["--proto", "v3"]));
        assert!(!cli.proto_v2, "unknown version keeps the current setting");
    }

    #[test]
    fn quota_and_fairness_flags_parse() {
        let cli = parse(&args(&["--quota", "3", "--fairness", "weighted"]));
        assert_eq!(cli.quota, 3);
        assert_eq!(cli.fairness, FairnessPolicy::Weighted);
        // Quota 0 is meaningful (unlimited), not clamped.
        let cli = parse(&args(&["--quota", "0"]));
        assert_eq!(cli.quota, 0);
        let cli = parse(&args(&["--quota", "lots", "--fairness", "unfair"]));
        assert_eq!(cli.quota, 0, "bad quota keeps the default");
        assert_eq!(cli.fairness, FairnessPolicy::Fcfs, "bad fairness keeps the default");
        let cli = parse(&args(&["--pattern", "mixed"]));
        assert_eq!(cli.pattern, StreamPattern::Mixed);
    }

    #[test]
    fn snapshot_dir_flag_parses() {
        let cli = parse(&args(&[]));
        assert_eq!(cli.snapshot_dir, None, "persistence is opt-in");
        let cli = parse(&args(&["--snapshot-dir", "/tmp/snaps"]));
        assert_eq!(cli.snapshot_dir.as_deref(), Some("/tmp/snaps"));
    }

    #[test]
    fn workload_dir_flag_parses() {
        let cli = parse(&args(&[]));
        assert_eq!(cli.workload_dir, None, "built-in catalog is the default");
        let cli = parse(&args(&["--workload-dir", "programs"]));
        assert_eq!(cli.workload_dir.as_deref(), Some("programs"));
    }

    #[test]
    fn modes_that_cannot_apply_fairness_warn_instead_of_silently_dropping_it() {
        // Weighted fairness in batched or client-only mode would be a
        // silent no-op; main() warns exactly when this predicate holds.
        assert!(fairness_needs_pipeline(&parse(&args(&["--fairness", "weighted"]))));
        assert!(
            fairness_needs_pipeline(&parse(&args(&[
                "--fairness", "weighted", "--connect", "host:7070",
            ]))),
            "client mode: the remote server's options govern scheduling"
        );
        assert!(!fairness_needs_pipeline(&parse(&args(&[
            "--fairness", "weighted", "--pipeline-depth", "2",
        ]))));
        assert!(!fairness_needs_pipeline(&parse(&args(&[
            "--fairness", "weighted", "--listen", "127.0.0.1:0",
        ]))));
        assert!(!fairness_needs_pipeline(&parse(&args(&[
            "--fairness", "weighted", "--listen", "127.0.0.1:0", "--connect", "self",
        ]))));
        assert!(!fairness_needs_pipeline(&parse(&args(&["--fairness", "fcfs"]))));
    }
}
