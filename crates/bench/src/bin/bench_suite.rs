//! The tracked perf suite: runs the fixed scenario matrix from
//! [`ct_bench::harness`] and emits the versioned `BENCH_<n>.json` report.
//!
//! ```text
//! cargo run --release -p ct-bench --bin bench_suite -- \
//!     [--smoke] [--out PATH] [--compare PATH] [--seed N] [--threads N]
//! cargo run --release -p ct-bench --bin bench_suite -- \
//!     --compare-files BASELINE NEW
//! ```
//!
//! * default — full measurement run; writes the tracked `BENCH_<n>.json` in the
//!   current directory (override with `--out`).
//! * `--smoke` — identical determinism probes, miniature measurements;
//!   what CI runs on every push.
//! * `--compare PATH` — after running, diff this run against the report
//!   at PATH: perf deltas are advisory (printed, tolerant thresholds),
//!   but a determinism-fingerprint mismatch — changed response bytes,
//!   changed reference-build counts, missing scenario — exits nonzero.
//! * `--compare-files BASELINE NEW` — diff two existing report files
//!   without running anything: the same comparison (and exit code) as
//!   `--compare`, for gating a checked-in `BENCH_<n>.json` against its
//!   predecessor in CI.
//!
//! The report goes to the `--out` file; all progress and comparison
//! output goes to stderr, so `--out /dev/stdout` composes with pipes.

use ct_bench::harness::{
    compare, parse_report, report_json, run_suite, HarnessOptions, BENCH_FILE,
};
use ct_bench::CliOptions;

struct SuiteCli {
    base: CliOptions,
    smoke: bool,
    out: String,
    compare_path: Option<String>,
    /// `--compare-files BASELINE NEW`: diff two existing reports and
    /// exit, without running the suite.
    compare_files: Option<(String, String)>,
}

fn parse(args: &[String]) -> SuiteCli {
    let mut cli = SuiteCli {
        base: CliOptions::parse(args),
        smoke: false,
        out: BENCH_FILE.to_string(),
        compare_path: None,
        compare_files: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--smoke" => cli.smoke = true,
            "--out" => {
                if let Some(v) = take(&mut i) {
                    cli.out = v.clone();
                }
            }
            "--compare" => {
                if let Some(v) = take(&mut i) {
                    cli.compare_path = Some(v.clone());
                }
            }
            "--compare-files" => {
                let baseline = take(&mut i).cloned();
                let fresh = take(&mut i).cloned();
                match (baseline, fresh) {
                    (Some(b), Some(n)) => cli.compare_files = Some((b, n)),
                    _ => {
                        eprintln!("bench_suite: --compare-files needs BASELINE and NEW paths");
                        std::process::exit(2);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    cli
}

/// Loads and parses a report file, exiting with status 2 (usage/IO
/// error, distinct from the determinism-failure exit 1) when it cannot
/// be read or does not parse.
fn load_report(path: &str) -> ct_bench::harness::Report {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_suite: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_suite: {path} does not parse: {e}");
            std::process::exit(2);
        }
    }
}

/// Prints a comparison outcome and returns whether it hard-failed.
fn report_outcome(label: &str, outcome: &ct_bench::harness::CompareOutcome) -> bool {
    eprintln!("bench_suite: comparison against {label}");
    for line in &outcome.lines {
        eprintln!("  {line}");
    }
    for line in &outcome.regressions {
        eprintln!("  REGRESSION (advisory): {line}");
    }
    if outcome.hard_failure() {
        for line in &outcome.fingerprint_mismatches {
            eprintln!("  DETERMINISM MISMATCH: {line}");
        }
        eprintln!(
            "bench_suite: determinism fingerprints diverged — failing \
             (regenerate the baseline only for deliberate semantic changes)"
        );
        return true;
    }
    eprintln!("bench_suite: determinism fingerprints match the baseline");
    false
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args);
    if let Some((baseline_path, new_path)) = &cli.compare_files {
        let baseline = load_report(baseline_path);
        let fresh = load_report(new_path);
        let outcome = compare(&baseline, &fresh);
        if report_outcome(baseline_path, &outcome) {
            std::process::exit(1);
        }
        return;
    }
    let opts = HarnessOptions {
        smoke: cli.smoke,
        seed: cli.base.seed,
        threads: cli.base.threads.unwrap_or(0),
    };
    eprintln!(
        "bench_suite: running {} scenarios ({} mode, seed {})",
        ct_bench::harness::MATRIX.len(),
        if cli.smoke { "smoke" } else { "full" },
        opts.seed
    );
    let mut log = |line: &str| eprintln!("  {line}");
    let results = run_suite(&opts, &mut log);
    let text = report_json(&results, cli.smoke);
    if let Err(e) = std::fs::write(&cli.out, &text) {
        eprintln!("bench_suite: cannot write {}: {e}", cli.out);
        std::process::exit(2);
    }
    eprintln!("bench_suite: report written to {}", cli.out);

    if let Some(path) = &cli.compare_path {
        let baseline = load_report(path);
        let fresh = parse_report(&text).expect("our own report parses");
        let outcome = compare(&baseline, &fresh);
        if report_outcome(path, &outcome) {
            std::process::exit(1);
        }
    }
}
