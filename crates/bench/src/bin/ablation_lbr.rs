//! LBR ablation (§6.2): how the accuracy of full-LBR accounting depends on
//! stack depth, and what happens when the LBR — "a valuable single
//! resource" — is collided with call-stack mode by another consumer.
//!
//! ```text
//! cargo run --release -p ct-bench --bin ablation_lbr [--scale F] [--repeats N]
//! ```

use countertrust::evaluate::evaluate_method;
use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::{fmt_error_pm, Table};
use countertrust::Session;
use ct_pmu::LbrMode;
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = ct_bench::CliOptions::parse(&args);
    let opts = MethodOptions::default();
    let kernels = ct_workloads::kernel_set(cli.scale);
    let apps = ct_workloads::applications(cli.scale * 0.5);
    let g4box = kernels.iter().find(|w| w.name == "g4box").unwrap();
    let fullcms = apps.iter().find(|w| w.name == "fullcms").unwrap();

    println!("LBR depth sweep (full-LBR method, Ivy Bridge, errors mean±sd)\n");
    let mut t = Table::new(
        "error vs LBR depth",
        vec![
            "workload".into(),
            "depth 4".into(),
            "depth 8".into(),
            "depth 16".into(),
            "depth 32".into(),
        ],
    );
    for w in [g4box, fullcms] {
        let mut row = vec![w.name.clone()];
        for depth in [4usize, 8, 16, 32] {
            let mut machine = MachineModel::ivy_bridge();
            machine.pmu.lbr_depth = depth;
            let inst = MethodKind::Lbr
                .instantiate(&machine, &opts)
                .expect("LBR method available on IVB");
            let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
            let cell = evaluate_method(&mut session, &inst, cli.repeats, cli.seed)
                .map(|s| fmt_error_pm(s.stats.mean, s.stats.std_dev))
                .unwrap_or_else(|e| format!("err: {e}"));
            row.push(cell);
        }
        t.push_row(row);
    }
    println!("{}", t.render());

    println!("Call-stack-mode collision (same method, LBR hijacked by a stack unwinder)\n");
    let mut t2 = Table::new(
        "error with LBR in ring vs call-stack mode",
        vec![
            "workload".into(),
            "ring (correct)".into(),
            "call-stack (collided)".into(),
        ],
    );
    let machine = MachineModel::ivy_bridge();
    for w in [g4box, fullcms] {
        let ring = MethodKind::Lbr.instantiate(&machine, &opts).unwrap();
        let mut collided = ring.clone();
        collided.config.lbr_mode = LbrMode::CallStack;
        let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
        let cell = |inst, session: &mut Session| {
            evaluate_method(session, inst, cli.repeats, cli.seed)
                .map(|s| fmt_error_pm(s.stats.mean, s.stats.std_dev))
                .unwrap_or_else(|e| format!("err: {e}"))
        };
        let a = cell(&ring, &mut session);
        let b = cell(&collided, &mut session);
        t2.push_row(vec![w.name.clone(), a, b]);
    }
    println!("{}", t2.render());
    println!(
        "expected shape: accuracy improves with depth (more segments per \
         sample); call-stack mode corrupts basic-block reconstruction, \
         motivating the paper's plea to move the IP+1 fix into hardware \
         rather than burning the shared LBR on it."
    );
}
