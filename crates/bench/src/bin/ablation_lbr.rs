//! LBR ablation (§6.2): how the accuracy of full-LBR accounting depends on
//! stack depth, and what happens when the LBR — "a valuable single
//! resource" — is collided with call-stack mode by another consumer.
//!
//! ```text
//! cargo run --release -p ct-bench --bin ablation_lbr \
//!     [--scale F] [--repeats N] [--seed N] [--threads N]
//! ```
//!
//! The depth sweep models each LBR depth as a distinct machine variant, so
//! all depth × workload cells fan out on the grid engine in parallel (one
//! shared reference profile per cell pair).

use countertrust::grid::GridMethod;
use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::{fmt_error_pm, Table};
use ct_bench::{grid_runner, workload_specs, CliOptions};
use ct_pmu::LbrMode;
use ct_sim::MachineModel;

const DEPTHS: [usize; 4] = [4, 8, 16, 32];

fn cell(eval: &countertrust::Evaluation, label: &str) -> String {
    eval.methods.iter().find(|s| s.method == label).map_or_else(
        || "err".to_string(),
        |s| fmt_error_pm(s.stats.mean, s.stats.std_dev),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CliOptions::parse(&args);
    let opts = MethodOptions::default();
    let kernels = ct_workloads::kernel_set(cli.scale);
    let apps = ct_workloads::applications(cli.scale * 0.5);
    let workloads: Vec<_> = kernels
        .into_iter()
        .filter(|w| w.name == "g4box")
        .chain(apps.into_iter().filter(|w| w.name == "fullcms"))
        .collect();
    assert_eq!(
        workloads.len(),
        2,
        "registry must provide g4box and fullcms"
    );
    let specs = workload_specs(&workloads);
    let runner = grid_runner(&cli);

    println!("LBR depth sweep (full-LBR method, Ivy Bridge, errors mean±sd)\n");
    let depth_machines: Vec<MachineModel> = DEPTHS
        .iter()
        .map(|&depth| {
            let mut machine = MachineModel::ivy_bridge();
            machine.pmu.lbr_depth = depth;
            machine.name = format!("{} (LBR depth {depth})", machine.name);
            machine
        })
        .collect();
    let depth_evals = runner.run(
        &depth_machines,
        &specs,
        |machine| {
            vec![GridMethod {
                label: "lbr".to_string(),
                instance: MethodKind::Lbr
                    .instantiate(machine, &opts)
                    .expect("LBR method available on IVB"),
            }]
        },
        cli.repeats,
        cli.seed,
    );
    let mut header = vec!["workload".to_string()];
    header.extend(DEPTHS.iter().map(|d| format!("depth {d}")));
    let mut t = Table::new("error vs LBR depth", header);
    for (w_idx, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name.clone()];
        for d_idx in 0..DEPTHS.len() {
            row.push(cell(&depth_evals[d_idx * workloads.len() + w_idx], "lbr"));
        }
        t.push_row(row);
    }
    println!("{}", t.render());

    println!("Call-stack-mode collision (same method, LBR hijacked by a stack unwinder)\n");
    let machines = [MachineModel::ivy_bridge()];
    let collision_evals = runner.run(
        &machines,
        &specs,
        |machine| {
            let ring = MethodKind::Lbr
                .instantiate(machine, &opts)
                .expect("LBR method available on IVB");
            let mut collided = ring.clone();
            collided.config.lbr_mode = LbrMode::CallStack;
            vec![
                GridMethod {
                    label: "ring".to_string(),
                    instance: ring,
                },
                GridMethod {
                    label: "call-stack".to_string(),
                    instance: collided,
                },
            ]
        },
        cli.repeats,
        cli.seed,
    );
    let mut t2 = Table::new(
        "error with LBR in ring vs call-stack mode",
        vec![
            "workload".into(),
            "ring (correct)".into(),
            "call-stack (collided)".into(),
        ],
    );
    for (eval, w) in collision_evals.iter().zip(&workloads) {
        t2.push_row(vec![
            w.name.clone(),
            cell(eval, "ring"),
            cell(eval, "call-stack"),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "expected shape: accuracy improves with depth (more segments per \
         sample); call-stack mode corrupts basic-block reconstruction, \
         motivating the paper's plea to move the IP+1 fix into hardware \
         rather than burning the shared LBR on it."
    );
}
