//! Regenerates the §5.2 FullCMS function-ranking experiment: "None of the
//! methods produces the top 10 functions from the FullCMS profile in the
//! right order."
//!
//! For every machine × method, compares the estimated top-10 function
//! ranking against the instrumented truth: exact-order match plus the
//! Kendall tau rank correlation.
//!
//! ```text
//! cargo run --release -p ct-bench --bin function_rank [--scale F] [--seed N]
//! ```

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::Table;
use countertrust::{kendall_tau, top_n_exact_match, Session};
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = ct_bench::CliOptions::parse(&args);
    let apps = ct_workloads::applications(cli.scale);
    let fullcms = apps
        .iter()
        .find(|w| w.name == "fullcms")
        .expect("registry has fullcms");
    let opts = MethodOptions::default();

    println!("FullCMS top-10 function ranking vs instrumented truth (§5.2)\n");
    let mut any_exact = false;
    for machine in MachineModel::paper_machines() {
        let mut session =
            Session::with_run_config(&machine, &fullcms.program, fullcms.run_config.clone());
        let truth: Vec<String> = session
            .reference()
            .expect("reference run")
            .function_ranking()
            .into_iter()
            .take(10)
            .map(|(n, _)| n)
            .collect();
        let mut t = Table::new(
            format!("machine: {}", machine.name),
            vec![
                "method".into(),
                "top-10 exact order".into(),
                "kendall tau".into(),
            ],
        );
        for kind in MethodKind::ALL {
            let Some(inst) = kind.instantiate(&machine, &opts) else {
                continue;
            };
            let run = match session.run_method(&inst, cli.seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: {kind:?}: {e}");
                    continue;
                }
            };
            let est = run.profile.top_functions(10);
            let exact = top_n_exact_match(&est, &truth, 10);
            any_exact |= exact;
            let tau = kendall_tau(&est, &truth);
            t.push_row(vec![
                kind.label().to_string(),
                if exact { "YES" } else { "no" }.to_string(),
                format!("{tau:.3}"),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "paper claim: no method recovers the exact top-10 order -> {}",
        if any_exact {
            "NOT reproduced (a method matched)"
        } else {
            "reproduced"
        }
    );
}
