//! Regenerates the §5.2 FullCMS function-ranking experiment: "None of the
//! methods produces the top 10 functions from the FullCMS profile in the
//! right order."
//!
//! For every machine × method, compares the estimated top-10 function
//! ranking against the instrumented truth: exact-order match plus the
//! Kendall tau rank correlation.
//!
//! ```text
//! cargo run --release -p ct-bench --bin function_rank \
//!     [--scale F] [--seed N] [--threads N]
//! ```
//!
//! Machines are evaluated in parallel on the grid engine; the reference
//! profile (and the truth ranking derived from it) is collected once per
//! machine and shared across all method runs.

use countertrust::grid::cell_seed;
use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::Table;
use countertrust::{kendall_tau, top_n_exact_match};
use ct_bench::{grid_runner, workload_specs, CliOptions};
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CliOptions::parse(&args);
    let apps = ct_workloads::applications(cli.scale);
    let fullcms: Vec<_> = apps
        .into_iter()
        .filter(|w| w.name == "fullcms")
        .collect();
    assert!(!fullcms.is_empty(), "registry has fullcms");
    let specs = workload_specs(&fullcms);
    let machines = MachineModel::paper_machines();
    let opts = MethodOptions::default();

    println!("FullCMS top-10 function ranking vs instrumented truth (§5.2)\n");
    let results = grid_runner(&cli).map_pairs(&machines, &specs, |ctx| {
        let truth: Vec<String> = ctx
            .reference
            .function_ranking()
            .into_iter()
            .take(10)
            .map(|(n, _)| n)
            .collect();
        let mut session = ctx.session();
        let mut rows = Vec::new();
        for (k, kind) in MethodKind::ALL.iter().enumerate() {
            let Some(inst) = kind.instantiate(ctx.machine, &opts) else {
                continue;
            };
            let seed = cell_seed(cli.seed, ctx.machine_index, ctx.workload_index, k, 0);
            let run = match session.run_method(&inst, seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: {kind:?} on {}: {e}", ctx.machine.name);
                    continue;
                }
            };
            let est = run.profile.top_functions(10);
            let exact = top_n_exact_match(&est, &truth, 10);
            let tau = kendall_tau(&est, &truth);
            rows.push((kind.label().to_string(), exact, tau));
        }
        rows
    });

    let mut any_exact = false;
    for (machine, rows) in machines.iter().zip(results) {
        let mut t = Table::new(
            format!("machine: {}", machine.name),
            vec![
                "method".into(),
                "top-10 exact order".into(),
                "kendall tau".into(),
            ],
        );
        for (label, exact, tau) in rows.unwrap_or_default() {
            any_exact |= exact;
            t.push_row(vec![
                label,
                if exact { "YES" } else { "no" }.to_string(),
                format!("{tau:.3}"),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "paper claim: no method recovers the exact top-10 order -> {}",
        if any_exact {
            "NOT reproduced (a method matched)"
        } else {
            "reproduced"
        }
    );
}
