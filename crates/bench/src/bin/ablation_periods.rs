//! Period-policy ablation (§6.1): sweeps the sampling period across
//! round/prime × fixed/randomized on the synchronization-prone kernels,
//! quantifying the resonance effect the paper's recommendations target
//! ("Prime number periods reduce the risk of synchronizing with the
//! workload, and randomization further improves results on artificial
//! kernels, but neither produced noticeable improvements on our large
//! benchmarks").
//!
//! ```text
//! cargo run --release -p ct-bench --bin ablation_periods [--scale F] [--repeats N]
//! ```

use countertrust::evaluate::evaluate_method;
use countertrust::methods::{Attribution, MethodInstance, MethodKind, MethodOptions};
use countertrust::report::{fmt_error_pm, Table};
use countertrust::Session;
use ct_isa::prime::next_prime;
use ct_pmu::{PeriodSpec, PmuEvent, Precision, Randomization, SamplerConfig};
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = ct_bench::CliOptions::parse(&args);
    let machine = MachineModel::ivy_bridge();
    // One resonance-prone kernel and one application for contrast.
    let kernels = ct_workloads::kernel_set(cli.scale);
    let mut apps = ct_workloads::applications(cli.scale * 0.5);
    let latency = kernels.iter().find(|w| w.name == "latency_biased").unwrap();
    let omnetpp_pos = apps.iter().position(|w| w.name == "omnetpp").unwrap();
    let omnetpp = apps.swap_remove(omnetpp_pos);

    let base_periods: [u64; 4] = [1_000, 2_000, 4_000, 8_000];
    println!(
        "Period-policy ablation on {} (PDIR event, errors mean±sd)\n",
        machine.name
    );

    for w in [latency, &omnetpp] {
        let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
        let mut t = Table::new(
            format!("workload: {}", w.name),
            vec![
                "nominal period".into(),
                "round fixed".into(),
                "round randomized".into(),
                "prime fixed".into(),
                "prime randomized".into(),
            ],
        );
        for base in base_periods {
            let prime = next_prime(base);
            let cell = |nominal: u64, randomization: Randomization, session: &mut Session| {
                let inst = MethodInstance {
                    kind: MethodKind::Precise,
                    config: SamplerConfig::new(
                        PmuEvent::InstRetiredPrecDist,
                        Precision::Pdir,
                        PeriodSpec {
                            nominal,
                            randomization,
                        },
                    ),
                    attribution: Attribution::Plain,
                };
                evaluate_method(session, &inst, cli.repeats, cli.seed)
                    .map(|s| fmt_error_pm(s.stats.mean, s.stats.std_dev))
                    .unwrap_or_else(|e| format!("err: {e}"))
            };
            let soft = Randomization::Software {
                bits: MethodOptions::default().rand_bits,
            };
            t.push_row(vec![
                base.to_string(),
                cell(base, Randomization::None, &mut session),
                cell(base, soft, &mut session),
                cell(prime, Randomization::None, &mut session),
                cell(prime, soft, &mut session),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape: round-fixed is far worse than prime on the kernel \
         (resonance), while all four policies are equivalent on the application."
    );
}
