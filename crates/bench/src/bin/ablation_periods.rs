//! Period-policy ablation (§6.1): sweeps the sampling period across
//! round/prime × fixed/randomized on the synchronization-prone kernels,
//! quantifying the resonance effect the paper's recommendations target
//! ("Prime number periods reduce the risk of synchronizing with the
//! workload, and randomization further improves results on artificial
//! kernels, but neither produced noticeable improvements on our large
//! benchmarks").
//!
//! ```text
//! cargo run --release -p ct-bench --bin ablation_periods \
//!     [--scale F] [--repeats N] [--seed N] [--threads N]
//! ```
//!
//! The 2 workloads × 16 period policies fan out on the grid engine as
//! independent cells sharing one reference profile per workload.

use countertrust::grid::GridMethod;
use countertrust::methods::{Attribution, MethodInstance, MethodKind, MethodOptions};
use countertrust::report::{fmt_error_pm, Table};
use ct_bench::{grid_runner, workload_specs, CliOptions};
use ct_isa::prime::next_prime;
use ct_pmu::{PeriodSpec, PmuEvent, Precision, Randomization, SamplerConfig};
use ct_sim::MachineModel;

const BASE_PERIODS: [u64; 4] = [1_000, 2_000, 4_000, 8_000];
const POLICIES: [&str; 4] = [
    "round fixed",
    "round randomized",
    "prime fixed",
    "prime randomized",
];

fn policy_spec(base: u64, policy: &str) -> PeriodSpec {
    let soft = Randomization::Software {
        bits: MethodOptions::default().rand_bits,
    };
    let (nominal, randomization) = match policy {
        "round fixed" => (base, Randomization::None),
        "round randomized" => (base, soft),
        "prime fixed" => (next_prime(base), Randomization::None),
        "prime randomized" => (next_prime(base), soft),
        other => unreachable!("unknown policy {other}"),
    };
    PeriodSpec {
        nominal,
        randomization,
    }
}

fn cell_label(base: u64, policy: &str) -> String {
    format!("{policy} @{base}")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CliOptions::parse(&args);
    let machines = [MachineModel::ivy_bridge()];
    // One resonance-prone kernel and one application for contrast.
    let kernels = ct_workloads::kernel_set(cli.scale);
    let apps = ct_workloads::applications(cli.scale * 0.5);
    let workloads: Vec<_> = kernels
        .into_iter()
        .filter(|w| w.name == "latency_biased")
        .chain(apps.into_iter().filter(|w| w.name == "omnetpp"))
        .collect();
    assert_eq!(
        workloads.len(),
        2,
        "registry must provide latency_biased and omnetpp"
    );
    let specs = workload_specs(&workloads);

    println!(
        "Period-policy ablation on {} (PDIR event, errors mean±sd)\n",
        machines[0].name
    );
    let evals = grid_runner(&cli).run(
        &machines,
        &specs,
        |_machine| {
            let mut methods = Vec::new();
            for base in BASE_PERIODS {
                for policy in POLICIES {
                    methods.push(GridMethod {
                        label: cell_label(base, policy),
                        instance: MethodInstance {
                            kind: MethodKind::Precise,
                            config: SamplerConfig::new(
                                PmuEvent::InstRetiredPrecDist,
                                Precision::Pdir,
                                policy_spec(base, policy),
                            ),
                            attribution: Attribution::Plain,
                        },
                    });
                }
            }
            methods
        },
        cli.repeats,
        cli.seed,
    );

    for (eval, w) in evals.iter().zip(&workloads) {
        let mut header = vec!["nominal period".to_string()];
        header.extend(POLICIES.iter().map(ToString::to_string));
        let mut t = Table::new(format!("workload: {}", w.name), header);
        for base in BASE_PERIODS {
            let mut row = vec![base.to_string()];
            for policy in POLICIES {
                let label = cell_label(base, policy);
                let cell = eval.methods.iter().find(|s| s.method == label).map_or_else(
                    || "err".to_string(),
                    |s| fmt_error_pm(s.stats.mean, s.stats.std_dev),
                );
                row.push(cell);
            }
            t.push_row(row);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape: round-fixed is far worse than prime on the kernel \
         (resonance), while all four policies are equivalent on the application."
    );
}
