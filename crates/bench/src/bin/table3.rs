//! Regenerates **Table 3**: the overview of reviewed sampling methods —
//! per machine, the concrete event, mechanism, period policy and
//! attribution of every method family.
//!
//! ```text
//! cargo run --release -p ct-bench --bin table3 [--threads N]
//! ```
//!
//! Table 3 is static (method taxonomy, no sampling runs), so there is
//! nothing to fan out; the shared CLI flags are still accepted for
//! interface uniformity with the other binaries.

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::report::Table;
use ct_bench::CliOptions;
use ct_pmu::Randomization;
use ct_sim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _cli = CliOptions::parse(&args);
    let opts = MethodOptions::default();
    println!("Table 3: an overview of reviewed sampling methods\n");
    for machine in MachineModel::paper_machines() {
        let mut t = Table::new(
            format!("machine: {}", machine.name),
            vec![
                "method".into(),
                "event".into(),
                "mechanism".into(),
                "period".into(),
                "randomization".into(),
                "attribution".into(),
                "comment".into(),
            ],
        );
        for kind in MethodKind::ALL {
            match kind.instantiate(&machine, &opts) {
                Some(inst) => {
                    let rand = match inst.config.period.randomization {
                        Randomization::None => "no".to_string(),
                        Randomization::Software { bits } => format!("software ±2^{bits}"),
                        Randomization::HardwareLsb { bits } => format!("hardware {bits} LSB"),
                    };
                    t.push_row(vec![
                        kind.label().to_string(),
                        inst.config.event.vendor_name().to_string(),
                        format!("{:?}", inst.config.precision),
                        inst.config.period.nominal.to_string(),
                        rand,
                        format!("{:?}", inst.attribution),
                        kind.description().to_string(),
                    ]);
                }
                None => {
                    t.push_row(vec![
                        kind.label().to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "not available on this machine".into(),
                    ]);
                }
            }
        }
        println!("{}", t.render());
    }
}
