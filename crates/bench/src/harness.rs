//! The tracked perf harness behind `bench_suite` and `BENCH_<n>.json`.
//!
//! Every scenario in the fixed [`MATRIX`] runs in two phases:
//!
//! * a **determinism probe** — a small, pinned configuration (one worker
//!   thread, fast method options, fixed seed and request count) whose
//!   response bytes are hashed and whose instrumented reference builds
//!   are counted under [`ct_instrument::CollectionAudit`]. The probe
//!   config is *identical* in `--smoke` and full runs, so a smoke run in
//!   CI can verify the determinism fingerprint of the checked-in full
//!   report: if an "optimization" changes a single response byte or
//!   builds a reference twice, the fingerprint moves and the comparison
//!   hard-fails.
//! * a **measurement** — a larger configuration timed for throughput and
//!   latency percentiles. Timing numbers are tracked PR over PR (the
//!   `BENCH_<n>.json` trajectory) but never gate CI: wall-clock on shared
//!   runners is advisory, bytes are not.
//!
//! The emitted report is plain JSON (vendored `serde_json`), one file per
//! PR at the repo root. [`compare`] diffs two reports: perf deltas are
//! printed when the measurement fingerprints match (full run vs full
//! run), while determinism fingerprints are compared whenever the probe
//! fingerprints match — across smoke and full modes.

use countertrust::cache::{AdmissionPolicy, CacheQuotas};
use countertrust::grid::{GridRunner, WorkloadSpec};
use countertrust::methods::MethodOptions;
use countertrust::serve::net::{exchange, EvalServer, NetOptions};
use countertrust::serve::proto::exchange_v2;
use countertrust::serve::{
    Catalog, CatalogRegistry, EvalRequest, EvalService, FairnessPolicy, PipelineOptions,
};
use ct_instrument::CollectionAudit;
use ct_sim::MachineModel;
use ct_workloads::Workload;
use serde::Value;
use std::time::Instant;

use crate::streams::{
    percentile, to_wire, StreamConfig, StreamGenerator, StreamPattern, MIXED_COLD_CATALOG,
};
use crate::workload_specs;

/// Report version — the `<n>` of `BENCH_<n>.json`, bumped when a PR
/// regenerates the tracked report.
pub const BENCH_VERSION: u64 = 10;

/// File name of the tracked report at the repo root.
pub const BENCH_FILE: &str = "BENCH_10.json";

/// The fixed scenario matrix, in execution (and report) order.
pub const MATRIX: [&str; 8] = [
    "grid_sweep",
    "serve_batched",
    "serve_pipelined",
    "tcp_loopback",
    "v2_loopback",
    "mixed_tenant_zipfian",
    "warm_start",
    "sim_replay",
];

/// Harness-wide knobs (everything else is pinned per scenario).
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Smoke mode: identical probes, miniature measurements.
    pub smoke: bool,
    /// Base seed for stream generation and grid runs.
    pub seed: u64,
    /// Worker threads for the *measurement* phase (`0` = available
    /// parallelism). Probes always run single-threaded.
    pub threads: usize,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            seed: 1_000,
            threads: 0,
        }
    }
}

/// The determinism fingerprint of one scenario: everything here must be
/// bit-identical run over run, machine over machine, PR over PR (unless
/// semantics deliberately change).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Determinism {
    /// FNV-1a over the probe's response bytes (JSONL for serving
    /// scenarios, the report JSON for the grid sweep).
    pub response_hash: u64,
    /// Instrumented reference executions during the probe, per
    /// [`CollectionAudit`] — ≤ 1 per distinct pair, or the cache leaks
    /// work.
    pub reference_builds: u64,
    /// Probe request (or grid-cell) count, fixing the denominator.
    pub requests: u64,
}

/// Timing results of the measurement phase.
#[derive(Debug, Clone)]
pub struct Measure {
    pub requests: u64,
    pub elapsed_s: f64,
    pub throughput_rps: f64,
    /// Batch-completion latency percentiles, milliseconds; `None` for
    /// scenarios without per-batch timings (pipelined/TCP/grid).
    pub p50_ms: Option<f64>,
    pub p99_ms: Option<f64>,
    /// Service-level cache hit rate; `None` for the grid sweep (its
    /// sharing is per-pair reference reuse, not a serving cache).
    pub cache_hit_rate: Option<f64>,
    pub cache_hits: u64,
    pub builds: u64,
}

/// One scenario's full result: pinned probe + timed measurement, each
/// with the config that produced it.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    pub name: &'static str,
    /// Probe config as ordered `key=value` pairs (goes into the report
    /// and into the probe fingerprint).
    pub probe_config: Vec<(&'static str, String)>,
    pub determinism: Determinism,
    pub measure_config: Vec<(&'static str, String)>,
    pub measure: Measure,
}

impl ScenarioResult {
    /// Fingerprint of the probe configuration (not its results): two
    /// reports are determinism-comparable iff these match.
    #[must_use]
    pub fn probe_fingerprint(&self) -> u64 {
        fingerprint_config(self.name, &self.probe_config)
    }

    /// Fingerprint of the measurement configuration: perf deltas are
    /// only meaningful between equal measurement configs.
    #[must_use]
    pub fn measure_fingerprint(&self) -> u64 {
        fingerprint_config(self.name, &self.measure_config)
    }
}

// --- hashing ---------------------------------------------------------------

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint_config(name: &str, config: &[(&'static str, String)]) -> u64 {
    let mut text = String::from(name);
    for (k, v) in config {
        text.push(';');
        text.push_str(k);
        text.push('=');
        text.push_str(v);
    }
    fnv1a(text.as_bytes())
}

fn hex(h: u64) -> String {
    format!("0x{h:016x}")
}

// --- scenario plumbing -----------------------------------------------------

/// Probe constants, shared by every scenario and **identical across smoke
/// and full runs** — this is what makes smoke-vs-full fingerprint
/// comparison sound.
const PROBE_SCALE: f64 = 0.01;
const PROBE_REQUESTS: usize = 24;
const PROBE_BATCH: usize = 8;

struct Fixture {
    machines: Vec<MachineModel>,
    workloads: Vec<Workload>,
    opts: MethodOptions,
}

impl Fixture {
    fn probe() -> Self {
        Self {
            machines: MachineModel::paper_machines(),
            workloads: ct_workloads::kernel_set(PROBE_SCALE),
            opts: MethodOptions::fast(),
        }
    }

    fn measure(opts: &HarnessOptions) -> Self {
        // Measurement uses the same catalog shape at the same scale: the
        // interesting load is request volume and thread count, not
        // program size, and a small scale keeps the suite re-runnable.
        let _ = opts;
        Self::probe()
    }

    fn specs(&self) -> Vec<WorkloadSpec<'_>> {
        workload_specs(&self.workloads)
    }
}

fn build_service<'a>(
    pattern: StreamPattern,
    machines: &'a [MachineModel],
    specs: &'a [WorkloadSpec<'a>],
    opts: &MethodOptions,
    threads: usize,
    capacity: usize,
    admission: AdmissionPolicy,
    quota: usize,
) -> EvalService {
    let catalog = || Catalog::new(machines, specs).method_options(opts.clone());
    let mut registry = CatalogRegistry::new(catalog());
    if pattern.is_multi_tenant() {
        registry = registry.register(MIXED_COLD_CATALOG, catalog());
    }
    EvalService::with_registry(registry)
        .threads(threads)
        .cache_capacity(capacity)
        .admission(admission)
        .cache_quotas(CacheQuotas::per_catalog(quota))
}

/// Generates a stream with the pinned probe parameters for `pattern`.
fn probe_stream(fixture: &Fixture, pattern: StreamPattern, seed: u64) -> Vec<EvalRequest> {
    StreamGenerator::new(
        &fixture.machines,
        &fixture.workloads,
        &fixture.opts,
        &StreamConfig {
            pattern,
            requests: PROBE_REQUESTS,
            seed,
            runs: 1,
        },
    )
    .take(PROBE_REQUESTS)
}

/// Runs `serve` under a collection audit with a single-threaded service
/// and returns the scenario's determinism fingerprint.
fn probe_serve(
    service: &EvalService,
    serve: impl FnOnce(&EvalService) -> String,
) -> Determinism {
    let audit = CollectionAudit::begin();
    let jsonl = serve(service);
    Determinism {
        response_hash: fnv1a(jsonl.as_bytes()),
        reference_builds: audit.collections() as u64,
        requests: PROBE_REQUESTS as u64,
    }
}

fn measure_requests(opts: &HarnessOptions, full: usize) -> usize {
    if opts.smoke {
        PROBE_REQUESTS
    } else {
        full
    }
}

fn serve_batched_jsonl(
    service: &EvalService,
    requests: &[EvalRequest],
    batch: usize,
) -> (String, Vec<f64>) {
    let mut jsonl = String::new();
    let mut latencies_ms = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch) {
        let t = Instant::now();
        jsonl.push_str(&service.serve_jsonl(chunk));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        latencies_ms.extend(std::iter::repeat(ms).take(chunk.len()));
    }
    (jsonl, latencies_ms)
}

fn serve_pipelined_jsonl(
    service: &EvalService,
    requests: &[EvalRequest],
    options: &PipelineOptions,
) -> String {
    let wire = to_wire(requests);
    let mut out = Vec::new();
    let stats = service
        .serve_pipelined(wire.as_bytes(), &mut out, options)
        .expect("in-memory pipeline never hits I/O errors");
    assert_eq!(stats.parse_errors, 0, "generated streams are well-formed");
    String::from_utf8(out).expect("responses are UTF-8")
}

fn measure_from_service(
    service: &EvalService,
    requests: u64,
    elapsed_s: f64,
    latencies_ms: &mut Vec<f64>,
) -> Measure {
    let stats = service.stats();
    latencies_ms.sort_by(f64::total_cmp);
    Measure {
        requests,
        elapsed_s,
        throughput_rps: requests as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(latencies_ms, 0.50),
        p99_ms: percentile(latencies_ms, 0.99),
        cache_hit_rate: Some(stats.hit_rate()),
        cache_hits: stats.cache_hits,
        builds: stats.builds,
    }
}

fn stream_config_pairs(
    pattern: StreamPattern,
    requests: usize,
    seed: u64,
    threads: &str,
) -> Vec<(&'static str, String)> {
    vec![
        ("pattern", pattern.name().to_string()),
        ("requests", requests.to_string()),
        ("seed", seed.to_string()),
        ("runs", "1".to_string()),
        ("scale", PROBE_SCALE.to_string()),
        ("opts", "fast".to_string()),
        ("threads", threads.to_string()),
    ]
}

// --- the scenarios ---------------------------------------------------------

fn scenario_grid_sweep(opts: &HarnessOptions, log: &mut dyn FnMut(&str)) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    // Probe: single-threaded standard grid over the kernel set; the
    // response bytes are the report JSON (stdout of `table1 --json`).
    let probe_config = vec![
        ("grid", "kernels".to_string()),
        ("repeats", "1".to_string()),
        ("seed", opts.seed.to_string()),
        ("scale", PROBE_SCALE.to_string()),
        ("opts", "fast".to_string()),
        ("threads", "1".to_string()),
    ];
    let audit = CollectionAudit::begin();
    let evals = GridRunner::new().threads(1).run_standard(
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        opts.seed,
    );
    let probe_cells = evals.len() as u64;
    let determinism = Determinism {
        response_hash: fnv1a(countertrust::report::to_json(&evals).as_bytes()),
        reference_builds: audit.collections() as u64,
        requests: probe_cells,
    };

    // Measurement: the same grid with production repeats, all workloads,
    // and the configured thread count — the simulator-bound inner loop.
    let m_fixture = Fixture::measure(opts);
    let m_workloads = if opts.smoke {
        m_fixture.workloads.clone()
    } else {
        ct_workloads::all(PROBE_SCALE)
    };
    let m_specs = workload_specs(&m_workloads);
    let repeats = if opts.smoke { 1 } else { crate::REPEATS };
    let measure_config = vec![
        ("grid", if opts.smoke { "kernels" } else { "all" }.to_string()),
        ("repeats", repeats.to_string()),
        ("seed", opts.seed.to_string()),
        ("scale", PROBE_SCALE.to_string()),
        ("opts", "fast".to_string()),
        ("threads", opts.threads.to_string()),
    ];
    let wall = Instant::now();
    let m_evals = GridRunner::new().threads(opts.threads).run_standard(
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        repeats,
        opts.seed,
    );
    let elapsed = wall.elapsed().as_secs_f64();
    let cells = m_evals.len() as u64;
    log(&format!(
        "grid_sweep: {cells} cells in {elapsed:.3} s ({:.1} cells/s)",
        cells as f64 / elapsed.max(1e-9)
    ));
    ScenarioResult {
        name: "grid_sweep",
        probe_config,
        determinism,
        measure_config,
        measure: Measure {
            requests: cells,
            elapsed_s: elapsed,
            throughput_rps: cells as f64 / elapsed.max(1e-9),
            p50_ms: None,
            p99_ms: None,
            cache_hit_rate: None,
            cache_hits: 0,
            builds: 0,
        },
    }
}

fn scenario_serve_batched(opts: &HarnessOptions, log: &mut dyn FnMut(&str)) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    let probe_requests = probe_stream(&fixture, StreamPattern::Hot, opts.seed);
    let probe_config = stream_config_pairs(StreamPattern::Hot, PROBE_REQUESTS, opts.seed, "1");
    let service = build_service(
        StreamPattern::Hot,
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let determinism = probe_serve(&service, |s| {
        serve_batched_jsonl(s, &probe_requests, PROBE_BATCH).0
    });

    // Measurement: a hot stream against the unbounded cache — after the
    // first few builds this is almost pure cache-hit traffic, i.e. the
    // `ProfileCache` lock is the bottleneck at high thread counts.
    let n = measure_requests(opts, 4_000);
    let batch = 64;
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Hot, n, opts.seed, "auto");
        c.push(("batch", batch.to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Hot,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = build_service(
        StreamPattern::Hot,
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        opts.threads,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let wall = Instant::now();
    let (_, mut latencies) = serve_batched_jsonl(&m_service, &stream, batch);
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&m_service, n as u64, elapsed, &mut latencies);
    log(&format!(
        "serve_batched: {n} requests in {elapsed:.3} s ({:.0} req/s, {:.1}% hits)",
        measure.throughput_rps,
        measure.cache_hit_rate.unwrap_or(0.0) * 100.0
    ));
    ScenarioResult {
        name: "serve_batched",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

fn scenario_serve_pipelined(
    opts: &HarnessOptions,
    shared_probe: &[EvalRequest],
    log: &mut dyn FnMut(&str),
) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    let pipeline = PipelineOptions::new().depth(4).chunk(PROBE_BATCH);
    let probe_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, PROBE_REQUESTS, opts.seed, "1");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", PROBE_BATCH.to_string()));
        c
    };
    let service = build_service(
        StreamPattern::Zipfian,
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let determinism = probe_serve(&service, |s| {
        serve_pipelined_jsonl(s, shared_probe, &pipeline)
    });

    let n = measure_requests(opts, 3_000);
    let m_pipeline = PipelineOptions::new().depth(4).chunk(64);
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, n, opts.seed, "auto");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", "64".to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Zipfian,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = build_service(
        StreamPattern::Zipfian,
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        opts.threads,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let wall = Instant::now();
    let _ = serve_pipelined_jsonl(&m_service, &stream, &m_pipeline);
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&m_service, n as u64, elapsed, &mut Vec::new());
    log(&format!(
        "serve_pipelined: {n} requests in {elapsed:.3} s ({:.0} req/s)",
        measure.throughput_rps
    ));
    ScenarioResult {
        name: "serve_pipelined",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

fn scenario_tcp_loopback(
    opts: &HarnessOptions,
    shared_probe: &[EvalRequest],
    log: &mut dyn FnMut(&str),
) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    let pipeline = PipelineOptions::new().depth(4).chunk(PROBE_BATCH);
    let probe_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, PROBE_REQUESTS, opts.seed, "1");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", PROBE_BATCH.to_string()));
        c.push(("connections", "1".to_string()));
        c
    };
    // Probe: one connection against our own listener; the stream is the
    // SAME zipfian stream the pipelined scenario probed, so the two
    // scenarios' response hashes must be equal — transport may not
    // change bytes.
    let served = build_service(
        StreamPattern::Zipfian,
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let audit = CollectionAudit::begin();
    let server = EvalServer::listen(
        "127.0.0.1:0",
        NetOptions::new().pipeline(pipeline).max_connections(1),
    )
    .expect("loopback listener binds");
    let local = server.local_addr();
    let handle = server.handle();
    let wire = to_wire(shared_probe);
    let response = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&served));
        let got = exchange(local, &wire).expect("loopback exchange");
        handle.shutdown();
        serving.join().expect("server thread").expect("accept loop");
        got
    });
    let determinism = Determinism {
        response_hash: fnv1a(response.as_bytes()),
        reference_builds: audit.collections() as u64,
        requests: PROBE_REQUESTS as u64,
    };

    // Measurement: several concurrent connections, round-robin split.
    let n = measure_requests(opts, 2_000);
    let connections = if opts.smoke { 2 } else { 4 };
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, n, opts.seed, "auto");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", "64".to_string()));
        c.push(("connections", connections.to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Zipfian,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = build_service(
        StreamPattern::Zipfian,
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        opts.threads,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let m_server = EvalServer::listen(
        "127.0.0.1:0",
        NetOptions::new()
            .pipeline(PipelineOptions::new().depth(4).chunk(64))
            .max_connections(connections),
    )
    .expect("loopback listener binds");
    let m_local = m_server.local_addr();
    let m_handle = m_server.handle();
    let subs: Vec<String> = (0..connections)
        .map(|c| to_wire(&stream.iter().skip(c).step_by(connections).cloned().collect::<Vec<_>>()))
        .collect();
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| m_server.serve(&m_service));
        let clients: Vec<_> = subs
            .iter()
            .map(|wire| scope.spawn(move || exchange(m_local, wire).expect("loopback exchange")))
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        m_handle.shutdown();
        serving.join().expect("server thread").expect("accept loop");
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&m_service, n as u64, elapsed, &mut Vec::new());
    log(&format!(
        "tcp_loopback: {n} requests over {connections} connections in {elapsed:.3} s \
         ({:.0} req/s)",
        measure.throughput_rps
    ));
    ScenarioResult {
        name: "tcp_loopback",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

fn scenario_v2_loopback(
    opts: &HarnessOptions,
    shared_probe: &[EvalRequest],
    log: &mut dyn FnMut(&str),
) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    let pipeline = PipelineOptions::new().depth(4).chunk(PROBE_BATCH);
    let probe_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, PROBE_REQUESTS, opts.seed, "1");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", PROBE_BATCH.to_string()));
        c.push(("proto", "v2".to_string()));
        c.push(("streams", "1".to_string()));
        c
    };
    // Probe: the SAME shared zipfian stream as the pipelined and v1 TCP
    // probes, carried as a single logical stream on one keep-alive v2
    // connection — the response hash must equal both of theirs, because
    // neither transport nor framing may change bytes.
    let served = build_service(
        StreamPattern::Zipfian,
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let audit = CollectionAudit::begin();
    let server = EvalServer::listen(
        "127.0.0.1:0",
        NetOptions::new().pipeline(pipeline).max_connections(1),
    )
    .expect("loopback listener binds");
    let local = server.local_addr();
    let handle = server.handle();
    let wire = to_wire(shared_probe);
    let response = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&served));
        let got = exchange_v2(local, std::slice::from_ref(&wire)).expect("v2 loopback exchange");
        handle.shutdown();
        serving.join().expect("server thread").expect("accept loop");
        got.into_iter().next().expect("one stream, one response")
    });
    let determinism = Determinism {
        response_hash: fnv1a(response.as_bytes()),
        reference_builds: audit.collections() as u64,
        requests: PROBE_REQUESTS as u64,
    };

    // Measurement: one keep-alive connection multiplexing several logical
    // streams — the v2 counterpart of tcp_loopback's N connections, so
    // the two scenarios' throughput lines compare connection-per-stream
    // against multiplexed framing on the same stream shape.
    let n = measure_requests(opts, 2_000);
    let streams = if opts.smoke { 2 } else { 4 };
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, n, opts.seed, "auto");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", "64".to_string()));
        c.push(("proto", "v2".to_string()));
        c.push(("streams", streams.to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Zipfian,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = build_service(
        StreamPattern::Zipfian,
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        opts.threads,
        0,
        AdmissionPolicy::Lru,
        0,
    );
    let m_server = EvalServer::listen(
        "127.0.0.1:0",
        NetOptions::new()
            .pipeline(PipelineOptions::new().depth(4).chunk(64))
            .max_connections(1),
    )
    .expect("loopback listener binds");
    let m_local = m_server.local_addr();
    let m_handle = m_server.handle();
    let wires: Vec<String> = (0..streams)
        .map(|c| to_wire(&stream.iter().skip(c).step_by(streams).cloned().collect::<Vec<_>>()))
        .collect();
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| m_server.serve(&m_service));
        exchange_v2(m_local, &wires).expect("v2 loopback exchange");
        m_handle.shutdown();
        serving.join().expect("server thread").expect("accept loop");
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&m_service, n as u64, elapsed, &mut Vec::new());
    log(&format!(
        "v2_loopback: {n} requests over {streams} multiplexed streams in {elapsed:.3} s \
         ({:.0} req/s)",
        measure.throughput_rps
    ));
    ScenarioResult {
        name: "v2_loopback",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

fn scenario_mixed_tenant(opts: &HarnessOptions, log: &mut dyn FnMut(&str)) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    // The full fairness stack: bounded cache, frequency admission,
    // per-tenant quotas, weighted scheduling. Single-threaded probes are
    // still deterministic under all of them.
    let capacity = 16;
    let quota = 6;
    let pipeline = PipelineOptions::new()
        .depth(2)
        .chunk(PROBE_BATCH)
        .fairness(FairnessPolicy::Weighted);
    let probe_config = {
        let mut c = stream_config_pairs(StreamPattern::Mixed, PROBE_REQUESTS, opts.seed, "1");
        c.push(("capacity", capacity.to_string()));
        c.push(("quota", quota.to_string()));
        c.push(("admission", "freq".to_string()));
        c.push(("fairness", "weighted".to_string()));
        c.push(("depth", "2".to_string()));
        c.push(("chunk", PROBE_BATCH.to_string()));
        c
    };
    let probe_requests = probe_stream(&fixture, StreamPattern::Mixed, opts.seed);
    let service = build_service(
        StreamPattern::Mixed,
        &fixture.machines,
        &specs,
        &fixture.opts,
        1,
        capacity,
        AdmissionPolicy::Frequency,
        quota,
    );
    let determinism = probe_serve(&service, |s| {
        serve_pipelined_jsonl(s, &probe_requests, &pipeline)
    });

    let n = measure_requests(opts, 2_500);
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Mixed, n, opts.seed, "auto");
        c.push(("capacity", capacity.to_string()));
        c.push(("quota", quota.to_string()));
        c.push(("admission", "freq".to_string()));
        c.push(("fairness", "weighted".to_string()));
        c.push(("depth", "2".to_string()));
        c.push(("chunk", "64".to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Mixed,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = build_service(
        StreamPattern::Mixed,
        &m_fixture.machines,
        &m_specs,
        &m_fixture.opts,
        opts.threads,
        capacity,
        AdmissionPolicy::Frequency,
        quota,
    );
    let m_pipeline = PipelineOptions::new()
        .depth(2)
        .chunk(64)
        .fairness(FairnessPolicy::Weighted);
    let wall = Instant::now();
    let _ = serve_pipelined_jsonl(&m_service, &stream, &m_pipeline);
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&m_service, n as u64, elapsed, &mut Vec::new());
    log(&format!(
        "mixed_tenant_zipfian: {n} requests in {elapsed:.3} s ({:.0} req/s, {:.1}% hits)",
        measure.throughput_rps,
        measure.cache_hit_rate.unwrap_or(0.0) * 100.0
    ));
    ScenarioResult {
        name: "mixed_tenant_zipfian",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

fn scenario_warm_start(
    opts: &HarnessOptions,
    shared_probe: &[EvalRequest],
    log: &mut dyn FnMut(&str),
) -> ScenarioResult {
    let fixture = Fixture::probe();
    let specs = fixture.specs();
    // A fresh scratch directory per run; it is deliberately NOT part of
    // either config fingerprint — the fingerprint pins the warm-start
    // *semantics* (same stream, snapshot-backed restart), not where the
    // snapshot bytes happen to live this run.
    let dir = std::env::temp_dir().join(format!(
        "ctstore_warm_{}_{}",
        std::process::id(),
        opts.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let pipeline = PipelineOptions::new().depth(4).chunk(PROBE_BATCH);
    let probe_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, PROBE_REQUESTS, opts.seed, "1");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", PROBE_BATCH.to_string()));
        c.push(("snapshot", "warm".to_string()));
        c
    };
    let probe_service = || {
        let s = build_service(
            StreamPattern::Zipfian,
            &fixture.machines,
            &specs,
            &fixture.opts,
            1,
            0,
            AdmissionPolicy::Lru,
            0,
        );
        s.attach_snapshot_dir(&dir);
        s
    };
    // Cold pass (unaudited): a throwaway service fills the snapshot
    // directory via write-behind, then dies — a server shutting down.
    let _ = serve_pipelined_jsonl(&probe_service(), shared_probe, &pipeline);
    // Warm probe: a FRESH service on the same directory replays the
    // SAME zipfian stream the pipelined/TCP/v2 probes hashed. The
    // audited build count must be 0 (a warm restart re-runs nothing
    // instrumented) and the response hash must equal theirs (the store
    // may not change bytes) — both pinned by `run_suite`'s asserts and
    // then PR over PR by the report comparison.
    let determinism = probe_serve(&probe_service(), |s| {
        serve_pipelined_jsonl(s, shared_probe, &pipeline)
    });

    // Measurement: warm-replay throughput — the serving rate a restarted
    // server sustains when every reference profile loads from disk
    // instead of being re-collected. The unaudited filler pass first
    // snapshots any pair the probe stream never touched.
    let n = measure_requests(opts, 3_000);
    let m_pipeline = PipelineOptions::new().depth(4).chunk(64);
    let measure_config = {
        let mut c = stream_config_pairs(StreamPattern::Zipfian, n, opts.seed, "auto");
        c.push(("depth", "4".to_string()));
        c.push(("chunk", "64".to_string()));
        c.push(("snapshot", "warm".to_string()));
        c
    };
    let m_fixture = Fixture::measure(opts);
    let m_specs = m_fixture.specs();
    let stream = StreamGenerator::new(
        &m_fixture.machines,
        &m_fixture.workloads,
        &m_fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Zipfian,
            requests: n,
            seed: opts.seed,
            runs: 1,
        },
    )
    .take(n);
    let m_service = || {
        let s = build_service(
            StreamPattern::Zipfian,
            &m_fixture.machines,
            &m_specs,
            &m_fixture.opts,
            opts.threads,
            0,
            AdmissionPolicy::Lru,
            0,
        );
        s.attach_snapshot_dir(&dir);
        s
    };
    let _ = serve_pipelined_jsonl(&m_service(), &stream, &m_pipeline);
    let warm = m_service();
    let wall = Instant::now();
    let _ = serve_pipelined_jsonl(&warm, &stream, &m_pipeline);
    let elapsed = wall.elapsed().as_secs_f64();
    let measure = measure_from_service(&warm, n as u64, elapsed, &mut Vec::new());
    let snapshot_hits = warm.cache_stats().snapshot_hits;
    let _ = std::fs::remove_dir_all(&dir);
    log(&format!(
        "warm_start: {n} requests warm-replayed in {elapsed:.3} s ({:.0} req/s, \
         {snapshot_hits} snapshot loads)",
        measure.throughput_rps
    ));
    ScenarioResult {
        name: "warm_start",
        probe_config,
        determinism,
        measure_config,
        measure,
    }
}

/// One retained-`Cpu` replay pass over every machine × kernel pair,
/// appending each run's full [`ct_sim::RunSummary`] to `digest` (when
/// given) and returning the number of runs performed.
fn sim_replay_pass(
    machines: &[MachineModel],
    workloads: &[Workload],
    replays: usize,
    mut digest: Option<&mut String>,
) -> u64 {
    use std::fmt::Write as _;
    let mut runs = 0u64;
    for machine in machines {
        // One interpreter per machine: its scratch tables (decode
        // buffer, data memory, cache ways, predictor state) are
        // allocated on the first run and only reset afterwards — this
        // scenario times exactly the allocation-free steady state the
        // alloc_audit suite pins.
        let mut cpu = ct_sim::Cpu::new(machine);
        for w in workloads {
            for _ in 0..replays {
                let s = cpu
                    .run_silent(&w.program, &w.run_config)
                    .expect("registry kernels run to completion");
                runs += 1;
                if let Some(out) = digest.as_deref_mut() {
                    writeln!(
                        out,
                        "{};{};{};{};{};{};{};{};{};{};{};{:?}",
                        machine.name,
                        w.name,
                        s.instructions,
                        s.uops,
                        s.cycles,
                        s.taken_branches,
                        s.mispredicts,
                        s.bp_lookups,
                        s.l1_hits,
                        s.l2_hits,
                        s.mem_accesses,
                        s.result,
                    )
                    .expect("writing to a String never fails");
                }
            }
        }
    }
    runs
}

fn scenario_sim_replay(opts: &HarnessOptions, log: &mut dyn FnMut(&str)) -> ScenarioResult {
    let fixture = Fixture::probe();
    // Probe: two replays of every machine × kernel pair on retained
    // interpreters; the "response bytes" are every run's full summary
    // (instruction/uop/cycle counts, predictor and cache counters,
    // result register), so a single counter drifting anywhere in the
    // interpreter core moves the hash. The audit pins that pure replay
    // never triggers an instrumented reference collection.
    const PROBE_REPLAYS: usize = 2;
    let probe_config = vec![
        ("grid", "kernels".to_string()),
        ("replays", PROBE_REPLAYS.to_string()),
        ("scale", PROBE_SCALE.to_string()),
        ("threads", "1".to_string()),
    ];
    let audit = CollectionAudit::begin();
    let mut digest = String::new();
    let probe_runs = sim_replay_pass(
        &fixture.machines,
        &fixture.workloads,
        PROBE_REPLAYS,
        Some(&mut digest),
    );
    let determinism = Determinism {
        response_hash: fnv1a(digest.as_bytes()),
        reference_builds: audit.collections() as u64,
        requests: probe_runs,
    };

    // Measurement: raw replay throughput of the interpreter core —
    // runs per second over the same pairs, warm after the first lap.
    let replays = if opts.smoke { PROBE_REPLAYS } else { 40 };
    let measure_config = vec![
        ("grid", "kernels".to_string()),
        ("replays", replays.to_string()),
        ("scale", PROBE_SCALE.to_string()),
        ("threads", "1".to_string()),
    ];
    let wall = Instant::now();
    let runs = sim_replay_pass(&fixture.machines, &fixture.workloads, replays, None);
    let elapsed = wall.elapsed().as_secs_f64();
    log(&format!(
        "sim_replay: {runs} retained-CPU runs in {elapsed:.3} s ({:.1} runs/s)",
        runs as f64 / elapsed.max(1e-9)
    ));
    ScenarioResult {
        name: "sim_replay",
        probe_config,
        determinism,
        measure_config,
        measure: Measure {
            requests: runs,
            elapsed_s: elapsed,
            throughput_rps: runs as f64 / elapsed.max(1e-9),
            p50_ms: None,
            p99_ms: None,
            cache_hit_rate: None,
            cache_hits: 0,
            builds: 0,
        },
    }
}

/// Runs the full scenario matrix in order, logging one progress line per
/// scenario through `log` (stderr in the binary, a sink in tests).
#[must_use]
pub fn run_suite(opts: &HarnessOptions, log: &mut dyn FnMut(&str)) -> Vec<ScenarioResult> {
    // The zipfian probe stream is generated ONCE and shared between the
    // pipelined and TCP scenarios (via the resumable StreamGenerator), so
    // their determinism hashes are directly comparable: same requests,
    // different transport, same bytes.
    let fixture = Fixture::probe();
    let mut zipf = StreamGenerator::new(
        &fixture.machines,
        &fixture.workloads,
        &fixture.opts,
        &StreamConfig {
            pattern: StreamPattern::Zipfian,
            requests: PROBE_REQUESTS,
            seed: opts.seed,
            runs: 1,
        },
    );
    let snap = zipf.state();
    let shared_probe = zipf.take(PROBE_REQUESTS);
    zipf.restore(snap);
    debug_assert_eq!(zipf.take(PROBE_REQUESTS), shared_probe);

    let results = vec![
        scenario_grid_sweep(opts, log),
        scenario_serve_batched(opts, log),
        scenario_serve_pipelined(opts, &shared_probe, log),
        scenario_tcp_loopback(opts, &shared_probe, log),
        scenario_v2_loopback(opts, &shared_probe, log),
        scenario_mixed_tenant(opts, log),
        scenario_warm_start(opts, &shared_probe, log),
        scenario_sim_replay(opts, log),
    ];
    assert_eq!(
        results[2].determinism.response_hash, results[3].determinism.response_hash,
        "transport must not change response bytes (pipelined vs TCP probe)"
    );
    assert_eq!(
        results[2].determinism.response_hash, results[4].determinism.response_hash,
        "framing must not change response bytes (pipelined vs v2 multiplexed probe)"
    );
    assert_eq!(
        results[2].determinism.response_hash, results[6].determinism.response_hash,
        "the snapshot store must not change response bytes (pipelined vs warm-start probe)"
    );
    assert_eq!(
        results[6].determinism.reference_builds, 0,
        "a warm restart must not re-run a single instrumented reference collection"
    );
    assert_eq!(
        results[7].determinism.reference_builds, 0,
        "pure interpreter replay must never trigger an instrumented collection"
    );
    results
}

// --- report serialization --------------------------------------------------

fn config_value(config: &[(&'static str, String)]) -> Value {
    Value::Map(
        config
            .iter()
            .map(|(k, v)| ((*k).to_string(), Value::Str(v.clone())))
            .collect(),
    )
}

fn opt_float(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Float)
}

/// Renders the scenario results as the versioned `BENCH_<n>.json` text.
#[must_use]
pub fn report_json(results: &[ScenarioResult], smoke: bool) -> String {
    let scenarios: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("name".into(), Value::Str(r.name.to_string())),
                (
                    "probe".into(),
                    Value::Map(vec![
                        ("config".into(), config_value(&r.probe_config)),
                        ("fingerprint".into(), Value::Str(hex(r.probe_fingerprint()))),
                        (
                            "response_hash".into(),
                            Value::Str(hex(r.determinism.response_hash)),
                        ),
                        (
                            "reference_builds".into(),
                            Value::UInt(r.determinism.reference_builds),
                        ),
                        ("requests".into(), Value::UInt(r.determinism.requests)),
                    ]),
                ),
                (
                    "measure".into(),
                    Value::Map(vec![
                        ("config".into(), config_value(&r.measure_config)),
                        (
                            "fingerprint".into(),
                            Value::Str(hex(r.measure_fingerprint())),
                        ),
                        ("requests".into(), Value::UInt(r.measure.requests)),
                        ("elapsed_s".into(), Value::Float(r.measure.elapsed_s)),
                        (
                            "throughput_rps".into(),
                            Value::Float(r.measure.throughput_rps),
                        ),
                        ("p50_ms".into(), opt_float(r.measure.p50_ms)),
                        ("p99_ms".into(), opt_float(r.measure.p99_ms)),
                        (
                            "cache_hit_rate".into(),
                            opt_float(r.measure.cache_hit_rate),
                        ),
                        ("cache_hits".into(), Value::UInt(r.measure.cache_hits)),
                        ("builds".into(), Value::UInt(r.measure.builds)),
                    ]),
                ),
            ])
        })
        .collect();
    let report = Value::Map(vec![
        ("bench".into(), Value::Str("countertrust".to_string())),
        ("version".into(), Value::UInt(BENCH_VERSION)),
        (
            "mode".into(),
            Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("scenarios".into(), Value::Seq(scenarios)),
    ]);
    let mut text = serde_json::to_string_pretty(&report).expect("report serializes");
    text.push('\n');
    text
}

// --- report parsing + comparison ------------------------------------------

/// A parsed `BENCH_<n>.json`, as read back for `--compare`.
#[derive(Debug, Clone)]
pub struct Report {
    pub version: u64,
    pub mode: String,
    pub scenarios: Vec<ScenarioReport>,
}

/// One scenario as parsed from a report file.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub name: String,
    pub probe_fingerprint: String,
    pub response_hash: String,
    pub reference_builds: u64,
    pub probe_requests: u64,
    pub measure_fingerprint: String,
    pub throughput_rps: f64,
    pub p50_ms: Option<f64>,
    pub p99_ms: Option<f64>,
}

fn get<'a>(map: &'a Value, key: &str) -> Result<&'a Value, String> {
    match map {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}")),
        _ => Err(format!("expected an object around {key:?}")),
    }
}

fn as_str(v: &Value, key: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("{key:?} is not a string")),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("{key:?} is not an unsigned integer")),
    }
}

fn as_f64_opt(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Parses a report file's text.
pub fn parse_report(text: &str) -> Result<Report, String> {
    let root = serde_json::parse(text).map_err(|e| e.to_string())?;
    let version = as_u64(get(&root, "version")?, "version")?;
    let mode = as_str(get(&root, "mode")?, "mode")?;
    let Value::Seq(items) = get(&root, "scenarios")? else {
        return Err("\"scenarios\" is not an array".to_string());
    };
    let mut scenarios = Vec::with_capacity(items.len());
    for item in items {
        let probe = get(item, "probe")?;
        let measure = get(item, "measure")?;
        scenarios.push(ScenarioReport {
            name: as_str(get(item, "name")?, "name")?,
            probe_fingerprint: as_str(get(probe, "fingerprint")?, "probe.fingerprint")?,
            response_hash: as_str(get(probe, "response_hash")?, "probe.response_hash")?,
            reference_builds: as_u64(get(probe, "reference_builds")?, "probe.reference_builds")?,
            probe_requests: as_u64(get(probe, "requests")?, "probe.requests")?,
            measure_fingerprint: as_str(get(measure, "fingerprint")?, "measure.fingerprint")?,
            throughput_rps: as_f64_opt(get(measure, "throughput_rps")?)
                .ok_or("\"throughput_rps\" is not a number")?,
            p50_ms: as_f64_opt(get(measure, "p50_ms")?),
            p99_ms: as_f64_opt(get(measure, "p99_ms")?),
        });
    }
    Ok(Report {
        version,
        mode,
        scenarios,
    })
}

/// Outcome of comparing a fresh run (`new`) against a baseline report.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    /// Human-readable comparison lines, one per scenario/aspect.
    pub lines: Vec<String>,
    /// Determinism-fingerprint mismatches — the hard failures.
    pub fingerprint_mismatches: Vec<String>,
    /// Throughput regressions beyond the tolerance (advisory).
    pub regressions: Vec<String>,
}

impl CompareOutcome {
    /// Whether the comparison should fail the run (CI gates on this —
    /// perf regressions alone never do).
    #[must_use]
    pub fn hard_failure(&self) -> bool {
        !self.fingerprint_mismatches.is_empty()
    }
}

/// Tolerated relative throughput drop before a scenario is flagged as a
/// regression — generous, because shared-runner wall-clock is noisy.
pub const REGRESSION_TOLERANCE: f64 = 0.30;

/// Compares a fresh run against a baseline report.
///
/// Determinism: whenever a scenario's probe fingerprints match (probe
/// configs are pinned, so they match across smoke/full and PR over PR),
/// the response hash, reference-build count and request count must be
/// identical — any difference is a hard failure. Performance: throughput
/// deltas are reported only when the measurement fingerprints also match,
/// and drops beyond [`REGRESSION_TOLERANCE`] are flagged (but advisory).
#[must_use]
pub fn compare(baseline: &Report, new: &Report) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    if baseline.version != new.version {
        out.lines.push(format!(
            "note: comparing report version {} against baseline version {}",
            new.version, baseline.version
        ));
    }
    for scenario in &new.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|s| s.name == scenario.name) else {
            out.lines
                .push(format!("{}: not in baseline (new scenario)", scenario.name));
            continue;
        };
        if base.probe_fingerprint != scenario.probe_fingerprint {
            out.fingerprint_mismatches.push(format!(
                "{}: probe config drifted ({} -> {}) — determinism not comparable; \
                 regenerate the baseline deliberately",
                scenario.name, base.probe_fingerprint, scenario.probe_fingerprint
            ));
            continue;
        }
        if base.response_hash != scenario.response_hash {
            out.fingerprint_mismatches.push(format!(
                "{}: response bytes changed ({} -> {})",
                scenario.name, base.response_hash, scenario.response_hash
            ));
        }
        if base.reference_builds != scenario.reference_builds {
            out.fingerprint_mismatches.push(format!(
                "{}: reference builds changed ({} -> {})",
                scenario.name, base.reference_builds, scenario.reference_builds
            ));
        }
        if base.probe_requests != scenario.probe_requests {
            out.fingerprint_mismatches.push(format!(
                "{}: probe request count changed ({} -> {})",
                scenario.name, base.probe_requests, scenario.probe_requests
            ));
        }
        if base.probe_fingerprint == scenario.probe_fingerprint
            && base.response_hash == scenario.response_hash
            && base.reference_builds == scenario.reference_builds
        {
            out.lines
                .push(format!("{}: determinism fingerprint OK", scenario.name));
        }
        if base.measure_fingerprint == scenario.measure_fingerprint
            && base.throughput_rps > 0.0
        {
            let ratio = scenario.throughput_rps / base.throughput_rps;
            out.lines.push(format!(
                "{}: throughput {:.0} req/s vs baseline {:.0} req/s ({:+.1}%)",
                scenario.name,
                scenario.throughput_rps,
                base.throughput_rps,
                (ratio - 1.0) * 100.0
            ));
            if ratio < 1.0 - REGRESSION_TOLERANCE {
                out.regressions.push(format!(
                    "{}: throughput dropped {:.1}% (tolerance {:.0}%)",
                    scenario.name,
                    (1.0 - ratio) * 100.0,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        } else {
            out.lines.push(format!(
                "{}: measurement configs differ (baseline mode {:?} vs {:?}); \
                 skipping perf comparison",
                scenario.name, baseline.mode, new.mode
            ));
        }
    }
    for base in &baseline.scenarios {
        if !new.scenarios.iter().any(|s| s.name == base.name) {
            out.fingerprint_mismatches.push(format!(
                "{}: present in baseline but missing from this run",
                base.name
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> Vec<ScenarioResult> {
        MATRIX
            .iter()
            .enumerate()
            .map(|(i, name)| ScenarioResult {
                name,
                probe_config: vec![("threads", "1".to_string())],
                determinism: Determinism {
                    response_hash: 0x1111 + i as u64,
                    reference_builds: 12,
                    requests: 24,
                },
                measure_config: vec![("threads", "auto".to_string())],
                measure: Measure {
                    requests: 100,
                    elapsed_s: 0.5,
                    throughput_rps: 200.0,
                    p50_ms: Some(1.5),
                    p99_ms: None,
                    cache_hit_rate: Some(0.9),
                    cache_hits: 90,
                    builds: 10,
                },
            })
            .collect()
    }

    #[test]
    fn report_roundtrips_through_json() {
        let results = sample_results();
        let text = report_json(&results, false);
        let report = parse_report(&text).expect("report parses");
        assert_eq!(report.version, BENCH_VERSION);
        assert_eq!(report.mode, "full");
        assert_eq!(report.scenarios.len(), MATRIX.len());
        for (r, s) in results.iter().zip(&report.scenarios) {
            assert_eq!(r.name, s.name);
            assert_eq!(hex(r.determinism.response_hash), s.response_hash);
            assert_eq!(r.determinism.reference_builds, s.reference_builds);
            assert_eq!(hex(r.probe_fingerprint()), s.probe_fingerprint);
            assert_eq!(hex(r.measure_fingerprint()), s.measure_fingerprint);
            assert_eq!(s.p50_ms, Some(1.5));
            assert_eq!(s.p99_ms, None, "null percentiles parse back as None");
        }
    }

    #[test]
    fn identical_reports_compare_clean() {
        let text = report_json(&sample_results(), false);
        let report = parse_report(&text).unwrap();
        let outcome = compare(&report, &report);
        assert!(!outcome.hard_failure());
        assert!(outcome.regressions.is_empty());
        assert_eq!(
            outcome
                .lines
                .iter()
                .filter(|l| l.contains("determinism fingerprint OK"))
                .count(),
            MATRIX.len()
        );
    }

    #[test]
    fn changed_response_bytes_are_a_hard_failure() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        let mut tampered = results;
        tampered[0].determinism.response_hash ^= 1;
        let new = parse_report(&report_json(&tampered, false)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(outcome.hard_failure());
        assert!(outcome.fingerprint_mismatches[0].contains("response bytes changed"));
    }

    #[test]
    fn changed_build_count_is_a_hard_failure() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        let mut tampered = results;
        tampered[1].determinism.reference_builds += 1;
        let new = parse_report(&report_json(&tampered, false)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(outcome.hard_failure());
        assert!(outcome.fingerprint_mismatches[0].contains("reference builds changed"));
    }

    #[test]
    fn slow_throughput_is_advisory_not_fatal() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        let mut slower = results;
        for r in &mut slower {
            r.measure.throughput_rps = 50.0; // 4x slowdown
        }
        let new = parse_report(&report_json(&slower, false)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(!outcome.hard_failure(), "perf never hard-fails");
        assert_eq!(outcome.regressions.len(), MATRIX.len());
    }

    #[test]
    fn smoke_vs_full_compares_determinism_but_skips_perf() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        // A smoke run: same probes, different measurement config.
        let mut smoke = results;
        for r in &mut smoke {
            r.measure_config = vec![("threads", "1".to_string()), ("smoke", "yes".to_string())];
            r.measure.throughput_rps = 1.0;
        }
        let new = parse_report(&report_json(&smoke, true)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(!outcome.hard_failure());
        assert!(outcome.regressions.is_empty(), "no perf comparison, no regressions");
        assert!(outcome
            .lines
            .iter()
            .any(|l| l.contains("skipping perf comparison")));
    }

    #[test]
    fn missing_scenario_is_a_hard_failure() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        let mut partial = results;
        partial.pop();
        let new = parse_report(&report_json(&partial, false)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(outcome.hard_failure());
        assert!(outcome.fingerprint_mismatches[0].contains("missing from this run"));
    }

    #[test]
    fn probe_config_drift_is_a_hard_failure() {
        let results = sample_results();
        let baseline = parse_report(&report_json(&results, false)).unwrap();
        let mut drifted = results;
        drifted[2].probe_config.push(("new_knob", "1".to_string()));
        let new = parse_report(&report_json(&drifted, false)).unwrap();
        let outcome = compare(&baseline, &new);
        assert!(outcome.hard_failure());
        assert!(outcome.fingerprint_mismatches[0].contains("probe config drifted"));
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"version\": 6, \"mode\": \"full\"}").is_err());
    }

    #[test]
    fn fingerprints_are_order_and_value_sensitive() {
        let a = fingerprint_config("s", &[("k", "1".to_string()), ("j", "2".to_string())]);
        let b = fingerprint_config("s", &[("j", "2".to_string()), ("k", "1".to_string())]);
        let c = fingerprint_config("s", &[("k", "1".to_string()), ("j", "3".to_string())]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            fingerprint_config("s", &[("k", "1".to_string()), ("j", "2".to_string())])
        );
    }
}
