//! `ct-bench` — the experiment harness behind every table and figure.
//!
//! The binaries in `src/bin/` regenerate the paper's artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — kernel accuracy errors per machine × method |
//! | `table2` | Table 2 — application accuracy errors per machine × method |
//! | `table3` | Table 3 — the sampling-method taxonomy |
//! | `function_rank` | §5.2 — FullCMS top-10 function ordering check |
//! | `ablation_periods` | §6.1 — period policy sweep (round/prime/randomized) |
//! | `ablation_lbr` | §6.2 — LBR depth sweep and call-stack-mode collision |
//! | `serve_bench` | serving-mode benchmark: batched or pipelined request streams against the profile cache |
//!
//! All experiment binaries run on the parallel grid engine
//! ([`countertrust::grid::GridRunner`]): cells fan out across worker
//! threads, each `(machine, workload)` pair's reference profile is
//! collected once and shared, and per-run seeds derive from grid
//! coordinates — so `--threads 1` and `--threads N` produce byte-identical
//! stdout/JSON.
//!
//! Criterion benches in `benches/` measure collection and post-processing
//! overhead (the \[38\] aside) and simulator throughput.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod harness;
pub mod streams;

use countertrust::evaluate::Evaluation;
use countertrust::grid::{GridRunner, WorkloadSpec};
use countertrust::methods::MethodOptions;
use ct_sim::MachineModel;
use ct_workloads::Workload;
use std::io::IsTerminal;

/// Number of repeated measurements per cell, matching §4.1 ("measured five
/// times").
pub const REPEATS: usize = 5;

/// Borrows grid-engine workload specs out of registry workloads.
#[must_use]
pub fn workload_specs(workloads: &[Workload]) -> Vec<WorkloadSpec<'_>> {
    workloads
        .iter()
        .map(|w| WorkloadSpec {
            name: &w.name,
            program: &w.program,
            run_config: &w.run_config,
        })
        .collect()
}

/// A grid runner configured from CLI options: `--threads` (default:
/// available parallelism), with per-cell progress on stderr when stderr is
/// a terminal (never polluting redirected output).
#[must_use]
pub fn grid_runner(cli: &CliOptions) -> GridRunner {
    GridRunner::new()
        .threads(cli.threads.unwrap_or(0))
        .progress(std::io::stderr().is_terminal())
}

/// Runs the full machine × method grid for one set of workloads,
/// producing one [`Evaluation`] per (machine, workload) pair.
///
/// Methods a machine cannot run are skipped (the paper's tables have the
/// same holes). This is a convenience wrapper over
/// [`GridRunner::run_standard`] with the default thread count; the
/// binaries configure threads/progress via [`grid_runner`].
#[must_use]
pub fn run_grid(
    workloads: &[Workload],
    machines: &[MachineModel],
    opts: &MethodOptions,
    repeats: usize,
    base_seed: u64,
) -> Vec<Evaluation> {
    GridRunner::new().run_standard(machines, &workload_specs(workloads), opts, repeats, base_seed)
}

/// Command-line conveniences shared by the binaries: `--scale F`,
/// `--repeats N`, `--seed N`, `--threads N`, `--json PATH`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    pub scale: f64,
    pub repeats: usize,
    pub seed: u64,
    /// Worker threads for the grid engine; `None` means available
    /// hardware parallelism.
    pub threads: Option<usize>,
    pub json_path: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            repeats: REPEATS,
            seed: 1_000,
            threads: None,
            json_path: None,
        }
    }
}

/// Parses a flag value, warning on stderr and keeping `fallback` when the
/// value does not parse (a silently swallowed typo in `--scale 0..5`
/// would otherwise run the full grid with the wrong configuration).
fn parse_flag_value<T>(flag: &str, raw: &str, fallback: T) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    raw.parse().unwrap_or_else(|_| {
        eprintln!("warning: ignoring invalid value {raw:?} for {flag}; keeping {fallback}");
        fallback
    })
}

/// Parses a `--threads` value. A zero or negative count is **rejected**
/// and clamped to one worker (running a grid with no workers is never
/// what the user meant); a non-numeric value yields `None` so the caller
/// keeps its current setting. Both paths warn on stderr.
fn parse_thread_count(raw: &str) -> Option<usize> {
    match raw.parse::<i128>() {
        Ok(n) if n <= 0 => {
            eprintln!("warning: rejecting --threads {n} (must be >= 1); clamping to 1");
            Some(1)
        }
        Ok(n) => Some(usize::try_from(n).unwrap_or(usize::MAX)),
        Err(_) => {
            eprintln!(
                "warning: ignoring invalid value {raw:?} for --threads; \
                 keeping the current setting"
            );
            None
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args()`-style arguments; unknown flags are
    /// ignored so binaries can add their own. Malformed values are
    /// reported on stderr (naming the flag and the offending value) and
    /// fall back to the current setting; a non-positive `--threads` is
    /// rejected by clamping to one worker.
    #[must_use]
    pub fn parse(args: &[String]) -> Self {
        let mut opts = Self::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<&String> {
                *i += 1;
                args.get(*i)
            };
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = take(&mut i) {
                        opts.scale = parse_flag_value("--scale", v, opts.scale);
                    }
                }
                "--repeats" => {
                    if let Some(v) = take(&mut i) {
                        opts.repeats = parse_flag_value("--repeats", v, opts.repeats);
                    }
                }
                "--seed" => {
                    if let Some(v) = take(&mut i) {
                        opts.seed = parse_flag_value("--seed", v, opts.seed);
                    }
                }
                "--threads" => {
                    if let Some(v) = take(&mut i) {
                        if let Some(n) = parse_thread_count(v) {
                            opts.threads = Some(n);
                        }
                    }
                }
                "--json" => {
                    if let Some(v) = take(&mut i) {
                        opts.json_path = Some(v.clone());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Writes evaluations as JSON when `--json` was given.
pub fn maybe_write_json(opts: &CliOptions, evals: &[Evaluation]) {
    if let Some(path) = &opts.json_path {
        let json = countertrust::report::to_json(evals);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("warning: cannot write {path}: {e}");
        } else {
            println!("(json written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use countertrust::methods::MethodKind;

    #[test]
    fn cli_parses_flags() {
        let args: Vec<String> = [
            "--scale",
            "0.5",
            "--repeats",
            "3",
            "--seed",
            "9",
            "--threads",
            "4",
            "--json",
            "/tmp/x.json",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let o = CliOptions::parse(&args);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.repeats, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn cli_ignores_unknown() {
        let args: Vec<String> = ["--whatever", "--scale", "2.0"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let o = CliOptions::parse(&args);
        assert_eq!(o.scale, 2.0);
    }

    #[test]
    fn cli_warns_and_keeps_defaults_on_malformed_values() {
        let args: Vec<String> = ["--scale", "0..5", "--repeats", "lots", "--seed", "0x12"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let o = CliOptions::parse(&args);
        let d = CliOptions::default();
        assert_eq!(o.scale, d.scale);
        assert_eq!(o.repeats, d.repeats);
        assert_eq!(o.seed, d.seed);
        assert_eq!(o.threads, None);
    }

    #[test]
    fn cli_rejects_zero_threads_by_clamping_to_one() {
        let args: Vec<String> = ["--threads", "0"].iter().map(ToString::to_string).collect();
        assert_eq!(CliOptions::parse(&args).threads, Some(1));
    }

    #[test]
    fn cli_rejects_negative_threads_by_clamping_to_one() {
        for raw in ["-1", "-3", "-9999999999999999999"] {
            let args: Vec<String> =
                ["--threads", raw].iter().map(ToString::to_string).collect();
            assert_eq!(CliOptions::parse(&args).threads, Some(1), "--threads {raw}");
        }
    }

    #[test]
    fn cli_falls_back_on_non_numeric_threads() {
        let args: Vec<String> = ["--threads", "lots"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(CliOptions::parse(&args).threads, None);
    }

    #[test]
    fn cli_keeps_earlier_threads_value_on_later_malformed_one() {
        let args: Vec<String> = ["--threads", "4", "--threads", "bogus"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(CliOptions::parse(&args).threads, Some(4));
    }

    #[test]
    fn cli_ignores_trailing_threads_flag_without_value() {
        let args: Vec<String> = ["--threads"].iter().map(ToString::to_string).collect();
        assert_eq!(CliOptions::parse(&args).threads, None);
    }

    #[test]
    fn cli_accepts_positive_threads() {
        let args: Vec<String> = ["--threads", "7"].iter().map(ToString::to_string).collect();
        assert_eq!(CliOptions::parse(&args).threads, Some(7));
    }

    #[test]
    fn grid_produces_cells_for_all_machines() {
        let workloads = ct_workloads::kernel_set(0.01);
        let machines = MachineModel::paper_machines();
        let evals = run_grid(&workloads[..1], &machines, &MethodOptions::fast(), 1, 1);
        assert_eq!(evals.len(), 3);
        // AMD runs fewer methods (no LBR/fix) than the Intel parts.
        let amd = evals.iter().find(|e| e.machine.contains("Magny")).unwrap();
        let ivb = evals.iter().find(|e| e.machine.contains("Ivy")).unwrap();
        assert!(amd.methods.len() < ivb.methods.len());
        assert_eq!(ivb.methods.len(), MethodKind::ALL.len());
    }
}
