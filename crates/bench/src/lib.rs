//! `ct-bench` — the experiment harness behind every table and figure.
//!
//! The binaries in `src/bin/` regenerate the paper's artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — kernel accuracy errors per machine × method |
//! | `table2` | Table 2 — application accuracy errors per machine × method |
//! | `table3` | Table 3 — the sampling-method taxonomy |
//! | `function_rank` | §5.2 — FullCMS top-10 function ordering check |
//! | `ablation_periods` | §6.1 — period policy sweep (round/prime/randomized) |
//! | `ablation_lbr` | §6.2 — LBR depth sweep and call-stack-mode collision |
//!
//! Criterion benches in `benches/` measure collection and post-processing
//! overhead (the [38] aside) and simulator throughput.

use countertrust::evaluate::{evaluate_method, Evaluation};
use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::Session;
use ct_sim::MachineModel;
use ct_workloads::Workload;

/// Number of repeated measurements per cell, matching §4.1 ("measured five
/// times").
pub const REPEATS: usize = 5;

/// Runs the full machine × method grid for one set of workloads,
/// producing one [`Evaluation`] per (machine, workload) pair.
///
/// Methods a machine cannot run are skipped (the paper's tables have the
/// same holes).
#[must_use]
pub fn run_grid(
    workloads: &[Workload],
    machines: &[MachineModel],
    opts: &MethodOptions,
    repeats: usize,
    base_seed: u64,
) -> Vec<Evaluation> {
    let mut out = Vec::new();
    for machine in machines {
        for w in workloads {
            let mut session = Session::with_run_config(machine, &w.program, w.run_config.clone());
            let mut methods = Vec::new();
            for kind in MethodKind::ALL {
                let Some(instance) = kind.instantiate(machine, opts) else {
                    continue;
                };
                match evaluate_method(&mut session, &instance, repeats, base_seed) {
                    Ok(stats) => methods.push(stats),
                    Err(e) => {
                        eprintln!("warning: {} / {} / {:?}: {e}", machine.name, w.name, kind);
                    }
                }
            }
            out.push(Evaluation {
                machine: machine.name.clone(),
                workload: w.name.clone(),
                methods,
            });
        }
    }
    out
}

/// Command-line conveniences shared by the binaries: `--scale F`,
/// `--repeats N`, `--seed N`, `--json PATH`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    pub scale: f64,
    pub repeats: usize,
    pub seed: u64,
    pub json_path: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            repeats: REPEATS,
            seed: 1_000,
            json_path: None,
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args()`-style arguments; unknown flags are
    /// ignored so binaries can add their own.
    #[must_use]
    pub fn parse(args: &[String]) -> Self {
        let mut opts = Self::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<&String> {
                *i += 1;
                args.get(*i)
            };
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = take(&mut i) {
                        opts.scale = v.parse().unwrap_or(opts.scale);
                    }
                }
                "--repeats" => {
                    if let Some(v) = take(&mut i) {
                        opts.repeats = v.parse().unwrap_or(opts.repeats);
                    }
                }
                "--seed" => {
                    if let Some(v) = take(&mut i) {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                    }
                }
                "--json" => {
                    if let Some(v) = take(&mut i) {
                        opts.json_path = Some(v.clone());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Writes evaluations as JSON when `--json` was given.
pub fn maybe_write_json(opts: &CliOptions, evals: &[Evaluation]) {
    if let Some(path) = &opts.json_path {
        let json = countertrust::report::to_json(evals);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("warning: cannot write {path}: {e}");
        } else {
            println!("(json written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags() {
        let args: Vec<String> = [
            "--scale",
            "0.5",
            "--repeats",
            "3",
            "--seed",
            "9",
            "--json",
            "/tmp/x.json",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let o = CliOptions::parse(&args);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.repeats, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn cli_ignores_unknown() {
        let args: Vec<String> = ["--whatever", "--scale", "2.0"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let o = CliOptions::parse(&args);
        assert_eq!(o.scale, 2.0);
    }

    #[test]
    fn grid_produces_cells_for_all_machines() {
        let workloads = ct_workloads::kernel_set(0.01);
        let machines = MachineModel::paper_machines();
        let evals = run_grid(&workloads[..1], &machines, &MethodOptions::fast(), 1, 1);
        assert_eq!(evals.len(), 3);
        // AMD runs fewer methods (no LBR/fix) than the Intel parts.
        let amd = evals.iter().find(|e| e.machine.contains("Magny")).unwrap();
        let ivb = evals.iter().find(|e| e.machine.contains("Ivy")).unwrap();
        assert!(amd.methods.len() < ivb.methods.len());
        assert_eq!(ivb.methods.len(), MethodKind::ALL.len());
    }
}
