//! Request-stream generation for the serving benchmarks.
//!
//! `serve_bench` (and the serving integration tests) drive the
//! [`countertrust::serve::EvalService`] with synthetic JSON-lines request
//! workloads whose pair-popularity distribution is the experiment knob:
//!
//! * [`StreamPattern::Hot`] — most requests hammer one pair (best case
//!   for any cache);
//! * [`StreamPattern::Cold`] — round-robin over every pair, never
//!   re-touching one until all others were visited (worst case for a
//!   bounded LRU);
//! * [`StreamPattern::Zipfian`] — popularity `∝ 1/rank`, the classic
//!   web-traffic shape and the benchmark's headline distribution;
//! * [`StreamPattern::Mixed`] — a two-tenant interference workload: a
//!   hot default-catalog tenant owning [`MIXED_HOT_SHARE_PCT`]% of the
//!   stream and a cold tenant (catalog [`MIXED_COLD_CATALOG`]) owning
//!   the rest, both zipfian over the pair table — the stream behind the
//!   per-tenant quota/fairness benchmarks.
//!
//! Streams are pure functions of their seed: the same
//! [`StreamConfig`] always generates the same requests, so two services
//! fed the same stream can be compared byte for byte.

use countertrust::grid::GridMethod;
use countertrust::methods::MethodOptions;
use countertrust::serve::EvalRequest;
use ct_sim::MachineModel;
use ct_workloads::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The catalog name cold-tenant requests of a [`StreamPattern::Mixed`]
/// stream carry — services benchmarking that pattern must register a
/// catalog under this name.
pub const MIXED_COLD_CATALOG: &str = "tenant-b";

/// Share of a [`StreamPattern::Mixed`] stream belonging to the hot
/// default-catalog tenant, in percent (the cold tenant gets the rest).
pub const MIXED_HOT_SHARE_PCT: u64 = 90;

/// Pair-popularity distribution of a generated request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPattern {
    /// ~85% of requests hit the first pair, the rest spread uniformly.
    Hot,
    /// Round-robin over all pairs (no temporal locality at all).
    Cold,
    /// Zipf-distributed pair popularity with exponent 1 (`weight(rank) =
    /// 1/(rank+1)`).
    Zipfian,
    /// Two-tenant interference mix: [`MIXED_HOT_SHARE_PCT`]% of requests
    /// from a hot default-catalog tenant, the rest from a cold tenant
    /// named [`MIXED_COLD_CATALOG`], each independently zipfian over the
    /// pair table.
    Mixed,
}

impl StreamPattern {
    /// Parses a CLI flag value (`hot` / `cold` / `zipfian` / `mixed`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hot" => Some(Self::Hot),
            "cold" => Some(Self::Cold),
            "zipfian" => Some(Self::Zipfian),
            "mixed" => Some(Self::Mixed),
            _ => None,
        }
    }

    /// The flag spelling of this pattern.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Hot => "hot",
            Self::Cold => "cold",
            Self::Zipfian => "zipfian",
            Self::Mixed => "mixed",
        }
    }

    /// Whether streams of this pattern name a second catalog
    /// ([`MIXED_COLD_CATALOG`]) that the serving side must register.
    #[must_use]
    pub fn is_multi_tenant(self) -> bool {
        self == Self::Mixed
    }
}

/// Shape of a generated request stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Pair-popularity distribution.
    pub pattern: StreamPattern,
    /// Number of requests to generate.
    pub requests: usize,
    /// Stream seed: both the generator RNG and the per-request base
    /// seeds derive from it.
    pub seed: u64,
    /// Measurement runs per request.
    pub runs: usize,
}

/// Opaque resumption point of a [`StreamGenerator`]: the RNG state plus
/// the round-robin cursor. Two generators with equal states produce
/// identical continuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamState {
    rng: [u64; 4],
    position: usize,
}

/// An incremental request-stream generator.
///
/// Historically [`request_stream`] re-seeded its RNG on every call, so a
/// caller that wanted "the first 200 requests now, the next 200 later"
/// had to regenerate (or re-parse JSONL) from the start. The generator
/// owns the live RNG instead: [`StreamGenerator::take`] can be called
/// repeatedly and the concatenation of the chunks is exactly the stream
/// a single big `take` would have produced. [`StreamGenerator::state`] /
/// [`StreamGenerator::restore`] snapshot and resume that position, which
/// is what lets `bench_suite` replay the identical stream across
/// scenarios without keeping the requests in memory.
///
/// The pair/label tables are built once at construction; per-request
/// generation is just RNG draws and string clones.
pub struct StreamGenerator {
    machine_names: Vec<String>,
    workload_names: Vec<String>,
    labels: Vec<Vec<String>>,
    pairs: Vec<(usize, usize)>,
    weights: Vec<u64>,
    total_weight: u64,
    pattern: StreamPattern,
    runs: usize,
    rng: SmallRng,
    /// Index of the next request (drives the Cold round-robin).
    position: usize,
}

impl StreamGenerator {
    /// Builds a generator over the full `machines × workloads` catalog,
    /// naming only methods each machine supports (resolved through
    /// [`GridMethod::standard`], so AMD streams never ask for LBR).
    ///
    /// The stream is a pure function of `config` and the catalog order.
    #[must_use]
    pub fn new(
        machines: &[MachineModel],
        workloads: &[Workload],
        opts: &MethodOptions,
        config: &StreamConfig,
    ) -> Self {
        assert!(!machines.is_empty() && !workloads.is_empty(), "empty catalog");
        // Pair table, machine-major, with each machine's supported labels.
        let labels: Vec<Vec<String>> = machines
            .iter()
            .map(|m| {
                GridMethod::standard(m, opts)
                    .into_iter()
                    .map(|g| g.label)
                    .collect()
            })
            .collect();
        let pairs: Vec<(usize, usize)> = (0..machines.len())
            .flat_map(|m| (0..workloads.len()).map(move |w| (m, w)))
            .collect();

        // Integer cumulative weights (the vendored rand has no float ranges).
        const SCALE: u64 = 1_000_000;
        let weights: Vec<u64> = match config.pattern {
            StreamPattern::Hot => {
                let rest = if pairs.len() > 1 {
                    (SCALE * 15 / 100) / (pairs.len() as u64 - 1).max(1)
                } else {
                    0
                };
                (0..pairs.len())
                    .map(|i| if i == 0 { SCALE * 85 / 100 } else { rest.max(1) })
                    .collect()
            }
            StreamPattern::Cold => vec![1; pairs.len()],
            StreamPattern::Zipfian | StreamPattern::Mixed => (0..pairs.len())
                .map(|i| (SCALE / (i as u64 + 1)).max(1))
                .collect(),
        };
        let total_weight = weights.iter().sum();

        Self {
            machine_names: machines.iter().map(|m| m.name.clone()).collect(),
            workload_names: workloads.iter().map(|w| w.name.clone()).collect(),
            labels,
            pairs,
            weights,
            total_weight,
            pattern: config.pattern,
            runs: config.runs,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED_57EA_4D00_0AB1),
            position: 0,
        }
    }

    /// Generates the next request of the stream.
    pub fn next_request(&mut self) -> EvalRequest {
        let i = self.position;
        self.position += 1;
        let (m, w) = match self.pattern {
            // Cold is strict round-robin; the weighted draw handles the rest.
            StreamPattern::Cold => self.pairs[i % self.pairs.len()],
            _ => {
                let mut pick = self.rng.gen_range(0..self.total_weight);
                let mut chosen = self.pairs[self.pairs.len() - 1];
                for (pair, weight) in self.pairs.iter().zip(&self.weights) {
                    if pick < *weight {
                        chosen = *pair;
                        break;
                    }
                    pick -= weight;
                }
                chosen
            }
        };
        // Mixed streams split the SAME zipfian pair draw across two
        // tenants, so the cold tenant's working set mirrors the hot
        // one's shape — in its own cache namespace.
        let catalog = match self.pattern {
            StreamPattern::Mixed if self.rng.gen_range(0..100u64) >= MIXED_HOT_SHARE_PCT => {
                Some(MIXED_COLD_CATALOG.to_string())
            }
            _ => None,
        };
        let supported = &self.labels[m];
        let method = supported[self.rng.gen_range(0..supported.len())].clone();
        EvalRequest {
            machine: self.machine_names[m].clone(),
            workload: self.workload_names[w].clone(),
            method,
            runs: self.runs,
            seed: self.rng.gen_range(0u64..=u64::MAX / 2),
            catalog,
        }
    }

    /// Generates the next `n` requests. Chunked calls concatenate to the
    /// same stream as one big call.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<EvalRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// Snapshots the generator's position (RNG words + round-robin
    /// cursor) for later [`StreamGenerator::restore`].
    #[must_use]
    pub fn state(&self) -> StreamState {
        StreamState {
            rng: self.rng.state(),
            position: self.position,
        }
    }

    /// Rewinds (or fast-forwards) the generator to a snapshot taken from
    /// a generator with the same construction parameters.
    pub fn restore(&mut self, state: StreamState) {
        self.rng = SmallRng::from_state(state.rng);
        self.position = state.position;
    }
}

/// Generates a request stream over the full `machines × workloads`
/// catalog — the one-shot convenience over [`StreamGenerator`]; the
/// output is byte-identical to `StreamGenerator::new(...).take(n)`.
#[must_use]
pub fn request_stream(
    machines: &[MachineModel],
    workloads: &[Workload],
    opts: &MethodOptions,
    config: &StreamConfig,
) -> Vec<EvalRequest> {
    StreamGenerator::new(machines, workloads, opts, config).take(config.requests)
}

/// Serializes requests to their JSON-lines wire form — the exact frame
/// pipelined intake ([`countertrust::serve::EvalService::serve_pipelined`])
/// reads back.
#[must_use]
pub fn to_wire(requests: &[EvalRequest]) -> String {
    requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests always serialize") + "\n")
        .collect()
}

/// Number of distinct `(catalog, machine, workload)` pairs a stream
/// touches — the catalog is part of the key because tenants never share
/// cache entries (for single-tenant streams this is exactly the old
/// `(machine, workload)` count).
#[must_use]
pub fn distinct_pairs(requests: &[EvalRequest]) -> usize {
    let mut seen: Vec<(Option<&str>, &str, &str)> = Vec::new();
    for r in requests {
        let key = (r.catalog.as_deref(), r.machine.as_str(), r.workload.as_str());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    seen.len()
}

/// The `p`-th percentile (0.0..=1.0) of an **ascending-sorted** slice,
/// by the nearest-rank method. Returns `None` for an empty sample set —
/// an empty benchmark run has no latency distribution to summarize, and
/// a panic would take the whole report down with it.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (Vec<MachineModel>, Vec<Workload>) {
        (MachineModel::paper_machines(), ct_workloads::kernel_set(0.01))
    }

    fn config(pattern: StreamPattern) -> StreamConfig {
        StreamConfig {
            pattern,
            requests: 200,
            seed: 42,
            runs: 1,
        }
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let (machines, workloads) = catalog();
        let opts = MethodOptions::fast();
        for pattern in [StreamPattern::Hot, StreamPattern::Cold, StreamPattern::Zipfian] {
            let a = request_stream(&machines, &workloads, &opts, &config(pattern));
            let b = request_stream(&machines, &workloads, &opts, &config(pattern));
            assert_eq!(a, b, "{pattern:?} stream must be reproducible");
            assert_eq!(a.len(), 200);
        }
        let mut reseeded = config(StreamPattern::Zipfian);
        reseeded.seed = 43;
        let (machines, workloads) = catalog();
        let c = request_stream(&machines, &workloads, &opts, &reseeded);
        let a = request_stream(&machines, &workloads, &opts, &config(StreamPattern::Zipfian));
        assert_ne!(a, c, "seed must reach the stream");
    }

    #[test]
    fn chunked_generation_matches_one_shot() {
        let (machines, workloads) = catalog();
        let opts = MethodOptions::fast();
        for pattern in [
            StreamPattern::Hot,
            StreamPattern::Cold,
            StreamPattern::Zipfian,
            StreamPattern::Mixed,
        ] {
            let cfg = config(pattern);
            let one_shot = request_stream(&machines, &workloads, &opts, &cfg);
            let mut gen = StreamGenerator::new(&machines, &workloads, &opts, &cfg);
            let mut chunked = gen.take(50);
            chunked.extend(gen.take(100));
            chunked.extend(gen.take(50));
            assert_eq!(
                one_shot, chunked,
                "{pattern:?}: chunked take() must concatenate to the one-shot stream"
            );
        }
    }

    #[test]
    fn state_snapshot_replays_the_stream_tail() {
        let (machines, workloads) = catalog();
        let opts = MethodOptions::fast();
        let cfg = config(StreamPattern::Mixed);
        let mut gen = StreamGenerator::new(&machines, &workloads, &opts, &cfg);
        let _head = gen.take(73);
        let snap = gen.state();
        let tail = gen.take(60);
        // Resume from the snapshot on the SAME generator...
        gen.restore(snap);
        assert_eq!(gen.take(60), tail, "restore must replay the identical tail");
        // ...and on a FRESH generator with equal construction parameters.
        let mut other = StreamGenerator::new(&machines, &workloads, &opts, &cfg);
        other.restore(snap);
        assert_eq!(other.state(), snap);
        assert_eq!(other.take(60), tail, "snapshots transfer between generators");
    }

    #[test]
    fn cold_streams_cycle_through_every_pair() {
        let (machines, workloads) = catalog();
        let stream = request_stream(
            &machines,
            &workloads,
            &MethodOptions::fast(),
            &config(StreamPattern::Cold),
        );
        let pairs = machines.len() * workloads.len();
        assert_eq!(distinct_pairs(&stream), pairs);
        // The first `pairs` requests visit each pair exactly once.
        assert_eq!(distinct_pairs(&stream[..pairs]), pairs);
    }

    #[test]
    fn hot_streams_concentrate_on_the_first_pair() {
        let (machines, workloads) = catalog();
        let stream = request_stream(
            &machines,
            &workloads,
            &MethodOptions::fast(),
            &config(StreamPattern::Hot),
        );
        let hot_hits = stream
            .iter()
            .filter(|r| r.machine == machines[0].name && r.workload == workloads[0].name)
            .count();
        assert!(
            hot_hits > stream.len() * 7 / 10,
            "hot pair got only {hot_hits}/{}",
            stream.len()
        );
    }

    #[test]
    fn zipfian_streams_favor_low_ranks_but_spread() {
        let (machines, workloads) = catalog();
        let stream = request_stream(
            &machines,
            &workloads,
            &MethodOptions::fast(),
            &config(StreamPattern::Zipfian),
        );
        let first_pair = stream
            .iter()
            .filter(|r| r.machine == machines[0].name && r.workload == workloads[0].name)
            .count();
        assert!(first_pair > stream.len() / 10, "rank 0 must dominate");
        assert!(
            distinct_pairs(&stream) > 3,
            "the tail must still be sampled"
        );
    }

    #[test]
    fn streams_only_name_supported_methods() {
        let (machines, workloads) = catalog();
        let opts = MethodOptions::fast();
        let stream = request_stream(&machines, &workloads, &opts, &config(StreamPattern::Cold));
        for r in &stream {
            let machine = machines.iter().find(|m| m.name == r.machine).unwrap();
            let supported: Vec<String> = GridMethod::standard(machine, &opts)
                .into_iter()
                .map(|g| g.label)
                .collect();
            assert!(
                supported.contains(&r.method),
                "{} does not support {}",
                r.machine,
                r.method
            );
        }
    }

    #[test]
    fn mixed_streams_split_two_tenants_near_the_configured_share() {
        let (machines, workloads) = catalog();
        let mut cfg = config(StreamPattern::Mixed);
        cfg.requests = 400;
        let stream = request_stream(&machines, &workloads, &MethodOptions::fast(), &cfg);
        let cold = stream
            .iter()
            .filter(|r| r.catalog.as_deref() == Some(MIXED_COLD_CATALOG))
            .count();
        let hot = stream.iter().filter(|r| r.catalog.is_none()).count();
        assert_eq!(cold + hot, stream.len(), "every request belongs to a tenant");
        // 10% nominal cold share: allow generous slack, but both tenants
        // must be present and the hot one must dominate.
        assert!(cold > stream.len() / 20, "cold tenant too thin: {cold}");
        assert!(cold < stream.len() / 4, "cold tenant too fat: {cold}");
        // Reproducible like every other pattern.
        let again = request_stream(&machines, &workloads, &MethodOptions::fast(), &cfg);
        assert_eq!(stream, again);
        // The catalog namespace doubles the distinct-pair count relative
        // to the union of (machine, workload) names each tenant touches.
        let hot_only: Vec<_> = stream.iter().filter(|r| r.catalog.is_none()).cloned().collect();
        let cold_only: Vec<_> =
            stream.iter().filter(|r| r.catalog.is_some()).cloned().collect();
        assert_eq!(
            distinct_pairs(&stream),
            distinct_pairs(&hot_only) + distinct_pairs(&cold_only)
        );
        assert!(StreamPattern::Mixed.is_multi_tenant());
        assert!(!StreamPattern::Zipfian.is_multi_tenant());
        assert_eq!(StreamPattern::parse("mixed"), Some(StreamPattern::Mixed));
        assert_eq!(StreamPattern::Mixed.name(), "mixed");
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), Some(1.0));
        assert_eq!(percentile(&sorted, 0.5), Some(2.0));
        assert_eq!(percentile(&sorted, 0.51), Some(3.0));
        assert_eq!(percentile(&sorted, 0.99), Some(4.0));
        assert_eq!(percentile(&sorted, 1.0), Some(4.0));
    }

    #[test]
    fn percentile_len_two_median_is_the_lower_sample() {
        // Nearest rank never interpolates: ceil(0.5 * 2) = rank 1.
        assert_eq!(percentile(&[10.0, 20.0], 0.5), Some(10.0));
        assert_eq!(percentile(&[10.0, 20.0], 0.51), Some(20.0));
        assert_eq!(percentile(&[10.0, 20.0], 1.0), Some(20.0));
    }

    #[test]
    fn percentile_of_empty_sample_is_none() {
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(percentile(&[], p), None);
        }
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5));
        }
    }
}
