//! Collection-overhead benchmark — the paper's [38] aside ("The overhead
//! of profiling using PMU hardware counters") and the Table 3 note that
//! the LBR method pays "overhead (in collection and post-processing)".
//!
//! Measures the cost each sampling configuration adds to a fixed
//! execution, plus the post-processing cost of the three attribution
//! rules.

use countertrust::attrib::attribute;
use countertrust::methods::{Attribution, MethodKind, MethodOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ct_pmu::Sampler;
use ct_sim::{Cpu, MachineModel, RunConfig};
use std::hint::black_box;

fn workload() -> ct_isa::Program {
    ct_workloads::kernels::g4box(20_000)
}

fn bench_collection(c: &mut Criterion) {
    let machine = MachineModel::ivy_bridge();
    let program = workload();
    let run_config = RunConfig::default();
    let opts = MethodOptions::default();

    let mut group = c.benchmark_group("collection");
    group.bench_function("no_observer", |b| {
        b.iter(|| {
            let s = Cpu::new(&machine)
                .run(black_box(&program), &run_config, &mut [])
                .unwrap();
            black_box(s.instructions)
        });
    });
    for kind in [
        MethodKind::Classic,
        MethodKind::Precise,
        MethodKind::PreciseFix,
        MethodKind::Lbr,
    ] {
        let inst = kind.instantiate(&machine, &opts).unwrap();
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut sampler = Sampler::new(&machine, &inst.config).unwrap();
                Cpu::new(&machine)
                    .run(black_box(&program), &run_config, &mut [&mut sampler])
                    .unwrap();
                black_box(sampler.into_batch().len())
            });
        });
    }
    group.finish();
}

fn bench_postprocessing(c: &mut Criterion) {
    let machine = MachineModel::ivy_bridge();
    let program = workload();
    let cfg = ct_isa::Cfg::build(&program);
    let run_config = RunConfig::default();
    let opts = MethodOptions {
        inst_period: 400,
        branch_period: 80,
        ..MethodOptions::default()
    };

    let mut group = c.benchmark_group("postprocessing");
    for (kind, attribution) in [
        (MethodKind::Precise, Attribution::Plain),
        (MethodKind::PreciseFix, Attribution::IpFix),
        (MethodKind::Lbr, Attribution::LbrWalk),
    ] {
        let inst = kind.instantiate(&machine, &opts).unwrap();
        let mut sampler = Sampler::new(&machine, &inst.config).unwrap();
        let nominal = sampler.nominal_period();
        Cpu::new(&machine)
            .run(&program, &run_config, &mut [&mut sampler])
            .unwrap();
        let batch = sampler.into_batch();
        assert!(!batch.is_empty());
        group.bench_function(format!("{}_{}_samples", kind.label(), batch.len()), |b| {
            b.iter_batched(
                || batch.clone(),
                |batch| black_box(attribute(&batch, &cfg, attribution, nominal)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_collection, bench_postprocessing
}
criterion_main!(benches);
