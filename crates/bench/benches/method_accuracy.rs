//! End-to-end profiling cost per method: one full `Session::run_method`
//! (execute + sample + attribute + score) on a kernel. This is the unit of
//! work every Table 1/2 cell repeats five times; the bench documents what
//! regenerating the tables costs and how the methods compare in harness
//! overhead (LBR's post-processing shows up here, per Table 3's
//! "Overhead (in collection and post-processing)" drawback).

use countertrust::methods::{MethodKind, MethodOptions};
use countertrust::Session;
use criterion::{criterion_group, criterion_main, Criterion};
use ct_sim::MachineModel;
use std::hint::black_box;

fn bench_session_per_method(c: &mut Criterion) {
    let machine = MachineModel::ivy_bridge();
    let program = ct_workloads::kernels::g4box(20_000);
    let opts = MethodOptions::fast();

    let mut group = c.benchmark_group("session_run_method");
    for kind in MethodKind::ALL {
        let Some(inst) = kind.instantiate(&machine, &opts) else {
            continue;
        };
        group.bench_function(kind.label(), |b| {
            let mut session = Session::new(&machine, &program);
            // Collect the reference outside the measured loop, as the
            // table harness does (one reference per session).
            session.reference().unwrap();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let run = session.run_method(&inst, seed).unwrap();
                black_box(run.accuracy_error)
            });
        });
    }
    group.finish();
}

fn bench_reference_collection(c: &mut Criterion) {
    let machine = MachineModel::ivy_bridge();
    let program = ct_workloads::kernels::g4box(20_000);
    c.bench_function("reference_profile_collect", |b| {
        b.iter(|| {
            let r = ct_instrument::ReferenceProfile::collect(
                &machine,
                black_box(&program),
                &ct_sim::RunConfig::default(),
            )
            .unwrap();
            black_box(r.total_instructions)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_session_per_method, bench_reference_collection
}
criterion_main!(benches);
