//! Substrate throughput: retired instructions per second of the CPU model
//! across workload types, establishing that the evaluation harness can
//! afford the paper's full machine × method × workload grid.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_sim::{event::NullObserver, Cpu, MachineModel, RunConfig};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let machine = MachineModel::ivy_bridge();
    let run_config = RunConfig::default();
    let cases: Vec<(&str, ct_isa::Program)> = vec![
        (
            "latency_biased",
            ct_workloads::kernels::latency_biased(50_000),
        ),
        ("callchain", ct_workloads::kernels::callchain(5_000, 10)),
        ("mcf", ct_workloads::apps::mcf(1 << 14, 200)),
        ("fullcms", ct_workloads::apps::fullcms(500)),
    ];

    let mut group = c.benchmark_group("simulator_throughput");
    for (name, program) in cases {
        let instructions = Cpu::new(&machine)
            .run(&program, &run_config, &mut [&mut NullObserver])
            .unwrap()
            .instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = Cpu::new(&machine)
                    .run(black_box(&program), &run_config, &mut [&mut NullObserver])
                    .unwrap();
                black_box(s.cycles)
            });
        });
    }
    group.finish();
}

fn bench_machines(c: &mut Criterion) {
    let program = ct_workloads::kernels::test40(20_000);
    let run_config = RunConfig::default();
    let mut group = c.benchmark_group("per_machine");
    for machine in MachineModel::paper_machines() {
        group.bench_function(machine.name.clone(), |b| {
            b.iter(|| {
                let s = Cpu::new(&machine)
                    .run(black_box(&program), &run_config, &mut [&mut NullObserver])
                    .unwrap();
                black_box(s.cycles)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_throughput, bench_machines
}
criterion_main!(benches);
