//! Disassembly: rendering instructions and programs as assembler text.
//!
//! The format round-trips through [`crate::asm::assemble`]; property tests in
//! the assembler module rely on this.

use crate::insn::{Insn, Opcode};
use crate::program::Program;
use std::fmt;
use std::fmt::Write as _;

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self.op {
            Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Rem(d, a, b) => write!(f, "rem {d}, {a}, {b}"),
            And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Shl(d, a, b) => write!(f, "shl {d}, {a}, {b}"),
            Shr(d, a, b) => write!(f, "shr {d}, {a}, {b}"),
            AddI(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            SubI(d, a, i) => write!(f, "subi {d}, {a}, {i}"),
            MulI(d, a, i) => write!(f, "muli {d}, {a}, {i}"),
            AndI(d, a, i) => write!(f, "andi {d}, {a}, {i}"),
            XorI(d, a, i) => write!(f, "xori {d}, {a}, {i}"),
            Mov(d, s) => write!(f, "mov {d}, {s}"),
            MovI(d, i) => write!(f, "movi {d}, {i}"),
            FAdd(d, a, b) => write!(f, "fadd {d}, {a}, {b}"),
            FSub(d, a, b) => write!(f, "fsub {d}, {a}, {b}"),
            FMul(d, a, b) => write!(f, "fmul {d}, {a}, {b}"),
            FDiv(d, a, b) => write!(f, "fdiv {d}, {a}, {b}"),
            FSqrt(d, a) => write!(f, "fsqrt {d}, {a}"),
            FMov(d, a) => write!(f, "fmov {d}, {a}"),
            FMovI(d, v) => write!(f, "fmovi {d}, {v:?}"),
            CvtIF(d, s) => write!(f, "cvtif {d}, {s}"),
            CvtFI(d, s) => write!(f, "cvtfi {d}, {s}"),
            Load(d, b, o) => write!(f, "load {d}, [{b}{o:+}]"),
            Store(v, b, o) => write!(f, "store {v}, [{b}{o:+}]"),
            FLoad(d, b, o) => write!(f, "fload {d}, [{b}{o:+}]"),
            FStore(v, b, o) => write!(f, "fstore {v}, [{b}{o:+}]"),
            Jmp(t) => write!(f, "jmp @{t}"),
            JmpInd(r) => write!(f, "jmpind {r}"),
            Br(c, a, b, t) => write!(f, "br{} {a}, {b}, @{t}", c.mnemonic()),
            Brz(r, t) => write!(f, "brz {r}, @{t}"),
            Brnz(r, t) => write!(f, "brnz {r}, @{t}"),
            Call(t) => write!(f, "call @{t}"),
            CallInd(r) => write!(f, "callind {r}"),
            Ret => write!(f, "ret"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

/// Renders a whole program as annotated assembler text: function headers,
/// addresses and instructions. Intended for debugging and golden tests, not
/// for re-assembly (it uses `@addr` numeric targets rather than labels).
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program: {} ({} insns)", program.name, program.len());
    for (i, insn) in program.insns.iter().enumerate() {
        if let Some(func) = program
            .symbols
            .functions()
            .iter()
            .find(|f| f.entry == i as u32)
        {
            let _ = writeln!(out, "{}:", func.name);
        }
        let _ = writeln!(out, "  {i:6}  {insn}");
    }
    out
}

/// Renders a program as **re-assemblable** source: `.data`/`.init`
/// directives, `.func`/`.endfunc` blocks in entry order, and one
/// instruction per line with `@addr` numeric branch targets.
///
/// For any validated program whose `init_data` indices lie inside
/// `data_words` (always true of builder output), feeding the result
/// back through [`crate::asm::assemble`] reproduces a structurally
/// equal [`Program`] — the round-trip the `props.rs` property tier
/// pins, and the renderer behind the `.ctasm` catalog emitter.
#[must_use]
pub fn to_asm(program: &Program) -> String {
    let mut out = String::new();
    if program.data_words > 0 {
        let _ = writeln!(out, ".data {}", program.data_words);
    }
    for (idx, val) in &program.init_data {
        let _ = writeln!(out, ".init {idx}, {val}");
    }
    let funcs = program.symbols.functions();
    let mut next = 0usize;
    let mut open_end: Option<u32> = None;
    // Walk addresses 0..=len so a function ending at the last
    // instruction still gets its `.endfunc`.
    for a in 0..=program.insns.len() as u32 {
        if open_end == Some(a) {
            let _ = writeln!(out, ".endfunc");
            open_end = None;
        }
        while next < funcs.len() && funcs[next].entry == a && open_end.is_none() {
            let f = &funcs[next];
            let _ = writeln!(out, ".func {}", f.name);
            next += 1;
            if f.end == a {
                let _ = writeln!(out, ".endfunc");
            } else {
                open_end = Some(f.end);
            }
        }
        if let Some(insn) = program.insns.get(a as usize) {
            let _ = writeln!(out, "    {insn}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Function, SymbolTable};
    use crate::reg::names::*;

    #[test]
    fn renders_instructions() {
        assert_eq!(
            Insn::new(Opcode::Add(R1, R2, R3)).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Insn::new(Opcode::Load(R1, R2, -8)).to_string(),
            "load r1, [r2-8]"
        );
        assert_eq!(
            Insn::new(Opcode::Store(R1, R2, 4)).to_string(),
            "store r1, [r2+4]"
        );
        assert_eq!(
            Insn::new(Opcode::Br(crate::Cond::Lt, R1, R2, 7)).to_string(),
            "brlt r1, r2, @7"
        );
        assert_eq!(
            Insn::new(Opcode::FMovI(F1, 1.5)).to_string(),
            "fmovi f1, 1.5"
        );
    }

    #[test]
    fn disassemble_includes_function_names() {
        let insns = vec![Insn::new(Opcode::Nop), Insn::new(Opcode::Halt)];
        let sym = SymbolTable::new(vec![Function {
            name: "main".into(),
            entry: 0,
            end: 2,
        }]);
        let p = Program::new("t", insns, sym, 0).unwrap();
        let text = disassemble(&p);
        assert!(text.contains("main:"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn to_asm_round_trips_through_assemble() {
        let src = r#"
            .data 16
            .init 3, 7
            .init 4, -1
            .func main
                movi r1, 10
                call helper
                brnz r1, @0
                halt
            .endfunc
            .func helper
                load r2, [r1+4]
                store r2, [r1-8]
                fmovi f1, 1.5
                ret
            .endfunc
        "#;
        let p = crate::asm::assemble("t", src).unwrap();
        let rendered = to_asm(&p);
        let back = crate::asm::assemble("t", &rendered).unwrap();
        assert_eq!(p, back, "to_asm output must re-assemble structurally equal");
    }

    #[test]
    fn to_asm_closes_function_ending_at_last_insn() {
        let p = crate::asm::assemble("t", ".func main\n halt\n.endfunc\n").unwrap();
        let rendered = to_asm(&p);
        assert!(rendered.ends_with(".endfunc\n"));
        assert_eq!(p, crate::asm::assemble("t", &rendered).unwrap());
    }
}
