//! A small two-pass text assembler.
//!
//! The syntax mirrors the disassembler output, with labels instead of
//! numeric targets:
//!
//! ```text
//! .data 1024            ; data segment size in words
//! .init 10, 42          ; mem[10] = 42
//! .func main
//!     movi r1, 100
//! loop:
//!     subi r1, r1, 1
//!     brnz r1, loop
//!     halt
//! .endfunc
//! ```
//!
//! Comments start with `;` or `#`. Branch targets may also be written as
//! `@N` absolute addresses (as produced by the disassembler for round-trip
//! tests).

use crate::error::IsaError;
use crate::insn::{Addr, Cond, Insn, Opcode};
use crate::program::{Function, Program, SymbolTable};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;

/// Assembles `source` into a validated [`Program`] named `name`.
pub fn assemble(name: &str, source: &str) -> Result<Program, IsaError> {
    Assembler::new().run(name, source)
}

#[derive(Default)]
struct Assembler {
    insns: Vec<Insn>,
    labels: HashMap<String, Addr>,
    funcs: Vec<Function>,
    open_func: Option<(String, Addr)>,
    data_words: usize,
    init_data: Vec<(usize, i64)>,
    // (insn index, label, line) patched in pass 2
    fixups: Vec<(usize, String, usize)>,
    // call fixups resolved against function names
    call_fixups: Vec<(usize, String, usize)>,
}

impl Assembler {
    fn new() -> Self {
        Self::default()
    }

    fn run(mut self, name: &str, source: &str) -> Result<Program, IsaError> {
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let text = strip_comment(raw).trim();
            if text.is_empty() {
                continue;
            }
            self.line(text, line)?;
        }
        if let Some((fname, _)) = &self.open_func {
            return Err(IsaError::Parse {
                line: 0,
                detail: format!("function `{fname}` not closed with .endfunc"),
            });
        }
        // Pass 2: patch label and call references.
        for (idx, label, line) in std::mem::take(&mut self.fixups) {
            let addr = self.resolve(&label, line)?;
            self.insns[idx].op = match self.insns[idx].op {
                Opcode::Jmp(_) => Opcode::Jmp(addr),
                Opcode::Br(c, a, b, _) => Opcode::Br(c, a, b, addr),
                Opcode::Brz(r, _) => Opcode::Brz(r, addr),
                Opcode::Brnz(r, _) => Opcode::Brnz(r, addr),
                other => other,
            };
        }
        for (idx, target, line) in std::mem::take(&mut self.call_fixups) {
            let addr = if let Some(f) = self.funcs.iter().find(|f| f.name == target) {
                f.entry
            } else {
                self.resolve(&target, line)?
            };
            self.insns[idx].op = Opcode::Call(addr);
        }
        let mut p = Program::new(
            name,
            self.insns,
            SymbolTable::new(self.funcs),
            self.data_words,
        )?;
        p.init_data = self.init_data;
        Ok(p)
    }

    fn resolve(&self, label: &str, line: usize) -> Result<Addr, IsaError> {
        if let Some(rest) = label.strip_prefix('@') {
            return rest.parse().map_err(|_| IsaError::Parse {
                line,
                detail: format!("bad absolute target `{label}`"),
            });
        }
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| IsaError::UndefinedLabel {
                line,
                label: label.to_string(),
            })
    }

    fn line(&mut self, text: &str, line: usize) -> Result<(), IsaError> {
        if let Some(rest) = text.strip_prefix(".data") {
            self.data_words = parse_int(rest.trim(), line)? as usize;
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix(".init") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(IsaError::Parse {
                    line,
                    detail: ".init takes `index, value`".into(),
                });
            }
            let idx = parse_int(parts[0], line)? as usize;
            let val = parse_int(parts[1], line)?;
            self.init_data.push((idx, val));
            if idx >= self.data_words {
                self.data_words = idx + 1;
            }
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix(".func") {
            if self.open_func.is_some() {
                return Err(IsaError::Parse {
                    line,
                    detail: "nested .func".into(),
                });
            }
            let fname = rest.trim().to_string();
            if fname.is_empty() {
                return Err(IsaError::Parse {
                    line,
                    detail: ".func needs a name".into(),
                });
            }
            self.open_func = Some((fname, self.insns.len() as Addr));
            return Ok(());
        }
        if text == ".endfunc" {
            let (fname, entry) = self.open_func.take().ok_or_else(|| IsaError::Parse {
                line,
                detail: ".endfunc without .func".into(),
            })?;
            self.funcs.push(Function {
                name: fname,
                entry,
                end: self.insns.len() as Addr,
            });
            return Ok(());
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim().to_string();
            if self.labels.contains_key(&label) {
                return Err(IsaError::DuplicateLabel { line, label });
            }
            self.labels.insert(label, self.insns.len() as Addr);
            return Ok(());
        }
        let insn = self.instruction(text, line)?;
        self.insns.push(insn);
        Ok(())
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<Insn, IsaError> {
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let idx = self.insns.len();

        macro_rules! rrr {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, line)?;
                Opcode::$variant(reg(ops[0], line)?, reg(ops[1], line)?, reg(ops[2], line)?)
            }};
        }
        macro_rules! rri {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, line)?;
                Opcode::$variant(
                    reg(ops[0], line)?,
                    reg(ops[1], line)?,
                    parse_int(ops[2], line)?,
                )
            }};
        }
        macro_rules! fff {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, line)?;
                Opcode::$variant(
                    freg(ops[0], line)?,
                    freg(ops[1], line)?,
                    freg(ops[2], line)?,
                )
            }};
        }

        let op = match mnemonic {
            "add" => rrr!(Add),
            "sub" => rrr!(Sub),
            "mul" => rrr!(Mul),
            "div" => rrr!(Div),
            "rem" => rrr!(Rem),
            "and" => rrr!(And),
            "or" => rrr!(Or),
            "xor" => rrr!(Xor),
            "shl" => rrr!(Shl),
            "shr" => rrr!(Shr),
            "addi" => rri!(AddI),
            "subi" => rri!(SubI),
            "muli" => rri!(MulI),
            "andi" => rri!(AndI),
            "xori" => rri!(XorI),
            "mov" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::Mov(reg(ops[0], line)?, reg(ops[1], line)?)
            }
            "movi" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::MovI(reg(ops[0], line)?, parse_int(ops[1], line)?)
            }
            "fadd" => fff!(FAdd),
            "fsub" => fff!(FSub),
            "fmul" => fff!(FMul),
            "fdiv" => fff!(FDiv),
            "fsqrt" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::FSqrt(freg(ops[0], line)?, freg(ops[1], line)?)
            }
            "fmov" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::FMov(freg(ops[0], line)?, freg(ops[1], line)?)
            }
            "fmovi" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                let v: f64 = ops[1].parse().map_err(|_| IsaError::Parse {
                    line,
                    detail: format!("bad float `{}`", ops[1]),
                })?;
                Opcode::FMovI(freg(ops[0], line)?, v)
            }
            "cvtif" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::CvtIF(freg(ops[0], line)?, reg(ops[1], line)?)
            }
            "cvtfi" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                Opcode::CvtFI(reg(ops[0], line)?, freg(ops[1], line)?)
            }
            "load" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                let (b, o) = mem_operand(ops[1], line)?;
                Opcode::Load(reg(ops[0], line)?, b, o)
            }
            "store" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                let (b, o) = mem_operand(ops[1], line)?;
                Opcode::Store(reg(ops[0], line)?, b, o)
            }
            "fload" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                let (b, o) = mem_operand(ops[1], line)?;
                Opcode::FLoad(freg(ops[0], line)?, b, o)
            }
            "fstore" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                let (b, o) = mem_operand(ops[1], line)?;
                Opcode::FStore(freg(ops[0], line)?, b, o)
            }
            "jmp" => {
                expect_ops(&ops, 1, mnemonic, line)?;
                self.fixups.push((idx, ops[0].to_string(), line));
                Opcode::Jmp(0)
            }
            "jmpind" => {
                expect_ops(&ops, 1, mnemonic, line)?;
                Opcode::JmpInd(reg(ops[0], line)?)
            }
            "breq" | "brne" | "brlt" | "brle" | "brgt" | "brge" => {
                expect_ops(&ops, 3, mnemonic, line)?;
                let cond = match &mnemonic[2..] {
                    "eq" => Cond::Eq,
                    "ne" => Cond::Ne,
                    "lt" => Cond::Lt,
                    "le" => Cond::Le,
                    "gt" => Cond::Gt,
                    _ => Cond::Ge,
                };
                self.fixups.push((idx, ops[2].to_string(), line));
                Opcode::Br(cond, reg(ops[0], line)?, reg(ops[1], line)?, 0)
            }
            "brz" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                self.fixups.push((idx, ops[1].to_string(), line));
                Opcode::Brz(reg(ops[0], line)?, 0)
            }
            "brnz" => {
                expect_ops(&ops, 2, mnemonic, line)?;
                self.fixups.push((idx, ops[1].to_string(), line));
                Opcode::Brnz(reg(ops[0], line)?, 0)
            }
            "call" => {
                expect_ops(&ops, 1, mnemonic, line)?;
                self.call_fixups.push((idx, ops[0].to_string(), line));
                Opcode::Call(0)
            }
            "callind" => {
                expect_ops(&ops, 1, mnemonic, line)?;
                Opcode::CallInd(reg(ops[0], line)?)
            }
            "ret" => Opcode::Ret,
            "nop" => Opcode::Nop,
            "halt" => Opcode::Halt,
            other => {
                return Err(IsaError::Parse {
                    line,
                    detail: format!("unknown mnemonic `{other}`"),
                })
            }
        };
        Ok(Insn::new(op))
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn expect_ops(ops: &[&str], n: usize, mnemonic: &str, line: usize) -> Result<(), IsaError> {
    if ops.len() != n {
        return Err(IsaError::Parse {
            line,
            detail: format!("`{mnemonic}` takes {n} operands, got {}", ops.len()),
        });
    }
    Ok(())
}

fn parse_int(s: &str, line: usize) -> Result<i64, IsaError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| IsaError::Parse {
        line,
        detail: format!("bad integer `{s}`"),
    })
}

fn reg(s: &str, line: usize) -> Result<Reg, IsaError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::try_new)
        .ok_or_else(|| IsaError::Parse {
            line,
            detail: format!("bad register `{s}`"),
        })
}

fn freg(s: &str, line: usize) -> Result<FReg, IsaError> {
    s.strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(FReg::try_new)
        .ok_or_else(|| IsaError::Parse {
            line,
            detail: format!("bad fp register `{s}`"),
        })
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]`.
fn mem_operand(s: &str, line: usize) -> Result<(Reg, i64), IsaError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| IsaError::Parse {
            line,
            detail: format!("bad memory operand `{s}`"),
        })?;
    let (base, off) = match inner.find(['+', '-']) {
        Some(i) => {
            let (b, rest) = inner.split_at(i);
            (b.trim(), parse_int(rest, line)?)
        }
        None => (inner.trim(), 0),
    };
    Ok((reg(base, line)?, off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn assembles_loop() {
        let p = assemble(
            "t",
            r#"
            .data 8
            .func main
                movi r1, 10
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.insns[2].op, Opcode::Brnz(R1, 1));
        assert_eq!(p.data_words, 8);
    }

    #[test]
    fn memory_operands() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r2, 0
                load r1, [r2+4]
                store r1, [r2-0]
                fload f1, [r2]
                fstore f1, [r2+8]
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[1].op, Opcode::Load(R1, R2, 4));
        assert_eq!(p.insns[3].op, Opcode::FLoad(F1, R2, 0));
    }

    #[test]
    fn call_and_functions() {
        let p = assemble(
            "t",
            r#"
            .func main
                call helper
                halt
            .endfunc
            .func helper
                ret
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::Call(2));
    }

    #[test]
    fn cond_branches() {
        let p = assemble(
            "t",
            r#"
            .func main
            top:
                breq r1, r2, top
                brlt r1, r2, top
                brge r1, r2, @0
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::Br(Cond::Eq, R1, R2, 0));
        assert_eq!(p.insns[2].op, Opcode::Br(Cond::Ge, R1, R2, 0));
    }

    #[test]
    fn undefined_label_errors() {
        let e = assemble("t", ".func main\n jmp nowhere\n halt\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::UndefinedLabel { .. }));
    }

    #[test]
    fn duplicate_label_errors() {
        let e = assemble("t", ".func main\nx:\nx:\n halt\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::DuplicateLabel { .. }));
    }

    #[test]
    fn unknown_mnemonic_errors() {
        let e = assemble("t", ".func main\n frobnicate r1\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { .. }));
    }

    #[test]
    fn unclosed_func_errors() {
        let e = assemble("t", ".func main\n halt\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { .. }));
    }

    #[test]
    fn comments_and_hex() {
        let p = assemble(
            "t",
            "; leading comment\n.func main\n movi r1, 0x10 # trailing\n halt\n.endfunc\n",
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 16));
    }

    #[test]
    fn init_directive() {
        let p = assemble("t", ".init 5, -3\n.func main\n halt\n.endfunc\n").unwrap();
        assert_eq!(p.init_data, vec![(5, -3)]);
        assert!(p.data_words >= 6);
    }
}
