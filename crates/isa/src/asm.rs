//! A small two-pass text assembler — the front-end of the
//! workloads-as-data pipeline.
//!
//! The syntax mirrors the disassembler output, with labels instead of
//! numeric targets, plus named constants and constant expressions:
//!
//! ```text
//! .const ROWS = 32            ; named constants, usable in any integer slot
//! .const COLS = ROWS * 2      ; expressions may reference earlier constants
//! .data ROWS * COLS           ; data segment size in words
//! .init 10, 42                ; mem[10] = 42
//! .init 11, 1, 2, 3           ; mem[11..14] = 1, 2, 3 (value list)
//! .init 20..24, -1            ; mem[20..24) = -1      (range fill)
//! .func main
//!     movi r1, ROWS * COLS
//! loop:
//!     subi r1, r1, 1
//!     brnz r1, loop
//!     halt
//! .endfunc
//! ```
//!
//! Integer operands are constant expressions over `+ - * / %`, unary
//! `+`/`-`, parentheses, decimal and `0x` hex literals, and `.const`
//! names (defined before use). Comments start with `;` or `#`. Branch
//! targets may also be written as `@N` absolute addresses (as produced
//! by the disassembler for round-trip tests).
//!
//! Every diagnostic carries the 1-based source line, and — for syntax
//! errors — the 1-based column of the offending token, so a catalog
//! loader can point at the exact spot in a tenant-supplied file.
//!
//! The data segment is hard-bounded at [`MAX_DATA_WORDS`]: `.data`
//! sizes and `.init` indices past the bound (notably huge `.init
//! LO..HI` range fills) are rejected before any memory is laid out, so
//! assembling a hostile file never allocates unboundedly.
//!
//! [`assemble_with`] additionally takes **constant overrides**: the
//! loader's hook for scaling a checked-in program (`.const ITERS =
//! 1900000` in the file, `ITERS = 19000` at load time) without editing
//! the source. Overriding a name the source never defines is a typed
//! error ([`IsaError::UnknownOverride`]) — the manifest/source mismatch
//! guard.

use crate::error::IsaError;
use crate::insn::{Addr, Cond, Insn, Opcode};
use crate::program::{Function, Program, SymbolTable};
use crate::reg::{FReg, Reg};
use std::collections::{HashMap, HashSet};

/// Hard upper bound on the data segment the assembler will lay out: no
/// `.data` size and no `.init` index (including every index implied by
/// a `.init LO..HI` range fill) may reach past this many words.
///
/// This is a structural bound of the front-end, enforced *before* any
/// fill loop runs, so a hostile source line like
/// `.init 0..0x4000000000000000, 1` is a typed
/// [`IsaError::DataTooLarge`] instead of an unbounded allocation.
/// Catalog loaders layer their own tighter, configurable caps on top
/// after assembly (see `workloads::loader::LoaderLimits`).
pub const MAX_DATA_WORDS: usize = 1 << 24;

/// Assembles `source` into a validated [`Program`] named `name`.
pub fn assemble(name: &str, source: &str) -> Result<Program, IsaError> {
    assemble_with(name, source, &[])
}

/// Assembles `source` with `.const` overrides: each `(name, value)`
/// pair replaces the value of the `.const name = …` definition in the
/// source (the definition's own expression is still parsed, then
/// discarded). Every override must name a constant the source defines.
pub fn assemble_with(
    name: &str,
    source: &str,
    overrides: &[(&str, i64)],
) -> Result<Program, IsaError> {
    Assembler::new(overrides).run(name, source)
}

/// Per-line parse context: the 1-based line number plus the raw line
/// text, from which token columns are recovered by pointer arithmetic
/// (every operand is a subslice of the raw line).
#[derive(Clone, Copy)]
struct Ctx<'s> {
    line: usize,
    raw: &'s str,
}

impl<'s> Ctx<'s> {
    /// 1-based column of `token` within the raw line (0 when the token
    /// is not a subslice of it — never the case for assembler-produced
    /// slices).
    fn col_of(&self, token: &str) -> usize {
        let raw_start = self.raw.as_ptr() as usize;
        let tok_start = token.as_ptr() as usize;
        if (raw_start..raw_start + self.raw.len() + 1).contains(&tok_start) {
            tok_start - raw_start + 1
        } else {
            0
        }
    }

    /// A syntax error at `token`.
    fn err(&self, token: &str, detail: impl Into<String>) -> IsaError {
        IsaError::Parse {
            line: self.line,
            col: self.col_of(token),
            detail: detail.into(),
        }
    }
}

struct Assembler<'o> {
    insns: Vec<Insn>,
    labels: HashMap<String, Addr>,
    consts: HashMap<String, i64>,
    overrides: &'o [(&'o str, i64)],
    overridden: HashSet<String>,
    funcs: Vec<Function>,
    /// `(name, entry, line of the .func)` — the line makes the
    /// unclosed-function diagnostic point at the opener.
    open_func: Option<(String, Addr, usize)>,
    data_words: usize,
    init_data: Vec<(usize, i64)>,
    // (insn index, label, line, col) patched in pass 2
    fixups: Vec<(usize, String, usize, usize)>,
    // call fixups resolved against function names
    call_fixups: Vec<(usize, String, usize, usize)>,
}

impl<'o> Assembler<'o> {
    fn new(overrides: &'o [(&'o str, i64)]) -> Self {
        Self {
            insns: Vec::new(),
            labels: HashMap::new(),
            consts: HashMap::new(),
            overrides,
            overridden: HashSet::new(),
            funcs: Vec::new(),
            open_func: None,
            data_words: 0,
            init_data: Vec::new(),
            fixups: Vec::new(),
            call_fixups: Vec::new(),
        }
    }

    fn run(mut self, name: &str, source: &str) -> Result<Program, IsaError> {
        for (lineno, raw) in source.lines().enumerate() {
            let ctx = Ctx {
                line: lineno + 1,
                raw,
            };
            let text = strip_comment(raw).trim();
            if text.is_empty() {
                continue;
            }
            self.line(text, ctx)?;
        }
        if let Some((fname, _, line)) = &self.open_func {
            return Err(IsaError::Parse {
                line: *line,
                col: 1,
                detail: format!("function `{fname}` not closed with .endfunc"),
            });
        }
        if let Some((name, _)) = self
            .overrides
            .iter()
            .find(|(n, _)| !self.overridden.contains(*n))
        {
            return Err(IsaError::UnknownOverride {
                name: (*name).to_string(),
            });
        }
        // Pass 2: patch label and call references.
        for (idx, label, line, col) in std::mem::take(&mut self.fixups) {
            let addr = self.resolve(&label, line, col)?;
            self.insns[idx].op = match self.insns[idx].op {
                Opcode::Jmp(_) => Opcode::Jmp(addr),
                Opcode::Br(c, a, b, _) => Opcode::Br(c, a, b, addr),
                Opcode::Brz(r, _) => Opcode::Brz(r, addr),
                Opcode::Brnz(r, _) => Opcode::Brnz(r, addr),
                other => other,
            };
        }
        for (idx, target, line, col) in std::mem::take(&mut self.call_fixups) {
            let addr = if let Some(f) = self.funcs.iter().find(|f| f.name == target) {
                f.entry
            } else {
                self.resolve(&target, line, col)?
            };
            self.insns[idx].op = Opcode::Call(addr);
        }
        let mut p = Program::new(
            name,
            self.insns,
            SymbolTable::new(self.funcs),
            self.data_words,
        )?;
        p.init_data = self.init_data;
        Ok(p)
    }

    fn resolve(&self, label: &str, line: usize, col: usize) -> Result<Addr, IsaError> {
        if let Some(rest) = label.strip_prefix('@') {
            return rest.parse().map_err(|_| IsaError::Parse {
                line,
                col,
                detail: format!("bad absolute target `{label}`"),
            });
        }
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| IsaError::UndefinedLabel {
                line,
                label: label.to_string(),
            })
    }

    /// Evaluates a constant expression in the current constant scope.
    fn eval(&self, text: &str, ctx: Ctx<'_>) -> Result<i64, IsaError> {
        ExprParser {
            ctx,
            consts: &self.consts,
            rest: text.trim(),
            whole: text.trim(),
        }
        .parse()
    }

    /// Evaluates an expression and converts it to a non-negative
    /// `usize` (data indices and sizes).
    fn eval_index(&self, text: &str, ctx: Ctx<'_>, what: &str) -> Result<usize, IsaError> {
        let v = self.eval(text, ctx)?;
        usize::try_from(v).map_err(|_| ctx.err(text, format!("{what} must be >= 0, got {v}")))
    }

    fn line(&mut self, text: &str, ctx: Ctx<'_>) -> Result<(), IsaError> {
        if text.starts_with('.') {
            return self.directive(text, ctx);
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if self.labels.contains_key(label) {
                return Err(IsaError::DuplicateLabel {
                    line: ctx.line,
                    label: label.to_string(),
                });
            }
            self.labels
                .insert(label.to_string(), self.insns.len() as Addr);
            return Ok(());
        }
        let insn = self.instruction(text, ctx)?;
        self.insns.push(insn);
        Ok(())
    }

    /// Dispatches a dotted directive line. The directive keyword is the
    /// whole first token, matched exactly — `.database 8` is an unknown
    /// directive, not `.data` with operand `base 8`.
    fn directive(&mut self, text: &str, ctx: Ctx<'_>) -> Result<(), IsaError> {
        let (dir, rest) = match text.split_once(char::is_whitespace) {
            Some((d, r)) => (d, r.trim()),
            None => (text, ""),
        };
        match dir {
            ".const" => {
                let (cname, expr) = rest
                    .split_once('=')
                    .ok_or_else(|| ctx.err(rest, ".const takes `NAME = expression`"))?;
                let cname = cname.trim();
                if !is_const_name(cname) {
                    return Err(ctx.err(
                        cname,
                        format!("bad constant name `{cname}` (want [A-Za-z_][A-Za-z0-9_]*)"),
                    ));
                }
                if self.consts.contains_key(cname) {
                    return Err(IsaError::DuplicateConst {
                        line: ctx.line,
                        name: cname.to_string(),
                    });
                }
                // The declared expression is always parsed (so a broken
                // default cannot hide behind an override), then the
                // override value wins.
                let declared = self.eval(expr, ctx)?;
                let value = match self.overrides.iter().find(|(n, _)| *n == cname) {
                    Some((_, v)) => {
                        self.overridden.insert(cname.to_string());
                        *v
                    }
                    None => declared,
                };
                self.consts.insert(cname.to_string(), value);
                Ok(())
            }
            ".data" => {
                let words = self.eval_index(rest, ctx, ".data size")?;
                self.check_data_bound(words, ctx.line)?;
                self.data_words = words;
                Ok(())
            }
            ".init" => self.init_directive(rest, ctx),
            ".func" => {
                if let Some((open, _, line)) = &self.open_func {
                    return Err(ctx.err(
                        text,
                        format!(
                            "nested .func (function `{open}` opened on line {line} is still open)"
                        ),
                    ));
                }
                if rest.is_empty() {
                    return Err(ctx.err(text, ".func needs a name"));
                }
                self.open_func = Some((rest.to_string(), self.insns.len() as Addr, ctx.line));
                Ok(())
            }
            ".endfunc" => {
                if !rest.is_empty() {
                    return Err(ctx.err(rest, ".endfunc takes no operands"));
                }
                let (fname, entry, _) = self
                    .open_func
                    .take()
                    .ok_or_else(|| ctx.err(text, ".endfunc without .func"))?;
                self.funcs.push(Function {
                    name: fname,
                    entry,
                    end: self.insns.len() as Addr,
                });
                Ok(())
            }
            other => Err(ctx.err(
                text,
                format!("unknown directive `{other}` (expected .const/.data/.init/.func/.endfunc)"),
            )),
        }
    }

    /// The `.init` directive in its three forms:
    ///
    /// * `.init IDX, VALUE` — one word;
    /// * `.init IDX, V0, V1, …` — consecutive words starting at `IDX`;
    /// * `.init LO..HI, VALUE` — fill the half-open range `[LO, HI)`.
    fn init_directive(&mut self, rest: &str, ctx: Ctx<'_>) -> Result<(), IsaError> {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() < 2 || parts[0].is_empty() {
            return Err(ctx.err(
                rest,
                ".init takes `index, value…` or `lo..hi, value`",
            ));
        }
        if let Some((lo_text, hi_text)) = parts[0].split_once("..") {
            if parts.len() != 2 {
                return Err(ctx.err(
                    parts[2],
                    ".init range fill takes exactly one value",
                ));
            }
            let lo = self.eval_index(lo_text, ctx, ".init range start")?;
            let hi = self.eval_index(hi_text, ctx, ".init range end")?;
            if hi < lo {
                return Err(ctx.err(
                    parts[0],
                    format!(".init range {lo}..{hi} is reversed"),
                ));
            }
            // Bound the range BEFORE the fill loop: a huge `hi` must be
            // a diagnostic, not 2^60 pushes.
            self.check_data_bound(hi, ctx.line)?;
            let value = self.eval(parts[1], ctx)?;
            for idx in lo..hi {
                self.push_init(idx, value, ctx)?;
            }
            return Ok(());
        }
        let start = self.eval_index(parts[0], ctx, ".init index")?;
        for (k, part) in parts[1..].iter().enumerate() {
            let value = self.eval(part, ctx)?;
            self.push_init(start.saturating_add(k), value, ctx)?;
        }
        Ok(())
    }

    /// Errors when a data index/size reaches past [`MAX_DATA_WORDS`].
    fn check_data_bound(&self, words: usize, line: usize) -> Result<(), IsaError> {
        if words > MAX_DATA_WORDS {
            return Err(IsaError::DataTooLarge {
                line,
                words,
                limit: MAX_DATA_WORDS,
            });
        }
        Ok(())
    }

    fn push_init(&mut self, idx: usize, value: i64, ctx: Ctx<'_>) -> Result<(), IsaError> {
        self.check_data_bound(idx.saturating_add(1), ctx.line)?;
        self.init_data.push((idx, value));
        if idx >= self.data_words {
            self.data_words = idx + 1;
        }
        Ok(())
    }

    fn instruction(&mut self, text: &str, ctx: Ctx<'_>) -> Result<Insn, IsaError> {
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let idx = self.insns.len();

        macro_rules! rrr {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, ctx)?;
                Opcode::$variant(reg(ops[0], ctx)?, reg(ops[1], ctx)?, reg(ops[2], ctx)?)
            }};
        }
        macro_rules! rri {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, ctx)?;
                Opcode::$variant(reg(ops[0], ctx)?, reg(ops[1], ctx)?, self.eval(ops[2], ctx)?)
            }};
        }
        macro_rules! fff {
            ($variant:ident) => {{
                expect_ops(&ops, 3, mnemonic, ctx)?;
                Opcode::$variant(freg(ops[0], ctx)?, freg(ops[1], ctx)?, freg(ops[2], ctx)?)
            }};
        }

        let op = match mnemonic {
            "add" => rrr!(Add),
            "sub" => rrr!(Sub),
            "mul" => rrr!(Mul),
            "div" => rrr!(Div),
            "rem" => rrr!(Rem),
            "and" => rrr!(And),
            "or" => rrr!(Or),
            "xor" => rrr!(Xor),
            "shl" => rrr!(Shl),
            "shr" => rrr!(Shr),
            "addi" => rri!(AddI),
            "subi" => rri!(SubI),
            "muli" => rri!(MulI),
            "andi" => rri!(AndI),
            "xori" => rri!(XorI),
            "mov" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::Mov(reg(ops[0], ctx)?, reg(ops[1], ctx)?)
            }
            "movi" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::MovI(reg(ops[0], ctx)?, self.eval(ops[1], ctx)?)
            }
            "fadd" => fff!(FAdd),
            "fsub" => fff!(FSub),
            "fmul" => fff!(FMul),
            "fdiv" => fff!(FDiv),
            "fsqrt" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::FSqrt(freg(ops[0], ctx)?, freg(ops[1], ctx)?)
            }
            "fmov" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::FMov(freg(ops[0], ctx)?, freg(ops[1], ctx)?)
            }
            "fmovi" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                let v: f64 = ops[1]
                    .parse()
                    .map_err(|_| ctx.err(ops[1], format!("bad float `{}`", ops[1])))?;
                Opcode::FMovI(freg(ops[0], ctx)?, v)
            }
            "cvtif" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::CvtIF(freg(ops[0], ctx)?, reg(ops[1], ctx)?)
            }
            "cvtfi" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                Opcode::CvtFI(reg(ops[0], ctx)?, freg(ops[1], ctx)?)
            }
            "load" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                let (b, o) = self.mem_operand(ops[1], ctx)?;
                Opcode::Load(reg(ops[0], ctx)?, b, o)
            }
            "store" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                let (b, o) = self.mem_operand(ops[1], ctx)?;
                Opcode::Store(reg(ops[0], ctx)?, b, o)
            }
            "fload" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                let (b, o) = self.mem_operand(ops[1], ctx)?;
                Opcode::FLoad(freg(ops[0], ctx)?, b, o)
            }
            "fstore" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                let (b, o) = self.mem_operand(ops[1], ctx)?;
                Opcode::FStore(freg(ops[0], ctx)?, b, o)
            }
            "jmp" => {
                expect_ops(&ops, 1, mnemonic, ctx)?;
                self.fixups
                    .push((idx, ops[0].to_string(), ctx.line, ctx.col_of(ops[0])));
                Opcode::Jmp(0)
            }
            "jmpind" => {
                expect_ops(&ops, 1, mnemonic, ctx)?;
                Opcode::JmpInd(reg(ops[0], ctx)?)
            }
            "breq" | "brne" | "brlt" | "brle" | "brgt" | "brge" => {
                expect_ops(&ops, 3, mnemonic, ctx)?;
                let cond = match &mnemonic[2..] {
                    "eq" => Cond::Eq,
                    "ne" => Cond::Ne,
                    "lt" => Cond::Lt,
                    "le" => Cond::Le,
                    "gt" => Cond::Gt,
                    _ => Cond::Ge,
                };
                self.fixups
                    .push((idx, ops[2].to_string(), ctx.line, ctx.col_of(ops[2])));
                Opcode::Br(cond, reg(ops[0], ctx)?, reg(ops[1], ctx)?, 0)
            }
            "brz" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                self.fixups
                    .push((idx, ops[1].to_string(), ctx.line, ctx.col_of(ops[1])));
                Opcode::Brz(reg(ops[0], ctx)?, 0)
            }
            "brnz" => {
                expect_ops(&ops, 2, mnemonic, ctx)?;
                self.fixups
                    .push((idx, ops[1].to_string(), ctx.line, ctx.col_of(ops[1])));
                Opcode::Brnz(reg(ops[0], ctx)?, 0)
            }
            "call" => {
                expect_ops(&ops, 1, mnemonic, ctx)?;
                self.call_fixups
                    .push((idx, ops[0].to_string(), ctx.line, ctx.col_of(ops[0])));
                Opcode::Call(0)
            }
            "callind" => {
                expect_ops(&ops, 1, mnemonic, ctx)?;
                Opcode::CallInd(reg(ops[0], ctx)?)
            }
            "ret" => Opcode::Ret,
            "nop" => Opcode::Nop,
            "halt" => Opcode::Halt,
            other => return Err(ctx.err(mnemonic, format!("unknown mnemonic `{other}`"))),
        };
        Ok(Insn::new(op))
    }

    /// Parses `[rN]` / `[rN+expr]` / `[rN-expr]`.
    fn mem_operand(&self, s: &str, ctx: Ctx<'_>) -> Result<(Reg, i64), IsaError> {
        let inner = s
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| ctx.err(s, format!("bad memory operand `{s}`")))?;
        let (base, off) = match inner.find(['+', '-']) {
            Some(i) => {
                let (b, rest) = inner.split_at(i);
                (b.trim(), self.eval(rest, ctx)?)
            }
            None => (inner.trim(), 0),
        };
        Ok((reg(base, ctx)?, off))
    }
}

// --- constant expressions ---------------------------------------------------

/// True when `s` is a valid `.const` name: `[A-Za-z_][A-Za-z0-9_]*`.
fn is_const_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Recursive-descent evaluator for integer constant expressions:
///
/// ```text
/// expr  := term  (('+' | '-') term)*
/// term  := unary (('*' | '/' | '%') unary)*
/// unary := ('+' | '-') unary | atom
/// atom  := INT | 0xHEX | NAME | '(' expr ')'
/// ```
///
/// Arithmetic is wrapping two's-complement `i64` except division and
/// remainder by zero, which are diagnostics (a tenant file must never
/// panic the loader).
struct ExprParser<'a, 's> {
    ctx: Ctx<'s>,
    consts: &'a HashMap<String, i64>,
    rest: &'s str,
    whole: &'s str,
}

impl ExprParser<'_, '_> {
    fn parse(mut self) -> Result<i64, IsaError> {
        if self.whole.is_empty() {
            return Err(self.ctx.err(self.whole, "empty expression"));
        }
        let v = self.expr()?;
        self.skip_ws();
        if !self.rest.is_empty() {
            return Err(self
                .ctx
                .err(self.rest, format!("trailing `{}` after expression", self.rest)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expr(&mut self) -> Result<i64, IsaError> {
        let mut acc = self.term()?;
        while let Some(op) = self.peek() {
            match op {
                '+' => {
                    self.bump();
                    acc = acc.wrapping_add(self.term()?);
                }
                '-' => {
                    self.bump();
                    acc = acc.wrapping_sub(self.term()?);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<i64, IsaError> {
        let mut acc = self.unary()?;
        while let Some(op) = self.peek() {
            match op {
                '*' => {
                    self.bump();
                    acc = acc.wrapping_mul(self.unary()?);
                }
                '/' | '%' => {
                    let at = self.rest;
                    self.bump();
                    let rhs = self.unary()?;
                    if rhs == 0 {
                        return Err(self.ctx.err(at, "division by zero in expression"));
                    }
                    acc = if op == '/' {
                        acc.wrapping_div(rhs)
                    } else {
                        acc.wrapping_rem(rhs)
                    };
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<i64, IsaError> {
        match self.peek() {
            Some('-') => {
                self.bump();
                Ok(self.unary()?.wrapping_neg())
            }
            Some('+') => {
                self.bump();
                self.unary()
            }
            Some('(') => {
                self.bump();
                let v = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(self.ctx.err(self.rest, "expected `)`"));
                }
                self.bump();
                Ok(v)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<i64, IsaError> {
        self.skip_ws();
        let start = self.rest;
        let Some(first) = start.chars().next() else {
            return Err(self.ctx.err(self.whole, "expression ends unexpectedly"));
        };
        if first.is_ascii_digit() {
            let len = start
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(start.len());
            let (tok, rest) = start.split_at(len);
            self.rest = rest;
            let parsed = if let Some(hex) = tok.strip_prefix("0x") {
                i64::from_str_radix(hex, 16)
            } else {
                tok.parse()
            };
            return parsed.map_err(|_| self.ctx.err(tok, format!("bad integer `{tok}`")));
        }
        if first.is_ascii_alphabetic() || first == '_' {
            let len = start
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(start.len());
            let (tok, rest) = start.split_at(len);
            self.rest = rest;
            return self.consts.get(tok).copied().ok_or_else(|| {
                IsaError::UndefinedConst {
                    line: self.ctx.line,
                    col: self.ctx.col_of(tok),
                    name: tok.to_string(),
                }
            });
        }
        Err(self
            .ctx
            .err(start, format!("unexpected `{first}` in expression")))
    }
}

// --- token helpers ----------------------------------------------------------

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn expect_ops(ops: &[&str], n: usize, mnemonic: &str, ctx: Ctx<'_>) -> Result<(), IsaError> {
    if ops.len() != n {
        return Err(ctx.err(
            mnemonic,
            format!("`{mnemonic}` takes {n} operands, got {}", ops.len()),
        ));
    }
    Ok(())
}

fn reg(s: &str, ctx: Ctx<'_>) -> Result<Reg, IsaError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::try_new)
        .ok_or_else(|| ctx.err(s, format!("bad register `{s}`")))
}

fn freg(s: &str, ctx: Ctx<'_>) -> Result<FReg, IsaError> {
    s.strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(FReg::try_new)
        .ok_or_else(|| ctx.err(s, format!("bad fp register `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn assembles_loop() {
        let p = assemble(
            "t",
            r#"
            .data 8
            .func main
                movi r1, 10
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.insns[2].op, Opcode::Brnz(R1, 1));
        assert_eq!(p.data_words, 8);
    }

    #[test]
    fn memory_operands() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r2, 0
                load r1, [r2+4]
                store r1, [r2-0]
                fload f1, [r2]
                fstore f1, [r2+8]
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[1].op, Opcode::Load(R1, R2, 4));
        assert_eq!(p.insns[3].op, Opcode::FLoad(F1, R2, 0));
    }

    #[test]
    fn call_and_functions() {
        let p = assemble(
            "t",
            r#"
            .func main
                call helper
                halt
            .endfunc
            .func helper
                ret
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::Call(2));
    }

    #[test]
    fn cond_branches() {
        let p = assemble(
            "t",
            r#"
            .func main
            top:
                breq r1, r2, top
                brlt r1, r2, top
                brge r1, r2, @0
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::Br(Cond::Eq, R1, R2, 0));
        assert_eq!(p.insns[2].op, Opcode::Br(Cond::Ge, R1, R2, 0));
    }

    #[test]
    fn undefined_label_errors() {
        let e = assemble("t", ".func main\n jmp nowhere\n halt\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::UndefinedLabel { line: 2, .. }));
    }

    #[test]
    fn duplicate_label_errors() {
        let e = assemble("t", ".func main\nx:\nx:\n halt\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::DuplicateLabel { line: 3, .. }));
    }

    #[test]
    fn unknown_mnemonic_errors() {
        let e = assemble("t", ".func main\n frobnicate r1\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 2, col: 2, .. }));
    }

    #[test]
    fn unclosed_func_reports_the_opening_line() {
        let e = assemble("t", "; hi\n.func main\n halt\n").unwrap_err();
        match e {
            IsaError::Parse { line, detail, .. } => {
                assert_eq!(line, 2, "points at the .func, not a made-up line 0");
                assert!(detail.contains("main"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn comments_and_hex() {
        let p = assemble(
            "t",
            "; leading comment\n.func main\n movi r1, 0x10 # trailing\n halt\n.endfunc\n",
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 16));
    }

    #[test]
    fn init_directive() {
        let p = assemble("t", ".init 5, -3\n.func main\n halt\n.endfunc\n").unwrap();
        assert_eq!(p.init_data, vec![(5, -3)]);
        assert!(p.data_words >= 6);
    }

    // --- constants and expressions -------------------------------------

    #[test]
    fn consts_fold_in_operands_and_directives() {
        let p = assemble(
            "t",
            r#"
            .const ROWS = 8
            .const COLS = ROWS * 4        ; forward use of earlier const
            .data ROWS * COLS + 2
            .func main
                movi r1, ROWS * COLS
                addi r2, r2, COLS - ROWS
                movi r3, (ROWS + COLS) * 2
                halt
            .endfunc
            "#,
        )
        .unwrap();
        assert_eq!(p.data_words, 8 * 32 + 2);
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 256));
        assert_eq!(p.insns[1].op, Opcode::AddI(R2, R2, 24));
        assert_eq!(p.insns[2].op, Opcode::MovI(R3, 80));
    }

    #[test]
    fn expressions_support_hex_unary_div_rem() {
        let p = assemble(
            "t",
            ".func main\n movi r1, 0x10 + -6\n movi r2, 7 / 2\n movi r3, 7 % 2\n movi r4, +5\n halt\n.endfunc\n",
        )
        .unwrap();
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 10));
        assert_eq!(p.insns[1].op, Opcode::MovI(R2, 3));
        assert_eq!(p.insns[2].op, Opcode::MovI(R3, 1));
        assert_eq!(p.insns[3].op, Opcode::MovI(R4, 5));
    }

    #[test]
    fn const_expressions_in_memory_offsets() {
        let p = assemble(
            "t",
            ".const OFF = 6\n.data 16\n.func main\n movi r2, 0\n load r1, [r2+OFF*2]\n halt\n.endfunc\n",
        )
        .unwrap();
        assert_eq!(p.insns[1].op, Opcode::Load(R1, R2, 12));
    }

    #[test]
    fn overrides_replace_const_values() {
        let src = ".const N = 100\n.func main\n movi r1, N\n halt\n.endfunc\n";
        let p = assemble_with("t", src, &[("N", 7)]).unwrap();
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 7));
        // No override: the declared default holds.
        let p = assemble("t", src).unwrap();
        assert_eq!(p.insns[0].op, Opcode::MovI(R1, 100));
    }

    #[test]
    fn override_of_undefined_const_is_typed_error() {
        let src = ".const N = 100\n.func main\n movi r1, N\n halt\n.endfunc\n";
        let e = assemble_with("t", src, &[("MISSING", 1)]).unwrap_err();
        assert_eq!(
            e,
            IsaError::UnknownOverride {
                name: "MISSING".into()
            }
        );
    }

    #[test]
    fn undefined_const_is_typed_error_with_position() {
        let e = assemble("t", ".func main\n movi r1, NOPE\n halt\n.endfunc\n").unwrap_err();
        match e {
            IsaError::UndefinedConst { line, col, name } => {
                assert_eq!(line, 2);
                assert_eq!(name, "NOPE");
                assert!(col > 0, "column recovered from the operand slice");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_const_is_typed_error() {
        let e = assemble("t", ".const A = 1\n.const A = 2\n.func main\n halt\n.endfunc\n")
            .unwrap_err();
        assert_eq!(
            e,
            IsaError::DuplicateConst {
                line: 2,
                name: "A".into()
            }
        );
    }

    // --- .init forms ----------------------------------------------------

    #[test]
    fn init_value_list_fills_consecutive_words() {
        let p = assemble("t", ".init 4, 1, 2, 3\n.func main\n halt\n.endfunc\n").unwrap();
        assert_eq!(p.init_data, vec![(4, 1), (5, 2), (6, 3)]);
        assert_eq!(p.data_words, 7);
    }

    #[test]
    fn init_range_fill() {
        let p = assemble("t", ".init 2..5, -1\n.func main\n halt\n.endfunc\n").unwrap();
        assert_eq!(p.init_data, vec![(2, -1), (3, -1), (4, -1)]);
        assert_eq!(p.data_words, 5);
        // Empty range is allowed and fills nothing.
        let p = assemble("t", ".init 3..3, 9\n.data 4\n.func main\n halt\n.endfunc\n").unwrap();
        assert!(p.init_data.is_empty());
    }

    #[test]
    fn huge_init_range_is_rejected_without_allocating() {
        // 2^62 words: must be a typed error, not 2^62 pushes / an OOM.
        let e = assemble(
            "t",
            ".init 0..0x4000000000000000, 1\n.func main\n halt\n.endfunc\n",
        )
        .unwrap_err();
        assert_eq!(
            e,
            IsaError::DataTooLarge {
                line: 1,
                words: 1 << 62,
                limit: MAX_DATA_WORDS
            }
        );
    }

    #[test]
    fn huge_init_index_and_data_size_are_rejected() {
        let e = assemble(
            "t",
            ".init 0x3fffffffffffffff, 1\n.func main\n halt\n.endfunc\n",
        )
        .unwrap_err();
        assert!(matches!(e, IsaError::DataTooLarge { line: 1, .. }), "{e}");
        let e = assemble("t", ".data 0x100000000\n.func main\n halt\n.endfunc\n").unwrap_err();
        assert!(matches!(e, IsaError::DataTooLarge { line: 1, .. }), "{e}");
        // The bound itself is fine for `.data` (no per-word allocation).
        assemble("t", ".data 0x1000000\n.func main\n halt\n.endfunc\n").unwrap();
    }

    #[test]
    fn init_range_with_const_bounds() {
        let p = assemble(
            "t",
            ".const N = 3\n.init N..N*2, 7\n.func main\n halt\n.endfunc\n",
        )
        .unwrap();
        assert_eq!(p.init_data, vec![(3, 7), (4, 7), (5, 7)]);
    }

    // --- malformed forms carry positions --------------------------------

    fn parse_err(src: &str) -> (usize, usize, String) {
        match assemble("t", src).unwrap_err() {
            IsaError::Parse { line, col, detail } => (line, col, detail),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_const_missing_equals() {
        let (line, col, detail) = parse_err(".const FOO 3\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(col > 0);
        assert!(detail.contains("NAME = expression"));
    }

    #[test]
    fn malformed_const_bad_name() {
        let (line, _, detail) = parse_err(".const 9LIVES = 3\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains("bad constant name"));
    }

    #[test]
    fn malformed_init_reversed_range() {
        let (line, _, detail) = parse_err(".init 5..2, 1\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains("reversed"));
    }

    #[test]
    fn malformed_init_range_value_list() {
        let (line, _, detail) = parse_err(".init 1..3, 1, 2\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains("exactly one value"));
    }

    #[test]
    fn malformed_init_no_value() {
        let (line, _, detail) = parse_err(".init 5\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains(".init takes"));
    }

    #[test]
    fn malformed_negative_data_size() {
        let (line, _, detail) = parse_err(".data 2-5\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains("must be >= 0"));
    }

    #[test]
    fn malformed_division_by_zero() {
        let (line, _, detail) = parse_err(".func main\n movi r1, 4/0\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("division by zero"));
    }

    #[test]
    fn malformed_unbalanced_parens() {
        let (line, _, detail) = parse_err(".func main\n movi r1, (3+4\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("expected `)`"));
    }

    #[test]
    fn malformed_trailing_tokens() {
        let (line, _, detail) = parse_err(".func main\n movi r1, 3 4\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("trailing"));
    }

    #[test]
    fn malformed_operand_count_points_at_mnemonic() {
        let (line, col, detail) = parse_err(".func main\n add r1, r2\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert_eq!(col, 2, "column of the mnemonic on the raw line");
        assert!(detail.contains("takes 3 operands"));
    }

    #[test]
    fn malformed_register_reports_column() {
        let src = ".func main\n add r1, r2, x9\n halt\n.endfunc\n";
        let (line, col, detail) = parse_err(src);
        assert_eq!(line, 2);
        assert!(detail.contains("bad register `x9`"));
        // `x9` starts at column 14 of " add r1, r2, x9".
        assert_eq!(col, 14);
    }

    #[test]
    fn malformed_float_reports_position() {
        let (line, _, detail) = parse_err(".func main\n fmovi f1, abc\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("bad float"));
    }

    #[test]
    fn malformed_memory_operand() {
        let (line, _, detail) = parse_err(".func main\n load r1, r2+4\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("bad memory operand"));
    }

    #[test]
    fn malformed_bad_absolute_target() {
        let (line, _, detail) = parse_err(".func main\n jmp @x\n halt\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("bad absolute target"));
    }

    #[test]
    fn malformed_unknown_directive() {
        let (line, _, detail) = parse_err(".dtaa 8\n.func main\n halt\n.endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains("unknown directive"));
    }

    #[test]
    fn mistyped_directive_extensions_are_unknown_directives() {
        // Each extends a real directive keyword; bare strip_prefix used
        // to misparse these (`.constN = 5` defined const `N`, …).
        for src in [
            ".constN = 5\n.func main\n halt\n.endfunc\n",
            ".database 8\n.func main\n halt\n.endfunc\n",
            ".funcmain\n halt\n.endfunc\n",
            ".initial 1, 2\n.func main\n halt\n.endfunc\n",
            ".endfunction\n",
        ] {
            let (line, _, detail) = parse_err(src);
            assert_eq!(line, 1, "{src}");
            assert!(detail.contains("unknown directive"), "{src}: {detail}");
        }
    }

    #[test]
    fn endfunc_with_operands_is_rejected() {
        let (line, _, detail) = parse_err(".func main\n halt\n.endfunc main\n");
        assert_eq!(line, 3);
        assert!(detail.contains("takes no operands"));
    }

    #[test]
    fn malformed_nested_func_names_the_open_function() {
        let (line, _, detail) =
            parse_err(".func main\n.func inner\n halt\n.endfunc\n.endfunc\n");
        assert_eq!(line, 2);
        assert!(detail.contains("`main`"));
    }

    #[test]
    fn malformed_endfunc_without_func() {
        let (line, _, detail) = parse_err(".endfunc\n");
        assert_eq!(line, 1);
        assert!(detail.contains(".endfunc without .func"));
    }
}
