//! Programs: instruction streams plus symbols and a data segment.

use crate::error::IsaError;
use crate::insn::{Addr, Insn, Opcode};
use serde::{Deserialize, Serialize};

/// A named function covering the half-open address range `[entry, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub entry: Addr,
    pub end: Addr,
}

impl Function {
    /// True when `addr` belongs to this function.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.entry <= addr && addr < self.end
    }

    /// Number of instructions in the function.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.entry) as usize
    }

    /// True when the function covers no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entry == self.end
    }
}

/// A sorted, non-overlapping table of functions covering the whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    functions: Vec<Function>,
}

impl SymbolTable {
    /// Builds a table from functions; sorts them by entry address.
    #[must_use]
    pub fn new(mut functions: Vec<Function>) -> Self {
        functions.sort_by_key(|f| f.entry);
        Self { functions }
    }

    /// All functions, sorted by entry address.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks a function up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Returns the function containing `addr`, if any.
    #[must_use]
    pub fn containing(&self, addr: Addr) -> Option<&Function> {
        let idx = self.functions.partition_point(|f| f.entry <= addr);
        idx.checked_sub(1)
            .map(|i| &self.functions[i])
            .filter(|f| f.contains(addr))
    }

    /// Returns the index (into [`SymbolTable::functions`]) of the function
    /// containing `addr`.
    #[must_use]
    pub fn index_containing(&self, addr: Addr) -> Option<usize> {
        let idx = self.functions.partition_point(|f| f.entry <= addr);
        idx.checked_sub(1)
            .filter(|&i| self.functions[i].contains(addr))
    }

    /// True when `addr` is the entry of some function.
    #[must_use]
    pub fn is_entry(&self, addr: Addr) -> bool {
        self.functions
            .binary_search_by_key(&addr, |f| f.entry)
            .is_ok()
    }

    /// Validates the table: ranges must be well-formed, non-overlapping and
    /// within `program_len`.
    pub fn validate(&self, program_len: usize) -> Result<(), IsaError> {
        let mut prev_end = 0u32;
        for f in &self.functions {
            if f.entry > f.end {
                return Err(IsaError::MalformedSymbolTable {
                    detail: format!("function {} has entry {} > end {}", f.name, f.entry, f.end),
                });
            }
            if f.entry < prev_end {
                return Err(IsaError::MalformedSymbolTable {
                    detail: format!("function {} overlaps its predecessor", f.name),
                });
            }
            if f.end as usize > program_len {
                return Err(IsaError::MalformedSymbolTable {
                    detail: format!("function {} extends past program end", f.name),
                });
            }
            prev_end = f.end;
        }
        Ok(())
    }
}

/// A complete program: code, symbols and data-segment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable workload name (used in reports).
    pub name: String,
    /// The instruction stream; `insns[a]` lives at address `a`.
    pub insns: Vec<Insn>,
    /// Function table.
    pub symbols: SymbolTable,
    /// Size of the data segment in 64-bit words.
    pub data_words: usize,
    /// Sparse initial data values `(word_index, value)`.
    pub init_data: Vec<(usize, i64)>,
    /// Entry point (defaults to 0).
    pub entry: Addr,
}

impl Program {
    /// Creates a program and validates it.
    pub fn new(
        name: impl Into<String>,
        insns: Vec<Insn>,
        symbols: SymbolTable,
        data_words: usize,
    ) -> Result<Self, IsaError> {
        let p = Self {
            name: name.into(),
            insns,
            symbols,
            data_words,
            init_data: Vec::new(),
            entry: 0,
        };
        p.validate()?;
        Ok(p)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Fetches the instruction at `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is out of range; executing an out-of-range address
    /// is a simulator bug, not a recoverable condition.
    #[must_use]
    pub fn fetch(&self, addr: Addr) -> Insn {
        self.insns[addr as usize]
    }

    /// Checks structural invariants: non-empty, in-range control-flow
    /// targets, call targets are function entries, and control cannot fall
    /// off the end.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.insns.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        self.symbols.validate(self.insns.len())?;
        let len = self.insns.len() as Addr;
        for (i, insn) in self.insns.iter().enumerate() {
            let at = i as Addr;
            if let Some(t) = insn.direct_target() {
                if t >= len {
                    return Err(IsaError::TargetOutOfRange { at, target: t });
                }
                if matches!(insn.op, Opcode::Call(_)) && !self.symbols.is_entry(t) {
                    return Err(IsaError::CallTargetNotFunction { at, target: t });
                }
            }
        }
        // The final instruction must not permit a fallthrough off the end.
        let last = self.insns[self.insns.len() - 1];
        let ends = matches!(
            last.op,
            Opcode::Halt | Opcode::Ret | Opcode::Jmp(_) | Opcode::JmpInd(_)
        );
        if !ends {
            return Err(IsaError::FallsOffEnd);
        }
        Ok(())
    }

    /// Total static count of instructions per class, useful for workload
    /// characterization reports.
    #[must_use]
    pub fn class_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for insn in &self.insns {
            *h.entry(format!("{:?}", insn.class())).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    fn insn(op: Opcode) -> Insn {
        Insn::new(op)
    }

    fn tiny() -> Program {
        let insns = vec![
            insn(Opcode::MovI(R1, 3)),
            insn(Opcode::SubI(R1, R1, 1)),
            insn(Opcode::Brnz(R1, 1)),
            insn(Opcode::Halt),
        ];
        let sym = SymbolTable::new(vec![Function {
            name: "main".into(),
            entry: 0,
            end: 4,
        }]);
        Program::new("tiny", insns, sym, 0).unwrap()
    }

    #[test]
    fn validates_ok() {
        let p = tiny();
        assert_eq!(p.len(), 4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let insns = vec![insn(Opcode::Jmp(9)), insn(Opcode::Halt)];
        let sym = SymbolTable::new(vec![Function {
            name: "main".into(),
            entry: 0,
            end: 2,
        }]);
        let err = Program::new("bad", insns, sym, 0).unwrap_err();
        assert!(matches!(err, IsaError::TargetOutOfRange { .. }));
    }

    #[test]
    fn rejects_call_to_non_function() {
        let insns = vec![insn(Opcode::Call(1)), insn(Opcode::Nop), insn(Opcode::Halt)];
        let sym = SymbolTable::new(vec![Function {
            name: "main".into(),
            entry: 0,
            end: 3,
        }]);
        let err = Program::new("bad", insns, sym, 0).unwrap_err();
        assert!(matches!(err, IsaError::CallTargetNotFunction { .. }));
    }

    #[test]
    fn rejects_fallthrough_off_end() {
        let insns = vec![insn(Opcode::Nop)];
        let sym = SymbolTable::new(vec![Function {
            name: "main".into(),
            entry: 0,
            end: 1,
        }]);
        let err = Program::new("bad", insns, sym, 0).unwrap_err();
        assert_eq!(err, IsaError::FallsOffEnd);
    }

    #[test]
    fn rejects_empty() {
        let err = Program::new("bad", vec![], SymbolTable::default(), 0).unwrap_err();
        assert_eq!(err, IsaError::EmptyProgram);
    }

    #[test]
    fn symbol_lookup() {
        let sym = SymbolTable::new(vec![
            Function {
                name: "b".into(),
                entry: 10,
                end: 20,
            },
            Function {
                name: "a".into(),
                entry: 0,
                end: 10,
            },
        ]);
        assert_eq!(sym.containing(0).unwrap().name, "a");
        assert_eq!(sym.containing(9).unwrap().name, "a");
        assert_eq!(sym.containing(10).unwrap().name, "b");
        assert_eq!(sym.containing(19).unwrap().name, "b");
        assert!(sym.containing(20).is_none());
        assert!(sym.is_entry(10));
        assert!(!sym.is_entry(11));
        assert_eq!(sym.by_name("b").unwrap().entry, 10);
    }

    #[test]
    fn symbol_gap_lookup_is_none() {
        let sym = SymbolTable::new(vec![
            Function {
                name: "a".into(),
                entry: 0,
                end: 5,
            },
            Function {
                name: "b".into(),
                entry: 8,
                end: 12,
            },
        ]);
        assert!(sym.containing(6).is_none());
        assert_eq!(sym.index_containing(8), Some(1));
        assert_eq!(sym.index_containing(6), None);
    }

    #[test]
    fn symbol_overlap_rejected() {
        let sym = SymbolTable::new(vec![
            Function {
                name: "a".into(),
                entry: 0,
                end: 6,
            },
            Function {
                name: "b".into(),
                entry: 4,
                end: 12,
            },
        ]);
        assert!(sym.validate(12).is_err());
    }

    #[test]
    fn class_histogram_counts() {
        let p = tiny();
        let h = p.class_histogram();
        assert_eq!(h.get("Alu"), Some(&2));
        assert_eq!(h.get("Branch"), Some(&1));
    }
}
