//! Prime-number utilities for sampling periods.
//!
//! The paper's "precise with prime period" methods replace round sampling
//! periods (e.g. 2,000,000) with nearby primes (2,000,003) to avoid
//! synchronizing with loop trip counts. These helpers pick such periods.

/// Deterministic Miller-Rabin primality test, exact for all `u64`.
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^r.
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // These witnesses are sufficient for all n < 2^64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime `>= n` (`2` when `n <= 2`).
#[must_use]
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    while !is_prime(c) {
        c += 1;
    }
    c
}

fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        for n in 0..50u64 {
            assert_eq!(is_prime(n), primes.contains(&n), "n={n}");
        }
    }

    #[test]
    fn paper_period() {
        // The paper's example prime period.
        assert!(is_prime(2_000_003));
        assert!(!is_prime(2_000_000));
        assert_eq!(next_prime(2_000_000), 2_000_003);
    }

    #[test]
    fn scaled_periods() {
        assert_eq!(next_prime(20_000), 20_011);
        assert_eq!(next_prime(100_000), 100_003);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(0), 2);
    }

    #[test]
    fn large_values() {
        // Carmichael numbers must not fool the test.
        assert!(!is_prime(561));
        assert!(!is_prime(1_105));
        assert!(!is_prime(52_633));
        // A large known prime (2^61 - 1 is a Mersenne prime).
        assert!(is_prime((1u64 << 61) - 1));
    }
}
