//! A programmatic assembler: [`ProgramBuilder`].
//!
//! Workload generators construct programs with forward references (branches
//! to not-yet-emitted code, calls to not-yet-defined functions). The builder
//! records fixups and patches them in [`ProgramBuilder::build`].

use crate::error::IsaError;
use crate::insn::{Addr, Cond, Insn, Opcode};
use crate::program::{Function, Program, SymbolTable};
use crate::reg::{FReg, Reg};

/// An opaque label handle produced by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Builds [`Program`]s instruction by instruction.
///
/// # Examples
///
/// ```
/// use ct_isa::builder::ProgramBuilder;
/// use ct_isa::reg::names::*;
///
/// let mut b = ProgramBuilder::new("count");
/// b.begin_func("main");
/// b.movi(R1, 10);
/// let top = b.here_label();
/// b.subi(R1, R1, 1);
/// b.brnz(R1, top);
/// b.halt();
/// b.end_func();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insns: Vec<Insn>,
    funcs: Vec<Function>,
    open_func: Option<(String, Addr)>,
    labels: Vec<Option<Addr>>,
    label_fixups: Vec<(usize, Label)>,
    call_fixups: Vec<(usize, String)>,
    data_words: usize,
    init_data: Vec<(usize, i64)>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insns: Vec::new(),
            funcs: Vec::new(),
            open_func: None,
            labels: Vec::new(),
            label_fixups: Vec::new(),
            call_fixups: Vec::new(),
            data_words: 0,
            init_data: Vec::new(),
        }
    }

    /// Sets the data-segment size in 64-bit words.
    pub fn data(&mut self, words: usize) -> &mut Self {
        self.data_words = words;
        self
    }

    /// Sets an initial data value at `word_index`.
    pub fn init(&mut self, word_index: usize, value: i64) -> &mut Self {
        self.init_data.push((word_index, value));
        if word_index >= self.data_words {
            self.data_words = word_index + 1;
        }
        self
    }

    /// Current emission address.
    #[must_use]
    pub fn here(&self) -> Addr {
        self.insns.len() as Addr
    }

    /// Allocates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Allocates a label already bound to the current address.
    pub fn here_label(&mut self) -> Label {
        let l = self.new_label();
        // Binding a freshly created label cannot fail.
        self.bind(l).expect("fresh label cannot be already bound");
        l
    }

    /// Binds `label` to the current address.
    pub fn bind(&mut self, label: Label) -> Result<(), IsaError> {
        let here = self.here();
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            return Err(IsaError::LabelRebound { label: label.0 });
        }
        *slot = Some(here);
        Ok(())
    }

    /// Opens a function; must be closed with [`ProgramBuilder::end_func`].
    ///
    /// # Panics
    ///
    /// Panics when a function is already open — nesting is a generator bug.
    pub fn begin_func(&mut self, name: impl Into<String>) -> &mut Self {
        assert!(self.open_func.is_none(), "nested begin_func");
        self.open_func = Some((name.into(), self.here()));
        self
    }

    /// Closes the currently open function.
    ///
    /// # Panics
    ///
    /// Panics when no function is open.
    pub fn end_func(&mut self) -> &mut Self {
        let (name, entry) = self.open_func.take().expect("end_func without begin_func");
        self.funcs.push(Function {
            name,
            entry,
            end: self.here(),
        });
        self
    }

    /// Emits a raw opcode.
    pub fn emit(&mut self, op: Opcode) -> &mut Self {
        self.insns.push(Insn::new(op));
        self
    }

    // --- Integer ALU -------------------------------------------------------

    pub fn add(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Add(rd, a, b))
    }
    pub fn sub(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Sub(rd, a, b))
    }
    pub fn mul(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Mul(rd, a, b))
    }
    pub fn div(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Div(rd, a, b))
    }
    pub fn rem(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Rem(rd, a, b))
    }
    pub fn and(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::And(rd, a, b))
    }
    pub fn or(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Or(rd, a, b))
    }
    pub fn xor(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Xor(rd, a, b))
    }
    pub fn shl(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Shl(rd, a, b))
    }
    pub fn shr(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Shr(rd, a, b))
    }
    pub fn addi(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::AddI(rd, a, imm))
    }
    pub fn subi(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::SubI(rd, a, imm))
    }
    pub fn muli(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::MulI(rd, a, imm))
    }
    pub fn andi(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::AndI(rd, a, imm))
    }
    pub fn xori(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::XorI(rd, a, imm))
    }
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Opcode::Mov(rd, rs))
    }
    pub fn movi(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::MovI(rd, imm))
    }

    // --- Floating point -----------------------------------------------------

    pub fn fadd(&mut self, fd: FReg, a: FReg, b: FReg) -> &mut Self {
        self.emit(Opcode::FAdd(fd, a, b))
    }
    pub fn fsub(&mut self, fd: FReg, a: FReg, b: FReg) -> &mut Self {
        self.emit(Opcode::FSub(fd, a, b))
    }
    pub fn fmul(&mut self, fd: FReg, a: FReg, b: FReg) -> &mut Self {
        self.emit(Opcode::FMul(fd, a, b))
    }
    pub fn fdiv(&mut self, fd: FReg, a: FReg, b: FReg) -> &mut Self {
        self.emit(Opcode::FDiv(fd, a, b))
    }
    pub fn fsqrt(&mut self, fd: FReg, a: FReg) -> &mut Self {
        self.emit(Opcode::FSqrt(fd, a))
    }
    pub fn fmov(&mut self, fd: FReg, a: FReg) -> &mut Self {
        self.emit(Opcode::FMov(fd, a))
    }
    pub fn fmovi(&mut self, fd: FReg, v: f64) -> &mut Self {
        self.emit(Opcode::FMovI(fd, v))
    }
    pub fn cvt_if(&mut self, fd: FReg, rs: Reg) -> &mut Self {
        self.emit(Opcode::CvtIF(fd, rs))
    }
    pub fn cvt_fi(&mut self, rd: Reg, fs: FReg) -> &mut Self {
        self.emit(Opcode::CvtFI(rd, fs))
    }

    // --- Memory ---------------------------------------------------------------

    pub fn load(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.emit(Opcode::Load(rd, base, off))
    }
    pub fn store(&mut self, val: Reg, base: Reg, off: i64) -> &mut Self {
        self.emit(Opcode::Store(val, base, off))
    }
    pub fn fload(&mut self, fd: FReg, base: Reg, off: i64) -> &mut Self {
        self.emit(Opcode::FLoad(fd, base, off))
    }
    pub fn fstore(&mut self, val: FReg, base: Reg, off: i64) -> &mut Self {
        self.emit(Opcode::FStore(val, base, off))
    }

    // --- Control flow ---------------------------------------------------------

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.label_fixups.push((self.insns.len(), label));
        self.emit(Opcode::Jmp(0))
    }

    /// Emits an indirect jump through `rs` (target computed at run time).
    pub fn jmp_ind(&mut self, rs: Reg) -> &mut Self {
        self.emit(Opcode::JmpInd(rs))
    }

    /// Emits a conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> &mut Self {
        self.label_fixups.push((self.insns.len(), label));
        self.emit(Opcode::Br(cond, a, b, 0))
    }

    /// Emits a branch-if-zero to `label`.
    pub fn brz(&mut self, r: Reg, label: Label) -> &mut Self {
        self.label_fixups.push((self.insns.len(), label));
        self.emit(Opcode::Brz(r, 0))
    }

    /// Emits a branch-if-nonzero to `label`.
    pub fn brnz(&mut self, r: Reg, label: Label) -> &mut Self {
        self.label_fixups.push((self.insns.len(), label));
        self.emit(Opcode::Brnz(r, 0))
    }

    /// Emits a direct call to the function named `callee` (which may be
    /// defined later).
    pub fn call(&mut self, callee: impl Into<String>) -> &mut Self {
        self.call_fixups.push((self.insns.len(), callee.into()));
        self.emit(Opcode::Call(0))
    }

    /// Emits an indirect call through `rs`.
    pub fn call_ind(&mut self, rs: Reg) -> &mut Self {
        self.emit(Opcode::CallInd(rs))
    }

    pub fn ret(&mut self) -> &mut Self {
        self.emit(Opcode::Ret)
    }
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Opcode::Nop)
    }
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Opcode::Halt)
    }

    /// Resolves fixups, closes the symbol table and validates the program.
    pub fn build(mut self) -> Result<Program, IsaError> {
        assert!(self.open_func.is_none(), "build with an open function");
        // Patch label references.
        for (idx, label) in std::mem::take(&mut self.label_fixups) {
            let addr =
                self.labels[label.0 as usize].ok_or(IsaError::UnboundLabel { label: label.0 })?;
            self.insns[idx].op = match self.insns[idx].op {
                Opcode::Jmp(_) => Opcode::Jmp(addr),
                Opcode::Br(c, a, b, _) => Opcode::Br(c, a, b, addr),
                Opcode::Brz(r, _) => Opcode::Brz(r, addr),
                Opcode::Brnz(r, _) => Opcode::Brnz(r, addr),
                other => other,
            };
        }
        // Patch call-by-name references.
        for (idx, name) in std::mem::take(&mut self.call_fixups) {
            let f = self.funcs.iter().find(|f| f.name == name).ok_or_else(|| {
                IsaError::MalformedSymbolTable {
                    detail: format!("call to undefined function `{name}`"),
                }
            })?;
            self.insns[idx].op = Opcode::Call(f.entry);
        }
        let mut p = Program::new(
            self.name,
            self.insns,
            SymbolTable::new(self.funcs),
            self.data_words,
        )?;
        p.init_data = self.init_data;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn forward_branch_is_patched() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        let skip = b.new_label();
        b.movi(R1, 0);
        b.brz(R1, skip);
        b.movi(R2, 1);
        b.bind(skip).unwrap();
        b.halt();
        b.end_func();
        let p = b.build().unwrap();
        assert_eq!(p.insns[1].op, Opcode::Brz(R1, 3));
    }

    #[test]
    fn call_forward_function() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        b.call("helper");
        b.halt();
        b.end_func();
        b.begin_func("helper");
        b.ret();
        b.end_func();
        let p = b.build().unwrap();
        assert_eq!(p.insns[0].op, Opcode::Call(2));
        assert_eq!(p.symbols.by_name("helper").unwrap().entry, 2);
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        let l = b.new_label();
        b.jmp(l);
        b.halt();
        b.end_func();
        assert!(matches!(b.build(), Err(IsaError::UnboundLabel { .. })));
    }

    #[test]
    fn rebound_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        let l = b.here_label();
        b.nop();
        assert!(matches!(b.bind(l), Err(IsaError::LabelRebound { .. })));
        b.halt();
        b.end_func();
    }

    #[test]
    fn call_to_missing_function_errors() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main");
        b.call("nope");
        b.halt();
        b.end_func();
        assert!(matches!(
            b.build(),
            Err(IsaError::MalformedSymbolTable { .. })
        ));
    }

    #[test]
    fn init_data_grows_segment() {
        let mut b = ProgramBuilder::new("t");
        b.init(100, 7);
        b.begin_func("main");
        b.halt();
        b.end_func();
        let p = b.build().unwrap();
        assert!(p.data_words >= 101);
        assert_eq!(p.init_data, vec![(100, 7)]);
    }
}
