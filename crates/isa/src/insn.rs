//! Instruction definitions.
//!
//! Each instruction occupies one address slot. The opcode set is small but
//! covers everything the paper's workloads exercise: cheap ALU work,
//! long-latency divides (the Latency-Biased kernel), floating point (povray
//! and FullCMS proxies), loads/stores through a cache model (mcf proxy),
//! direct and indirect calls (callchain kernel, omnetpp vtable proxy) and
//! conditional branches (every kernel).

use crate::reg::{FReg, Reg};
use serde::{Deserialize, Serialize};

/// An instruction address — an index into [`crate::Program::insns`].
pub type Addr = u32;

/// Comparison condition for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluates the condition on two integer values.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// Returns the assembler mnemonic suffix (`eq`, `ne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

/// Operation plus operands; one per address slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Opcode {
    // --- Integer ALU -----------------------------------------------------
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (medium latency)
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (long latency; division by zero yields 0)
    Div(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (long latency; modulo by zero yields 0)
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 63)`
    Shl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    Shr(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    AddI(Reg, Reg, i64),
    /// `rd = rs1 - imm`
    SubI(Reg, Reg, i64),
    /// `rd = rs1 * imm`
    MulI(Reg, Reg, i64),
    /// `rd = rs1 & imm`
    AndI(Reg, Reg, i64),
    /// `rd = rs1 ^ imm`
    XorI(Reg, Reg, i64),
    /// `rd = rs`
    Mov(Reg, Reg),
    /// `rd = imm`
    MovI(Reg, i64),

    // --- Floating point ---------------------------------------------------
    /// `fd = fs1 + fs2`
    FAdd(FReg, FReg, FReg),
    /// `fd = fs1 - fs2`
    FSub(FReg, FReg, FReg),
    /// `fd = fs1 * fs2`
    FMul(FReg, FReg, FReg),
    /// `fd = fs1 / fs2` (long latency)
    FDiv(FReg, FReg, FReg),
    /// `fd = sqrt(fs)` (long latency)
    FSqrt(FReg, FReg),
    /// `fd = fs`
    FMov(FReg, FReg),
    /// `fd = imm`
    FMovI(FReg, f64),
    /// `fd = rs as f64`
    CvtIF(FReg, Reg),
    /// `rd = fs as i64` (truncating; saturates on overflow/NaN)
    CvtFI(Reg, FReg),

    // --- Memory -----------------------------------------------------------
    /// `rd = mem[rs + imm]`
    Load(Reg, Reg, i64),
    /// `mem[rbase + imm] = rval`
    Store(Reg, Reg, i64),
    /// `fd = mem[rs + imm]` reinterpreted as f64 bits
    FLoad(FReg, Reg, i64),
    /// `mem[rbase + imm] = fval` bits
    FStore(FReg, Reg, i64),

    // --- Control flow -----------------------------------------------------
    /// Unconditional jump to `target`.
    Jmp(Addr),
    /// Indirect jump through a register holding an address (jump tables).
    JmpInd(Reg),
    /// Conditional branch: if `cond(rs1, rs2)` jump to `target`.
    Br(Cond, Reg, Reg, Addr),
    /// Branch if `rs == 0`.
    Brz(Reg, Addr),
    /// Branch if `rs != 0`.
    Brnz(Reg, Addr),
    /// Direct call; pushes the return address on the call stack.
    Call(Addr),
    /// Indirect call through a register (virtual dispatch).
    CallInd(Reg),
    /// Return to the address on top of the call stack.
    Ret,

    // --- Misc ---------------------------------------------------------------
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

/// Coarse instruction class used for latency/uop assignment and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsnClass {
    /// Single-cycle integer ALU operations (including moves).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide/remainder — the paper's "long latency instruction".
    Div,
    /// Cheap floating point (add/sub/mov/convert).
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt — long latency.
    FpDiv,
    /// Memory load (latency depends on the cache model).
    Load,
    /// Memory store.
    Store,
    /// Unconditional direct/indirect jump.
    Jump,
    /// Conditional branch.
    Branch,
    /// Direct or indirect call.
    Call,
    /// Return.
    Ret,
    /// `nop` / `halt`.
    Other,
}

/// An instruction; currently just the opcode, kept as a distinct type so
/// metadata (e.g. debug info) can be added without touching every consumer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Insn {
    pub op: Opcode,
}

impl Insn {
    /// Wraps an opcode into an instruction.
    #[must_use]
    pub const fn new(op: Opcode) -> Self {
        Self { op }
    }

    /// Returns the coarse class of this instruction.
    #[must_use]
    pub fn class(&self) -> InsnClass {
        use Opcode::*;
        match self.op {
            Add(..) | Sub(..) | And(..) | Or(..) | Xor(..) | Shl(..) | Shr(..) | AddI(..)
            | SubI(..) | AndI(..) | XorI(..) | Mov(..) | MovI(..) => InsnClass::Alu,
            Mul(..) | MulI(..) => InsnClass::Mul,
            Div(..) | Rem(..) => InsnClass::Div,
            FAdd(..) | FSub(..) | FMov(..) | FMovI(..) | CvtIF(..) | CvtFI(..) => InsnClass::FpAdd,
            FMul(..) => InsnClass::FpMul,
            FDiv(..) | FSqrt(..) => InsnClass::FpDiv,
            Load(..) | FLoad(..) => InsnClass::Load,
            Store(..) | FStore(..) => InsnClass::Store,
            Jmp(..) | JmpInd(..) => InsnClass::Jump,
            Br(..) | Brz(..) | Brnz(..) => InsnClass::Branch,
            Call(..) | CallInd(..) => InsnClass::Call,
            Ret => InsnClass::Ret,
            Nop | Halt => InsnClass::Other,
        }
    }

    /// Number of micro-operations this instruction decodes into.
    ///
    /// Uop counts matter for AMD IBS modeling: IBS samples *uops*, so
    /// multi-uop instructions are proportionally oversampled relative to an
    /// instruction-count ground truth (§6.2 of the paper: "A precise
    /// instruction event in AMD's IBS is missing, which led us to use
    /// precise uops instead").
    #[must_use]
    pub fn uops(&self) -> u32 {
        match self.class() {
            InsnClass::Alu | InsnClass::Jump | InsnClass::Branch | InsnClass::Other => 1,
            InsnClass::Mul | InsnClass::FpAdd | InsnClass::FpMul | InsnClass::Load => 1,
            InsnClass::Store => 2,
            InsnClass::Call | InsnClass::Ret => 2,
            InsnClass::Div => 8,
            InsnClass::FpDiv => 6,
        }
    }

    /// True when this instruction ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.class(),
            InsnClass::Jump | InsnClass::Branch | InsnClass::Call | InsnClass::Ret
        ) || matches!(self.op, Opcode::Halt)
    }

    /// True when this instruction is a control-flow transfer that, when
    /// taken, is recorded by the LBR facility (taken branches, jumps, calls
    /// and returns).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self.class(),
            InsnClass::Jump | InsnClass::Branch | InsnClass::Call | InsnClass::Ret
        )
    }

    /// Static direct target, if any (`None` for indirect/ret/fallthrough).
    #[must_use]
    pub fn direct_target(&self) -> Option<Addr> {
        match self.op {
            Opcode::Jmp(t)
            | Opcode::Br(_, _, _, t)
            | Opcode::Brz(_, t)
            | Opcode::Brnz(_, t)
            | Opcode::Call(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Opcode> for Insn {
    fn from(op: Opcode) -> Self {
        Insn::new(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(5, 4));
        assert!(Cond::Ge.eval(4, 4));
    }

    #[test]
    fn classes() {
        assert_eq!(Insn::new(Opcode::Add(R0, R1, R2)).class(), InsnClass::Alu);
        assert_eq!(Insn::new(Opcode::Div(R0, R1, R2)).class(), InsnClass::Div);
        assert_eq!(
            Insn::new(Opcode::FDiv(F0, F1, F2)).class(),
            InsnClass::FpDiv
        );
        assert_eq!(Insn::new(Opcode::Load(R0, R1, 0)).class(), InsnClass::Load);
        assert_eq!(Insn::new(Opcode::Ret).class(), InsnClass::Ret);
    }

    #[test]
    fn terminators() {
        assert!(Insn::new(Opcode::Jmp(0)).is_terminator());
        assert!(Insn::new(Opcode::Brz(R1, 0)).is_terminator());
        assert!(Insn::new(Opcode::Call(0)).is_terminator());
        assert!(Insn::new(Opcode::Ret).is_terminator());
        assert!(Insn::new(Opcode::Halt).is_terminator());
        assert!(!Insn::new(Opcode::Nop).is_terminator());
        assert!(!Insn::new(Opcode::Add(R0, R0, R0)).is_terminator());
    }

    #[test]
    fn halt_is_not_lbr_branch() {
        assert!(!Insn::new(Opcode::Halt).is_branch());
        assert!(Insn::new(Opcode::Ret).is_branch());
    }

    #[test]
    fn direct_targets() {
        assert_eq!(Insn::new(Opcode::Jmp(7)).direct_target(), Some(7));
        assert_eq!(Insn::new(Opcode::Call(9)).direct_target(), Some(9));
        assert_eq!(Insn::new(Opcode::Ret).direct_target(), None);
        assert_eq!(Insn::new(Opcode::JmpInd(R1)).direct_target(), None);
    }

    #[test]
    fn div_is_multi_uop() {
        assert!(Insn::new(Opcode::Div(R0, R1, R2)).uops() > 4);
        assert_eq!(Insn::new(Opcode::Add(R0, R1, R2)).uops(), 1);
    }
}
