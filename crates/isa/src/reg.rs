//! Architectural register names.
//!
//! The machine has 16 integer registers (`r0`..`r15`) and 16 floating-point
//! registers (`f0`..`f15`). `r0` is a normal register (not hardwired to
//! zero); workload generators use a simple calling convention where `r0` is
//! the return value, `r1`-`r5` are argument registers and `r12`-`r15` are
//! callee-saved scratch.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer registers.
pub const NUM_REGS: usize = 16;
/// Number of floating-point registers.
pub const NUM_FREGS: usize = 16;

/// An integer register name (`r0`..`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGS`; register names are almost always
    /// compile-time constants, so a fallible constructor would only add
    /// noise (use [`Reg::try_new`] for parsed input).
    #[must_use]
    pub const fn new(idx: u8) -> Self {
        assert!(idx < NUM_REGS as u8, "integer register index out of range");
        Self(idx)
    }

    /// Creates a register name, returning `None` when out of range.
    #[must_use]
    pub const fn try_new(idx: u8) -> Option<Self> {
        if idx < NUM_REGS as u8 {
            Some(Self(idx))
        } else {
            None
        }
    }

    /// Returns the register index (0..16).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register name (`f0`..`f15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register name.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_FREGS` (see [`Reg::new`] for rationale).
    #[must_use]
    pub const fn new(idx: u8) -> Self {
        assert!(idx < NUM_FREGS as u8, "fp register index out of range");
        Self(idx)
    }

    /// Creates a floating-point register name, returning `None` when out of
    /// range.
    #[must_use]
    pub const fn try_new(idx: u8) -> Option<Self> {
        if idx < NUM_FREGS as u8 {
            Some(Self(idx))
        } else {
            None
        }
    }

    /// Returns the register index (0..16).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Convenience constants for the integer registers.
pub mod names {
    use super::{FReg, Reg};

    pub const R0: Reg = Reg::new(0);
    pub const R1: Reg = Reg::new(1);
    pub const R2: Reg = Reg::new(2);
    pub const R3: Reg = Reg::new(3);
    pub const R4: Reg = Reg::new(4);
    pub const R5: Reg = Reg::new(5);
    pub const R6: Reg = Reg::new(6);
    pub const R7: Reg = Reg::new(7);
    pub const R8: Reg = Reg::new(8);
    pub const R9: Reg = Reg::new(9);
    pub const R10: Reg = Reg::new(10);
    pub const R11: Reg = Reg::new(11);
    pub const R12: Reg = Reg::new(12);
    pub const R13: Reg = Reg::new(13);
    pub const R14: Reg = Reg::new(14);
    pub const R15: Reg = Reg::new(15);

    pub const F0: FReg = FReg::new(0);
    pub const F1: FReg = FReg::new(1);
    pub const F2: FReg = FReg::new(2);
    pub const F3: FReg = FReg::new(3);
    pub const F4: FReg = FReg::new(4);
    pub const F5: FReg = FReg::new(5);
    pub const F6: FReg = FReg::new(6);
    pub const F7: FReg = FReg::new(7);
    pub const F8: FReg = FReg::new(8);
    pub const F9: FReg = FReg::new(9);
    pub const F10: FReg = FReg::new(10);
    pub const F11: FReg = FReg::new(11);
    pub const F12: FReg = FReg::new(12);
    pub const F13: FReg = FReg::new(13);
    pub const F14: FReg = FReg::new(14);
    pub const F15: FReg = FReg::new(15);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(15).is_some());
        assert!(Reg::try_new(16).is_none());
        assert!(FReg::try_new(15).is_some());
        assert!(FReg::try_new(16).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(3).to_string(), "r3");
        assert_eq!(FReg::new(7).to_string(), "f7");
    }
}
