//! Error types for program construction, validation and assembly.

use crate::insn::Addr;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A control-flow target points outside the program.
    TargetOutOfRange { at: Addr, target: Addr },
    /// A `call` target is not a known function entry.
    CallTargetNotFunction { at: Addr, target: Addr },
    /// Function address ranges overlap or are out of order.
    MalformedSymbolTable { detail: String },
    /// The program has no instructions.
    EmptyProgram,
    /// The last instruction can fall off the end of the program.
    FallsOffEnd,
    /// Assembler: syntax error. `col` is the 1-based column of the
    /// offending token (0 when the column could not be recovered).
    Parse {
        line: usize,
        col: usize,
        detail: String,
    },
    /// Assembler: a label was referenced but never defined.
    UndefinedLabel { line: usize, label: String },
    /// Assembler: a label was defined more than once.
    DuplicateLabel { line: usize, label: String },
    /// Assembler: an expression referenced an undefined `.const` name.
    UndefinedConst {
        line: usize,
        col: usize,
        name: String,
    },
    /// Assembler: a `.const` name was defined more than once.
    DuplicateConst { line: usize, name: String },
    /// Assembler: [`crate::asm::assemble_with`] was given an override
    /// for a constant the source never defines — a manifest/source
    /// mismatch.
    UnknownOverride { name: String },
    /// Assembler: a `.data` size or `.init` index would grow the data
    /// segment past the assembler's hard bound
    /// ([`crate::asm::MAX_DATA_WORDS`]). Checked before any fill loop
    /// runs, so a hostile source cannot make assembly itself allocate
    /// unbounded memory.
    DataTooLarge {
        line: usize,
        words: usize,
        limit: usize,
    },
    /// Builder: a label was bound more than once.
    LabelRebound { label: u32 },
    /// Builder: an emitted reference was never bound.
    UnboundLabel { label: u32 },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at}: branch target {target} out of range")
            }
            IsaError::CallTargetNotFunction { at, target } => {
                write!(
                    f,
                    "instruction {at}: call target {target} is not a function entry"
                )
            }
            IsaError::MalformedSymbolTable { detail } => {
                write!(f, "malformed symbol table: {detail}")
            }
            IsaError::EmptyProgram => write!(f, "program has no instructions"),
            IsaError::FallsOffEnd => {
                write!(
                    f,
                    "control can fall off the end of the program (missing halt/ret)"
                )
            }
            IsaError::Parse { line, col, detail } => {
                if *col > 0 {
                    write!(f, "line {line}:{col}: {detail}")
                } else {
                    write!(f, "line {line}: {detail}")
                }
            }
            IsaError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            IsaError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            IsaError::UndefinedConst { line, col, name } => {
                if *col > 0 {
                    write!(f, "line {line}:{col}: undefined constant `{name}`")
                } else {
                    write!(f, "line {line}: undefined constant `{name}`")
                }
            }
            IsaError::DuplicateConst { line, name } => {
                write!(f, "line {line}: duplicate constant `{name}`")
            }
            IsaError::UnknownOverride { name } => {
                write!(f, "override names no `.const` in source: `{name}`")
            }
            IsaError::DataTooLarge { line, words, limit } => {
                write!(
                    f,
                    "line {line}: data segment of {words} words exceeds assembler cap {limit}"
                )
            }
            IsaError::LabelRebound { label } => write!(f, "builder label {label} bound twice"),
            IsaError::UnboundLabel { label } => {
                write!(f, "builder label {label} referenced but never bound")
            }
        }
    }
}

impl std::error::Error for IsaError {}
