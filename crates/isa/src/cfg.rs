//! Basic-block identification and control-flow graphs.
//!
//! The accuracy metric of the paper is defined per basic block, so this
//! module is load-bearing for the whole evaluation: both the reference
//! (instrumented) profile and every sampling method attribute costs to the
//! blocks computed here.
//!
//! Leaders follow the classic algorithm: the program entry, every function
//! entry, every direct branch target, and every instruction following a
//! terminator (taken or not) start a block. Blocks never span function
//! boundaries.

use crate::insn::{Addr, Insn, Opcode};
use crate::program::Program;
use serde::{Deserialize, Serialize};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = u32;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Falls through to the next block (block ended by a leader, not by a
    /// control-flow instruction).
    FallThrough,
    /// Unconditional jump (direct or indirect).
    Jump,
    /// Conditional branch: taken edge plus fallthrough edge.
    CondBranch,
    /// Call: control returns to the fallthrough block.
    Call,
    /// Return.
    Ret,
    /// `halt`.
    Halt,
}

/// A basic block covering the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    pub id: BlockId,
    pub start: Addr,
    pub end: Addr,
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the block covers no instructions (never produced by
    /// [`Cfg::build`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `addr` lies inside the block.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Address of the last instruction in the block.
    #[must_use]
    pub fn last_addr(&self) -> Addr {
        self.end - 1
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// For every instruction address, the id of the block containing it.
    block_of: Vec<BlockId>,
    /// Static successor edges (direct targets and fallthroughs only;
    /// indirect jumps/calls contribute no static edges).
    successors: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.insns.len();
        let mut leader = vec![false; n];
        if n == 0 {
            return Self {
                blocks: Vec::new(),
                block_of: Vec::new(),
                successors: Vec::new(),
            };
        }
        leader[program.entry as usize] = true;
        leader[0] = true;
        for f in program.symbols.functions() {
            if (f.entry as usize) < n {
                leader[f.entry as usize] = true;
            }
        }
        for (i, insn) in program.insns.iter().enumerate() {
            if let Some(t) = insn.direct_target() {
                leader[t as usize] = true;
            }
            if insn.is_terminator() && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0 as BlockId; n];
        let mut start = 0usize;
        for i in 0..n {
            let next_is_leader = i + 1 >= n || leader[i + 1];
            if next_is_leader {
                let id = blocks.len() as BlockId;
                let term = Self::terminator_of(program.insns[i]);
                blocks.push(BasicBlock {
                    id,
                    start: start as Addr,
                    end: (i + 1) as Addr,
                    terminator: term,
                });
                for slot in &mut block_of[start..=i] {
                    *slot = id;
                }
                start = i + 1;
            }
        }

        let mut successors = vec![Vec::new(); blocks.len()];
        for b in &blocks {
            let last = program.insns[b.last_addr() as usize];
            let mut succ = Vec::new();
            match b.terminator {
                Terminator::FallThrough | Terminator::Call => {
                    // A call's fallthrough is where the callee returns to.
                    if (b.end as usize) < n {
                        succ.push(block_of[b.end as usize]);
                    }
                    if let Some(t) = last.direct_target() {
                        if matches!(last.op, Opcode::Call(_)) {
                            succ.push(block_of[t as usize]);
                        }
                    }
                }
                Terminator::Jump => {
                    if let Some(t) = last.direct_target() {
                        succ.push(block_of[t as usize]);
                    }
                }
                Terminator::CondBranch => {
                    if let Some(t) = last.direct_target() {
                        succ.push(block_of[t as usize]);
                    }
                    if (b.end as usize) < n {
                        succ.push(block_of[b.end as usize]);
                    }
                }
                Terminator::Ret | Terminator::Halt => {}
            }
            succ.dedup();
            successors[b.id as usize] = succ;
        }

        Self {
            blocks,
            block_of,
            successors,
        }
    }

    fn terminator_of(insn: Insn) -> Terminator {
        use crate::insn::InsnClass;
        match insn.op {
            Opcode::Halt => Terminator::Halt,
            _ => match insn.class() {
                InsnClass::Jump => Terminator::Jump,
                InsnClass::Branch => Terminator::CondBranch,
                InsnClass::Call => Terminator::Call,
                InsnClass::Ret => Terminator::Ret,
                _ => Terminator::FallThrough,
            },
        }
    }

    /// All basic blocks, ordered by start address.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction address `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is out of range.
    #[must_use]
    pub fn block_of(&self, addr: Addr) -> BlockId {
        self.block_of[addr as usize]
    }

    /// The block containing `addr`, or `None` when out of range. Sampling
    /// hardware can report garbage addresses (e.g. skid past the end of the
    /// text segment); attribution code uses this form.
    #[must_use]
    pub fn try_block_of(&self, addr: Addr) -> Option<BlockId> {
        self.block_of.get(addr as usize).copied()
    }

    /// Block lookup by id.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id as usize]
    }

    /// Static successor edges of a block.
    #[must_use]
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.successors[id as usize]
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(block, instruction-range)` pairs for a function.
    pub fn blocks_in_range(&self, start: Addr, end: Addr) -> impl Iterator<Item = &BasicBlock> {
        self.blocks
            .iter()
            .filter(move |b| b.start >= start && b.end <= end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Function, SymbolTable};
    use crate::reg::names::*;

    fn prog(insns: Vec<Opcode>, funcs: Vec<(&str, Addr, Addr)>) -> Program {
        let insns = insns.into_iter().map(Insn::new).collect();
        let sym = SymbolTable::new(
            funcs
                .into_iter()
                .map(|(n, e, x)| Function {
                    name: n.into(),
                    entry: e,
                    end: x,
                })
                .collect(),
        );
        Program::new("t", insns, sym, 0).unwrap()
    }

    #[test]
    fn loop_has_three_blocks() {
        // 0: movi r1, 10      <- block 0
        // 1: subi r1, r1, 1   <- block 1 (branch target)
        // 2: brnz r1, 1
        // 3: halt             <- block 2
        let p = prog(
            vec![
                Opcode::MovI(R1, 10),
                Opcode::SubI(R1, R1, 1),
                Opcode::Brnz(R1, 1),
                Opcode::Halt,
            ],
            vec![("main", 0, 4)],
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.num_blocks(), 3);
        assert_eq!(cfg.block(0).end, 1);
        assert_eq!(cfg.block(1).start, 1);
        assert_eq!(cfg.block(1).terminator, Terminator::CondBranch);
        assert_eq!(cfg.successors(1), &[1, 2]);
        assert_eq!(cfg.block_of(2), 1);
    }

    #[test]
    fn call_ends_block_and_links_fallthrough() {
        // 0: call 3
        // 1: nop
        // 2: halt
        // 3: ret        (function f)
        let p = prog(
            vec![Opcode::Call(3), Opcode::Nop, Opcode::Halt, Opcode::Ret],
            vec![("main", 0, 3), ("f", 3, 4)],
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.num_blocks(), 3);
        let b0 = cfg.block(0);
        assert_eq!(b0.terminator, Terminator::Call);
        // Successors of the call block: fallthrough block and callee entry.
        assert_eq!(cfg.successors(0), &[1, 2]);
        assert_eq!(cfg.block(2).terminator, Terminator::Ret);
    }

    #[test]
    fn function_entry_is_leader_even_without_branch() {
        let p = prog(
            vec![Opcode::Nop, Opcode::Nop, Opcode::Nop, Opcode::Halt],
            vec![("a", 0, 2), ("b", 2, 4)],
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.num_blocks(), 2);
        assert_eq!(cfg.block(1).start, 2);
        assert_eq!(cfg.block(0).terminator, Terminator::FallThrough);
    }

    #[test]
    fn block_of_covers_every_instruction() {
        let p = prog(
            vec![
                Opcode::MovI(R1, 10),
                Opcode::Brz(R1, 4),
                Opcode::AddI(R1, R1, 1),
                Opcode::Jmp(1),
                Opcode::Halt,
            ],
            vec![("main", 0, 5)],
        );
        let cfg = Cfg::build(&p);
        for a in 0..p.len() as Addr {
            let b = cfg.block(cfg.block_of(a));
            assert!(b.contains(a));
        }
        assert!(cfg.try_block_of(99).is_none());
    }

    #[test]
    fn blocks_partition_program() {
        let p = prog(
            vec![
                Opcode::MovI(R1, 3),
                Opcode::SubI(R1, R1, 1),
                Opcode::Brnz(R1, 1),
                Opcode::MovI(R2, 0),
                Opcode::Halt,
            ],
            vec![("main", 0, 5)],
        );
        let cfg = Cfg::build(&p);
        let total: usize = cfg.blocks().iter().map(BasicBlock::len).sum();
        assert_eq!(total, p.len());
        // Blocks are contiguous and ordered.
        let mut prev_end = 0;
        for b in cfg.blocks() {
            assert_eq!(b.start, prev_end);
            assert!(!b.is_empty());
            prev_end = b.end;
        }
    }
}
