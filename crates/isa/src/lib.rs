//! `ct-isa` — a compact register ISA used as the measurement substrate.
//!
//! The paper ("Establishing a Base of Trust with Performance Counters for
//! Enterprise Workloads", Nowak et al., USENIX ATC 2015) evaluates sampling
//! accuracy on x86 binaries. This crate provides the stand-in program
//! representation: a small register machine with integer, floating-point,
//! memory and control-flow instructions, plus the static analyses the
//! profiling pipeline needs (symbol tables, control-flow graphs, basic-block
//! maps) and a text assembler/disassembler for tests and golden files.
//!
//! Addresses are instruction indices: every instruction occupies one address
//! slot, so `Addr` arithmetic (`IP+1` and friends — central to the paper's
//! skid analysis) is plain integer arithmetic.
//!
//! # Examples
//!
//! ```
//! use ct_isa::{asm, Cfg};
//!
//! let program = asm::assemble(
//!     "countdown",
//!     r#"
//!     .data 16
//!     .func main
//!         movi r1, 10
//!     loop:
//!         subi r1, r1, 1
//!         brnz r1, loop
//!         halt
//!     .endfunc
//!     "#,
//! )
//! .unwrap();
//! let cfg = Cfg::build(&program);
//! assert_eq!(cfg.blocks().len(), 3);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod disasm;
pub mod error;
pub mod insn;
pub mod prime;
pub mod program;
pub mod reg;

pub use builder::ProgramBuilder;
pub use cfg::{BasicBlock, BlockId, Cfg, Terminator};
pub use error::IsaError;
pub use insn::{Addr, Cond, Insn, InsnClass, Opcode};
pub use program::{Function, Program, SymbolTable};
pub use reg::{FReg, Reg};
