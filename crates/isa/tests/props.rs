//! Property-based tests for the ISA layer: assembler round-trips, CFG
//! invariants on randomly generated structured programs, primality.

use ct_isa::reg::names::*;
use ct_isa::{asm, disasm, prime, BasicBlock, Cfg, Cond, Insn, Opcode, ProgramBuilder, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

/// Straight-line (non-control-flow) opcodes.
fn arb_linear_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Add(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Sub(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Mul(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Div(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Opcode::Xor(a, b, c)),
        (arb_reg(), arb_reg(), -100i64..100).prop_map(|(a, b, i)| Opcode::AddI(a, b, i)),
        (arb_reg(), arb_reg(), -100i64..100).prop_map(|(a, b, i)| Opcode::SubI(a, b, i)),
        (arb_reg(), -1000i64..1000).prop_map(|(a, i)| Opcode::MovI(a, i)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Opcode::Mov(a, b)),
        Just(Opcode::Nop),
    ]
}

/// A structured, always-terminating program: a counted loop whose body is
/// linear code with optional forward skips and calls to linear leaves.
#[derive(Debug, Clone)]
enum BodyOp {
    Linear(Opcode),
    /// Skip the next `n` linear ops when r2 == 0.
    FwdSkip(u8),
    Call(u8),
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        4 => arb_linear_op().prop_map(BodyOp::Linear),
        1 => (1u8..4).prop_map(BodyOp::FwdSkip),
        1 => (0u8..3).prop_map(BodyOp::Call),
    ]
}

fn build_program(loop_n: u16, body: &[BodyOp], leaves: &[Vec<Opcode>]) -> ct_isa::Program {
    let mut b = ProgramBuilder::new("prop");
    b.begin_func("main");
    b.movi(R1, i64::from(loop_n) + 1);
    let top = b.here_label();
    let mut pending_skip: Option<(ct_isa::builder::Label, u8)> = None;
    for op in body {
        match op {
            BodyOp::Linear(op) => {
                b.emit(*op);
                if let Some((label, n)) = pending_skip.take() {
                    if n <= 1 {
                        b.bind(label).unwrap();
                    } else {
                        pending_skip = Some((label, n - 1));
                    }
                }
            }
            BodyOp::FwdSkip(n) => {
                if pending_skip.is_none() {
                    let label = b.new_label();
                    b.brz(R2, label);
                    pending_skip = Some((label, *n));
                }
            }
            BodyOp::Call(i) => {
                if pending_skip.is_none() && !leaves.is_empty() {
                    b.call(format!("leaf{}", *i as usize % leaves.len()));
                }
            }
        }
    }
    if let Some((label, _)) = pending_skip.take() {
        b.bind(label).unwrap();
    }
    b.subi(R1, R1, 1);
    b.brnz(R1, top);
    b.halt();
    b.end_func();
    for (i, leaf) in leaves.iter().enumerate() {
        b.begin_func(format!("leaf{i}"));
        for op in leaf {
            b.emit(*op);
        }
        b.ret();
        b.end_func();
    }
    b.build().expect("structured programs are always valid")
}

proptest! {
    #[test]
    fn instruction_display_reassembles(op in arb_linear_op()) {
        let insn = Insn::new(op);
        let text = format!(".func main\n {insn}\n halt\n.endfunc\n");
        let p = asm::assemble("t", &text).expect("rendered instruction parses");
        prop_assert_eq!(p.insns[0].op, op);
    }

    #[test]
    fn branch_display_reassembles(
        cond in prop_oneof![
            Just(Cond::Eq), Just(Cond::Ne), Just(Cond::Lt),
            Just(Cond::Le), Just(Cond::Gt), Just(Cond::Ge)
        ],
        a in arb_reg(),
        b in arb_reg(),
    ) {
        let insn = Insn::new(Opcode::Br(cond, a, b, 0));
        let text = format!(".func main\n {insn}\n halt\n.endfunc\n");
        let p = asm::assemble("t", &text).expect("rendered branch parses");
        prop_assert_eq!(p.insns[0].op, Opcode::Br(cond, a, b, 0));
    }

    #[test]
    fn memory_display_reassembles(r in arb_reg(), base in arb_reg(), off in -64i64..64) {
        let insn = Insn::new(Opcode::Load(r, base, off));
        let text = format!(".data 8\n.func main\n {insn}\n halt\n.endfunc\n");
        let p = asm::assemble("t", &text).expect("rendered load parses");
        prop_assert_eq!(p.insns[0].op, Opcode::Load(r, base, off));
    }

    /// Whole-program round trip: random structured `Program` (control
    /// flow, calls, data segment, init words) → [`disasm::to_asm`] text
    /// → [`asm::assemble`] → structurally equal `Program`. Shrinking
    /// happens on the generator inputs, which shrink the text form with
    /// them — a failing case minimizes to the shortest source that
    /// still breaks the round trip.
    #[test]
    fn whole_program_roundtrips_through_to_asm(
        loop_n in 1u16..20,
        body in prop::collection::vec(arb_body_op(), 0..30),
        leaves in prop::collection::vec(prop::collection::vec(arb_linear_op(), 0..6), 0..3),
        data_extra in 0usize..32,
        inits in prop::collection::vec((0usize..24, -1000i64..1000), 0..8),
    ) {
        let mut p = build_program(loop_n, &body, &leaves);
        // Graft a data segment and init words onto the built program the
        // same way the builder-based workloads do.
        p.data_words = 24 + data_extra;
        p.init_data = inits;
        let text = disasm::to_asm(&p);
        let back = asm::assemble("prop", &text)
            .expect("to_asm output of a valid program re-assembles");
        prop_assert_eq!(p, back, "round trip changed the program; text was:\n{}", text);
    }

    #[test]
    fn cfg_blocks_partition_program(
        loop_n in 1u16..20,
        body in prop::collection::vec(arb_body_op(), 0..30),
        leaves in prop::collection::vec(prop::collection::vec(arb_linear_op(), 0..6), 0..3),
    ) {
        let p = build_program(loop_n, &body, &leaves);
        let cfg = Cfg::build(&p);
        // Contiguous, non-empty, covering.
        let mut prev_end = 0u32;
        for b in cfg.blocks() {
            prop_assert_eq!(b.start, prev_end);
            prop_assert!(!b.is_empty());
            prev_end = b.end;
        }
        prop_assert_eq!(prev_end as usize, p.len());
        let covered: usize = cfg.blocks().iter().map(BasicBlock::len).sum();
        prop_assert_eq!(covered, p.len());
        // block_of is consistent.
        for a in 0..p.len() as u32 {
            prop_assert!(cfg.block(cfg.block_of(a)).contains(a));
        }
        // Terminators only at block ends; leaders at block starts.
        for b in cfg.blocks() {
            for addr in b.start..b.end.saturating_sub(1) {
                prop_assert!(
                    !p.insns[addr as usize].is_terminator(),
                    "terminator mid-block at {}", addr
                );
            }
        }
        // All successors in range.
        for b in cfg.blocks() {
            for &s in cfg.successors(b.id) {
                prop_assert!((s as usize) < cfg.num_blocks());
            }
        }
    }

    #[test]
    fn direct_targets_are_block_leaders(
        loop_n in 1u16..20,
        body in prop::collection::vec(arb_body_op(), 0..30),
    ) {
        let p = build_program(loop_n, &body, &[]);
        let cfg = Cfg::build(&p);
        for insn in &p.insns {
            if let Some(t) = insn.direct_target() {
                let blk = cfg.block(cfg.block_of(t));
                prop_assert_eq!(blk.start, t, "branch target must start a block");
            }
        }
    }

    #[test]
    fn next_prime_is_prime_and_minimal(n in 0u64..2_000_000) {
        let p = prime::next_prime(n);
        prop_assert!(prime::is_prime(p));
        prop_assert!(p >= n.max(2));
        // No prime in (n, p).
        for candidate in n..p {
            prop_assert!(!prime::is_prime(candidate) || candidate < 2);
        }
    }

    #[test]
    fn is_prime_matches_trial_division(n in 0u64..10_000) {
        let trial = n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
        prop_assert_eq!(prime::is_prime(n), trial);
    }
}
