//! The profiling session: a perf-record-like driver.
//!
//! A [`Session`] binds a machine and a program, lazily collects the exact
//! reference profile (the "REF" column), and runs sampling methods against
//! the same workload, producing [`MethodRun`]s with estimated profiles and
//! their accuracy errors.
//!
//! The reference profile is held behind an [`Arc`] so sessions over the
//! same `(machine, workload)` pair can share one collection instead of
//! re-driving the instrumented execution: the grid engine
//! ([`crate::grid`]) collects each pair's reference once and fans it out
//! to every per-method session via [`Session::with_reference`].

use crate::attrib;
use crate::error::CoreError;
use crate::methods::MethodInstance;
use crate::metrics::accuracy_error;
use crate::profile::EstimatedProfile;
use ct_instrument::ReferenceProfile;
use ct_isa::{Cfg, Program};
use ct_pmu::{Sampler, SamplerStats};
use ct_sim::{Cpu, MachineModel, RunConfig, RunSummary};
use std::sync::Arc;

/// Result of running one sampling method once.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// The estimated profile.
    pub profile: EstimatedProfile,
    /// §3.3 accuracy error against the session's reference profile.
    pub accuracy_error: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Sampler bookkeeping (overflows, drops).
    pub stats: SamplerStats,
    /// Mean skid in retired instructions (diagnostic).
    pub mean_skid: f64,
}

/// A profiling session over one `(machine, program)` pair.
pub struct Session<'a> {
    machine: &'a MachineModel,
    program: &'a Program,
    cfg: Arc<Cfg>,
    run_config: RunConfig,
    reference: Option<Arc<ReferenceProfile>>,
    reference_summary: Option<RunSummary>,
    /// Retained interpreter: its scratch tables (decoded program, data
    /// memory, call stack, predictor and cache state) are allocated on the
    /// first [`Session::run_method`] call and reset — not reallocated —
    /// on every subsequent method × seed replay.
    cpu: Cpu<'a>,
}

impl<'a> Session<'a> {
    /// Creates a session with the default run configuration.
    #[must_use]
    pub fn new(machine: &'a MachineModel, program: &'a Program) -> Self {
        Self::with_run_config(machine, program, RunConfig::default())
    }

    /// Creates a session with an explicit run configuration (fuel, args).
    #[must_use]
    pub fn with_run_config(
        machine: &'a MachineModel,
        program: &'a Program,
        run_config: RunConfig,
    ) -> Self {
        Self::with_shared_parts(
            machine,
            program,
            run_config,
            Arc::new(Cfg::build(program)),
            None,
        )
    }

    /// Creates a session that reuses an already-collected reference
    /// profile instead of re-driving the instrumented execution.
    ///
    /// The caller must pass a profile collected for the same
    /// `(machine, program, run_config)` triple; accuracy numbers are
    /// meaningless otherwise. This is the constructor behind the grid
    /// engine's reference sharing.
    #[must_use]
    pub fn with_reference(
        machine: &'a MachineModel,
        program: &'a Program,
        run_config: RunConfig,
        reference: Arc<ReferenceProfile>,
    ) -> Self {
        Self::with_shared_parts(
            machine,
            program,
            run_config,
            Arc::new(Cfg::build(program)),
            Some(reference),
        )
    }

    /// The most general constructor: shares both the program's CFG and
    /// (optionally) the reference profile with other sessions.
    ///
    /// `cfg` must be built from `program` and `reference` (when given)
    /// collected for the same `(machine, program, run_config)` triple.
    /// The grid engine uses this to build one CFG per workload and one
    /// reference per (machine, workload) pair, no matter how many method
    /// cells consume them.
    #[must_use]
    pub fn with_shared_parts(
        machine: &'a MachineModel,
        program: &'a Program,
        run_config: RunConfig,
        cfg: Arc<Cfg>,
        reference: Option<Arc<ReferenceProfile>>,
    ) -> Self {
        Self {
            machine,
            program,
            cfg,
            run_config,
            reference,
            reference_summary: None,
            cpu: Cpu::new(machine),
        }
    }

    /// The machine under test.
    #[must_use]
    pub fn machine(&self) -> &MachineModel {
        self.machine
    }

    /// The program's control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The exact reference profile, collected on first use (one extra
    /// instrumented execution, like the paper's Pin run).
    pub fn reference(&mut self) -> Result<&ReferenceProfile, CoreError> {
        self.ensure_reference()?;
        Ok(self.reference.as_deref().expect("just collected"))
    }

    /// Like [`Session::reference`], but returns the shareable handle so
    /// other sessions over the same pair can reuse the collection via
    /// [`Session::with_reference`].
    pub fn shared_reference(&mut self) -> Result<Arc<ReferenceProfile>, CoreError> {
        self.ensure_reference()?;
        Ok(self.reference.clone().expect("just collected"))
    }

    fn ensure_reference(&mut self) -> Result<(), CoreError> {
        if self.reference.is_none() {
            let (reference, summary) = ReferenceProfile::collect_with_cfg(
                self.machine,
                self.program,
                &self.cfg,
                &self.run_config,
            )?;
            self.reference = Some(Arc::new(reference));
            self.reference_summary = Some(summary);
        }
        Ok(())
    }

    /// Runs one sampling method with the given seed and evaluates it
    /// against the reference profile.
    pub fn run_method(
        &mut self,
        method: &MethodInstance,
        seed: u64,
    ) -> Result<MethodRun, CoreError> {
        // Ensure the reference exists before the borrow below.
        self.ensure_reference()?;
        let mut config = method.config.clone();
        config.seed = seed;
        let mut sampler = Sampler::new(self.machine, &config)?;
        let nominal = sampler.nominal_period();
        self.cpu
            .run_observed(self.program, &self.run_config, &mut sampler)?;
        let stats = sampler.stats();
        let batch = sampler.into_batch();
        let bb_mass = attrib::attribute(&batch, &self.cfg, method.attribution, nominal);
        let profile = EstimatedProfile::from_bb_mass(bb_mass, self.program, &self.cfg);
        let reference = self.reference.as_deref().expect("collected above");
        let err = accuracy_error(&profile.bb_mass, &reference.bb_instructions);
        Ok(MethodRun {
            profile,
            accuracy_error: err,
            samples: batch.len(),
            stats,
            mean_skid: batch.mean_skid(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodKind, MethodOptions};
    use ct_isa::asm::assemble;

    fn kernel() -> Program {
        assemble(
            "k",
            r#"
            .func main
                movi r1, 30000
            top:
                addi r2, r2, 1
                addi r3, r3, 1
                addi r4, r4, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap()
    }

    #[test]
    fn reference_is_cached() {
        let m = MachineModel::ivy_bridge();
        let p = kernel();
        let mut s = Session::new(&m, &p);
        let t1 = s.reference().unwrap().total_instructions();
        let t2 = s.reference().unwrap().total_instructions();
        assert_eq!(t1, t2);
        assert_eq!(t1, 2 + 30_000 * 5);
    }

    #[test]
    fn lbr_method_beats_classic_on_a_kernel() {
        let m = MachineModel::ivy_bridge();
        let p = kernel();
        let mut s = Session::new(&m, &p);
        let opts = MethodOptions::fast();
        let classic = s
            .run_method(&MethodKind::Classic.instantiate(&m, &opts).unwrap(), 7)
            .unwrap();
        let lbr = s
            .run_method(&MethodKind::Lbr.instantiate(&m, &opts).unwrap(), 7)
            .unwrap();
        assert!(classic.samples > 0);
        assert!(lbr.samples > 0);
        assert!(
            lbr.accuracy_error < classic.accuracy_error,
            "LBR {:.4} should beat classic {:.4}",
            lbr.accuracy_error,
            classic.accuracy_error
        );
    }

    #[test]
    fn unavailable_method_is_a_clean_error() {
        let m = MachineModel::magny_cours();
        let p = kernel();
        let mut s = Session::new(&m, &p);
        // Classic on AMD works.
        let opts = MethodOptions::fast();
        let c = MethodKind::Classic.instantiate(&m, &opts).unwrap();
        assert!(s.run_method(&c, 1).is_ok());
        // LBR on AMD cannot even be instantiated.
        assert!(MethodKind::Lbr.instantiate(&m, &opts).is_none());
    }

    #[test]
    fn errors_are_reproducible_for_a_seed() {
        let m = MachineModel::westmere();
        let p = kernel();
        let opts = MethodOptions::fast();
        let method = MethodKind::PrecisePrimeRand.instantiate(&m, &opts).unwrap();
        let mut s1 = Session::new(&m, &p);
        let mut s2 = Session::new(&m, &p);
        let a = s1.run_method(&method, 42).unwrap();
        let b = s2.run_method(&method, 42).unwrap();
        assert_eq!(a.accuracy_error, b.accuracy_error);
        assert_eq!(a.samples, b.samples);
    }
}
