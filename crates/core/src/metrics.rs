//! Accuracy metrics.
//!
//! The headline metric is §3.3's accuracy error:
//!
//! ```text
//! err(x) = Σ_i |BB_x[i] − BB_REF[i]|  /  net_instruction_count
//! ```
//!
//! Estimates are first scaled so their total mass equals the reference
//! total — the metric measures *distribution* error, not sampling-rate
//! mismatch (a real tool equally calibrates sample mass against a counting
//! counter or wall-clock rate). An error of 0 is a perfect profile; an
//! error of 2 means the estimate put all mass where none belongs.

use serde::{Deserialize, Serialize};

/// §3.3 accuracy error between an estimated and a reference block profile.
///
/// Returns 2.0 (maximal disagreement) when the estimate is empty but the
/// reference is not — an empty profile is "all mass in the wrong place".
///
/// # Panics
///
/// Panics when the two slices have different lengths (they must index the
/// same CFG).
#[must_use]
pub fn accuracy_error(estimated: &[f64], reference: &[u64]) -> f64 {
    assert_eq!(
        estimated.len(),
        reference.len(),
        "profiles index the same CFG"
    );
    let ref_total: f64 = reference.iter().map(|&x| x as f64).sum();
    if ref_total == 0.0 {
        return 0.0;
    }
    let est_total: f64 = estimated.iter().sum();
    if est_total <= 0.0 {
        return 2.0;
    }
    let scale = ref_total / est_total;
    let abs_dev: f64 = estimated
        .iter()
        .zip(reference.iter())
        .map(|(&e, &r)| (e * scale - r as f64).abs())
        .sum();
    abs_dev / ref_total
}

/// Unscaled variant: compares raw estimated mass against the reference
/// (includes sampling-rate error; used by diagnostics and ablations).
#[must_use]
pub fn raw_accuracy_error(estimated: &[f64], reference: &[u64]) -> f64 {
    assert_eq!(estimated.len(), reference.len());
    let ref_total: f64 = reference.iter().map(|&x| x as f64).sum();
    if ref_total == 0.0 {
        return 0.0;
    }
    let abs_dev: f64 = estimated
        .iter()
        .zip(reference.iter())
        .map(|(&e, &r)| (e - r as f64).abs())
        .sum();
    abs_dev / ref_total
}

/// True when the top-`n` entries of both rankings name the same items in
/// the same order (the paper's FullCMS "top 10 functions in the right
/// order" check, §5.2).
#[must_use]
pub fn top_n_exact_match<T: PartialEq>(a: &[T], b: &[T], n: usize) -> bool {
    let n = n.min(a.len()).min(b.len());
    if a.len() < n || b.len() < n {
        return false;
    }
    a[..n] == b[..n]
}

/// Kendall rank-correlation coefficient (tau-a) between two orderings of
/// the same item set, each given as a ranked list of item identifiers.
///
/// Items missing from either list are ignored. Returns 1.0 for identical
/// orderings, -1.0 for reversed, and 0.0 when fewer than two common items
/// exist.
#[must_use]
pub fn kendall_tau<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    // Positions of common items in both rankings.
    let common: Vec<(usize, usize)> = a
        .iter()
        .enumerate()
        .filter_map(|(ia, item)| b.iter().position(|x| x == item).map(|ib| (ia, ib)))
        .collect();
    let n = common.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = common[i].0.cmp(&common[j].0);
            let db = common[i].1.cmp(&common[j].1);
            if da == db {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Summary statistics over repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl Stats {
    /// Computes stats over `values` (population standard deviation).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_profile_has_zero_error() {
        let reference = vec![100u64, 50, 0, 25];
        let est: Vec<f64> = reference.iter().map(|&x| x as f64).collect();
        assert_eq!(accuracy_error(&est, &reference), 0.0);
    }

    #[test]
    fn scaling_is_ignored() {
        let reference = vec![100u64, 50, 25];
        // Same distribution at 3x the mass: still perfect.
        let est = vec![300.0, 150.0, 75.0];
        assert!(accuracy_error(&est, &reference) < 1e-12);
        // But the raw metric sees the mass mismatch.
        assert!(raw_accuracy_error(&est, &reference) > 1.9);
    }

    #[test]
    fn fully_misplaced_mass_errors_at_two() {
        let reference = vec![100u64, 0];
        let est = vec![0.0, 100.0];
        assert_eq!(accuracy_error(&est, &reference), 2.0);
    }

    #[test]
    fn empty_estimate_is_maximal_error() {
        let reference = vec![10u64, 20];
        let est = vec![0.0, 0.0];
        assert_eq!(accuracy_error(&est, &reference), 2.0);
    }

    #[test]
    fn empty_reference_is_zero_error() {
        assert_eq!(accuracy_error(&[0.0, 0.0], &[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same CFG")]
    fn length_mismatch_panics() {
        let _ = accuracy_error(&[1.0], &[1, 2]);
    }

    #[test]
    fn partial_error_in_between() {
        let reference = vec![100u64, 100];
        let est = vec![150.0, 50.0];
        // Scaled totals match; |150-100| + |50-100| = 100; /200 = 0.5.
        assert!((accuracy_error(&est, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_n_match() {
        let a = ["f", "g", "h", "i"];
        let b = ["f", "g", "x", "y"];
        assert!(top_n_exact_match(&a, &b, 2));
        assert!(!top_n_exact_match(&a, &b, 3));
    }

    #[test]
    fn kendall_identical_and_reversed() {
        let a = [1, 2, 3, 4, 5];
        let rev = [5, 4, 3, 2, 1];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn kendall_partial_overlap() {
        let a = [1, 2, 3, 4];
        let b = [2, 1, 9, 9];
        // Common items {1,2}: one discordant pair.
        assert_eq!(kendall_tau(&a, &b), -1.0);
        assert_eq!(kendall_tau(&a, &[9, 9]), 0.0);
    }

    #[test]
    fn stats_basics() {
        let s = Stats::from_values(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let empty = Stats::from_values(&[]);
        assert_eq!(empty.n, 0);
    }
}
