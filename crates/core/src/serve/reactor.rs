//! Event-driven accept loop for [`super::net::EvalServer`].
//!
//! The original accept loop polled a non-blocking listener and napped
//! 1 ms between attempts — an idle server woke a thousand times a
//! second, and an at-cap server burned the same poll waiting for a
//! slot. This reactor inverts that: the listener stays in **blocking**
//! mode, so an idle accept thread parks in the kernel's readiness
//! queue, and a fixed pool of connection workers provides the
//! concurrency cap — handing a connection to the pool *blocks* (a
//! rendezvous channel) when every worker is busy, which is exactly the
//! at-cap backpressure the old loop polled for. There is no
//! fixed-interval `thread::sleep` anywhere on the accept path.
//!
//! Shutdown with a blocking accept needs a wake-up: the shutdown side
//! sets the stop flag and then opens (and immediately drops) a
//! throwaway loopback connection to the listener, which unparks the
//! accept call. The reactor re-checks the flag after every accept, so
//! the wake connection — or any client unlucky enough to race the
//! shutdown — is dropped without being handed to a worker.
//!
//! The [`ConnectionRegistry`] tracks how many connections are in
//! flight (and the high-water mark), observable from other threads
//! while the server runs.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

/// Where accepted connections come from. The indirection exists so
/// fault-injection tests can wrap a real listener with one that starts
/// failing on command — `accept(2)` does not fail on demand.
pub(crate) trait AcceptSource: Sync {
    /// Blocks until the next connection (or a listener-level error).
    fn accept_stream(&self) -> io::Result<TcpStream>;
}

impl AcceptSource for TcpListener {
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(stream, _peer)| stream)
    }
}

/// Live view of the reactor's in-flight connections.
#[derive(Debug, Default)]
pub(crate) struct ConnectionRegistry {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl ConnectionRegistry {
    /// Registers one connection; the returned guard deregisters it on
    /// drop (also on panic — that is the point of a guard).
    pub(crate) fn register(&self) -> ConnectionGuard<'_> {
        let now = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak.fetch_max(now, Ordering::AcqRel);
        ConnectionGuard(self)
    }

    /// Connections currently being served.
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Most connections ever served at once.
    pub(crate) fn peak(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }
}

/// RAII registration of one in-flight connection.
pub(crate) struct ConnectionGuard<'a>(&'a ConnectionRegistry);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Runs the reactor until `stop` is observed or the source fails:
/// accepts on the calling thread, serves each connection on one of
/// `workers` pooled threads via `handle_connection` (which owns all
/// per-connection accounting and panic isolation — it must not
/// unwind). Returns the listener-level error, if that is what ended
/// the loop; the caller still has every counter `handle_connection`
/// recorded, whichever way the loop ended.
pub(crate) fn run_reactor<S, F>(
    source: &S,
    stop: &AtomicBool,
    workers: usize,
    handle_connection: F,
) -> Option<io::Error>
where
    S: AcceptSource + ?Sized,
    F: Fn(TcpStream) + Sync,
{
    let workers = workers.max(1);
    // Rendezvous hand-off: a send completes only when a worker is
    // ready to take the stream, so the accept thread blocks — without
    // polling — exactly while all workers are busy.
    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(0);
    let conn_rx = Mutex::new(conn_rx);
    let mut accept_error: Option<io::Error> = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let conn_rx = &conn_rx;
            let handle_connection = &handle_connection;
            scope.spawn(move || loop {
                // Take the next stream while holding the lock, then
                // release it before serving so siblings keep draining.
                let next = {
                    let receiver = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
                    receiver.recv()
                };
                match next {
                    Ok(stream) => handle_connection(stream),
                    Err(_) => break, // accept loop ended, queue drained
                }
            });
        }

        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match source.accept_stream() {
                Ok(stream) => {
                    if stop.load(Ordering::Acquire) {
                        // The shutdown wake-up (or a client racing it):
                        // dropped, never handed to a worker.
                        break;
                    }
                    if conn_tx.send(stream).is_err() {
                        break; // all workers gone — cannot happen before the scope ends
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            }
        }
        // Closing the channel releases every idle worker; leaving the
        // scope joins them all — the graceful drain.
        drop(conn_tx);
    });

    accept_error
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicU64;

    /// Delegates to a real listener for the first `good` accepts, then
    /// fails with a synthetic listener error.
    struct FailingSource {
        listener: TcpListener,
        good: usize,
        taken: AtomicUsize,
    }

    impl AcceptSource for FailingSource {
        fn accept_stream(&self) -> io::Result<TcpStream> {
            if self.taken.fetch_add(1, Ordering::SeqCst) >= self.good {
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "injected listener failure",
                ));
            }
            self.listener.accept_stream()
        }
    }

    #[test]
    fn listener_error_surfaces_after_accepted_work_is_served() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let source = FailingSource {
            listener,
            good: 2,
            taken: AtomicUsize::new(0),
        };
        let stop = AtomicBool::new(false);
        let bytes_served = AtomicU64::new(0);

        let error = std::thread::scope(|scope| {
            let reactor = scope.spawn(|| {
                run_reactor(&source, &stop, 4, |mut stream: TcpStream| {
                    let mut buf = Vec::new();
                    stream.read_to_end(&mut buf).unwrap();
                    bytes_served.fetch_add(buf.len() as u64, Ordering::SeqCst);
                })
            });
            for _ in 0..2 {
                let mut client = TcpStream::connect(addr).unwrap();
                client.write_all(b"ping!").unwrap();
            }
            reactor.join().unwrap()
        });

        let error = error.expect("injected failure must surface");
        assert_eq!(error.to_string(), "injected listener failure");
        assert_eq!(
            bytes_served.load(Ordering::SeqCst),
            10,
            "work accepted before the failure is still served and counted"
        );
    }

    #[test]
    fn registry_tracks_active_and_peak() {
        let registry = ConnectionRegistry::default();
        assert_eq!((registry.active(), registry.peak()), (0, 0));
        let a = registry.register();
        let b = registry.register();
        assert_eq!((registry.active(), registry.peak()), (2, 2));
        drop(a);
        assert_eq!((registry.active(), registry.peak()), (1, 2));
        let c = registry.register();
        assert_eq!((registry.active(), registry.peak()), (2, 2));
        drop(b);
        drop(c);
        assert_eq!((registry.active(), registry.peak()), (0, 2));
    }

    #[test]
    fn stop_flag_plus_wake_connection_ends_a_parked_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = AtomicBool::new(false);
        let served = AtomicUsize::new(0);
        let error = std::thread::scope(|scope| {
            let reactor = scope.spawn(|| {
                run_reactor(&listener, &stop, 2, |_stream| {
                    served.fetch_add(1, Ordering::SeqCst);
                })
            });
            stop.store(true, Ordering::Release);
            let _wake = TcpStream::connect(addr).unwrap();
            reactor.join().unwrap()
        });
        assert!(error.is_none());
        assert_eq!(
            served.load(Ordering::SeqCst),
            0,
            "the wake connection is dropped, not served"
        );
    }
}
