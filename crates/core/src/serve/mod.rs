//! The batched evaluation service: request-driven traffic on top of the
//! grid machinery.
//!
//! The grid engine ([`crate::grid`]) evaluates a *static*
//! machine × workload table. This module serves *ad-hoc* evaluation
//! traffic: a stream of [`EvalRequest`]s naming a machine, workload and
//! method by name. Each batch handed to [`EvalService::serve`] is
//!
//! 1. **resolved** against the service's catalog (unknown names become
//!    per-request error responses, never panics);
//! 2. **sharded** by `(machine, workload)` pair, so every request touching
//!    a pair rides on the same expensive state;
//! 3. fanned across a worker pool (the same scoped-thread queue the grid
//!    uses) in two waves: shards first *attach* to their pair state
//!    through the LRU-bounded [`ProfileCache`] (one task per shard — a
//!    reference profile and CFG are built **at most once per pair per
//!    cache residency**, and at most once per pair per batch regardless
//!    of cache capacity, because the batch holds the attached parts for
//!    its whole lifetime), then every request *evaluates* as its own
//!    task, so even a fully skewed batch — all requests on one hot
//!    pair — spreads across every worker;
//! 4. answered **in request order**, with per-run seeds derived from the
//!    request itself ([`request_seed`]), never from scheduling.
//!
//! # Pipelined intake
//!
//! [`EvalService::serve`] puts a full barrier between batches: reference
//! builds for batch N+1 idle behind batch N's evaluation. For continuous
//! streams, [`EvalService::serve_pipelined`] replaces the barrier with a
//! staged pipeline — intake (incremental JSON-lines parsing), planning
//! (pair sharding), build (cache warming) and evaluation each run on
//! their own stage, connected by bounded queues
//! ([`PipelineOptions::depth`] chunks of [`PipelineOptions::chunk`]
//! requests) — so later chunks' reference builds overlap earlier chunks'
//! evaluation while responses still come out in stream order. Malformed
//! lines become in-order error responses; the pipeline keeps draining.
//!
//! # Catalogs and tenants
//!
//! A [`Catalog`] is a named, registrable value: machines + workloads +
//! the default [`MethodOptions`] requests against it are instantiated
//! with. A service constructed with [`EvalService::new`] owns a single
//! default catalog; [`EvalService::with_registry`] serves a whole
//! [`CatalogRegistry`] of named catalogs behind **one** shared
//! [`ProfileCache`] and admission policy. Requests pick their catalog
//! with the optional `catalog` field ([`EvalRequest::catalog`]); absent
//! means the default catalog, and the wire format without the field is
//! byte-identical to the single-catalog service's. Cache keys are
//! namespaced by catalog index ([`PairKey::catalog`]), so tenants never
//! collide even when they bind the same names to different programs.
//!
//! # Tenant fairness
//!
//! A multi-tenant service shares one cache and one worker pool, so by
//! default a hot tenant can crowd everyone else out. Two opt-in knobs
//! control the interference (both default to off, preserving the exact
//! first-come-first-served bytes *and* build counts):
//!
//! * [`CacheQuotas`] ([`EvalService::cache_quotas`]) cap how many cache
//!   entries each catalog keeps resident, with eviction and admission
//!   decisions taken tenant-locally once a catalog is at its quota — a
//!   hot catalog churns within its own slots instead of flushing a cold
//!   tenant's references;
//! * [`PipelineOptions::fairness`] ([`FairnessPolicy::Weighted`])
//!   interleaves the plan/build/evaluate work of each chunk round-robin
//!   across catalogs, so a one-tenant burst cannot monopolize reference
//!   builds ahead of other tenants' requests.
//!
//! Per-tenant request/hit/error/latency breakdowns are surfaced through
//! [`ServeStats::tenants`] and [`CacheStats::tenants`]. Neither knob
//! changes response bytes — responses are emitted in stream order and
//! cache contents are pure functions of the pair.
//!
//! # Network intake
//!
//! [`net::EvalServer`] is the TCP front door: it accepts loopback (or
//! any) connections and drives each through [`EvalService::serve_pipelined`]
//! on its own worker, with a connection cap, graceful shutdown and
//! per-connection error isolation. See the [`net`] module docs.
//!
//! # Latency accounting
//!
//! [`PipelineOptions::record_latency`] (off by default) stamps every
//! pipelined response with queue/build/eval microseconds
//! ([`EvalResponse::latency`]) and feeds p50/p99 aggregates into
//! [`ServeStats`]. It is opt-in precisely because timing is not
//! deterministic: with it off — the default — the determinism contract
//! below is untouched.
//!
//! # Determinism contract
//!
//! Identical request streams yield byte-identical responses for any
//! worker-thread count, cache capacity, admission policy, queue depth and
//! chunk size: cache contents are pure functions of the pair, so
//! eviction, admission and rebuild change *when* work happens, never
//! *what* a response contains — and for a well-formed stream the
//! pipelined output is byte-identical to the batched output. Timing-
//! dependent numbers (hit rates, latency) live in [`ServeStats`],
//! [`PipelineStats`] and the cache counters, outside the response stream
//! — unless a request explicitly opts into latency stamping
//! ([`PipelineOptions::record_latency`]).
//!
//! # Examples
//!
//! A request round-trips through JSON (the service's wire format is
//! JSON lines, one request or response per line):
//!
//! ```
//! use countertrust::serve::EvalRequest;
//!
//! let request = EvalRequest {
//!     machine: "Ivy Bridge (Xeon E3-1265L)".to_string(),
//!     workload: "demo".to_string(),
//!     method: "lbr".to_string(),
//!     runs: 2,
//!     seed: 7,
//!     catalog: None,
//! };
//! let json = serde_json::to_string(&request).unwrap();
//! // No catalog: the wire shape is the pre-registry five-field object.
//! assert!(!json.contains("catalog"));
//! let back: EvalRequest = serde_json::from_str(&json).unwrap();
//! assert_eq!(request, back);
//!
//! let tenant = request.in_catalog("kernels");
//! let json = serde_json::to_string(&tenant).unwrap();
//! assert!(json.ends_with("\"catalog\":\"kernels\"}"));
//! let back: EvalRequest = serde_json::from_str(&json).unwrap();
//! assert_eq!(tenant, back);
//! ```
//!
//! End to end — identical streams are byte-identical no matter how many
//! threads serve them:
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::{EvalRequest, EvalService};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let requests = vec![
//!     EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "demo", "classic", 1, 1),
//!     EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "demo", "lbr", 1, 2),
//! ];
//!
//! let serial = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast())
//!     .threads(1);
//! let parallel = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast())
//!     .threads(8);
//! assert_eq!(
//!     serial.serve_jsonl(&requests),
//!     parallel.serve_jsonl(&requests),
//! );
//! assert_eq!(serial.stats().cache_hits, 1); // second request shared the build
//! ```
//!
//! Pipelined intake reads the same wire format straight from any
//! [`std::io::BufRead`] — malformed lines answer in place instead of
//! stopping the stream:
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::{EvalService, PipelineOptions};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let service = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//!
//! let wire = "\
//! {\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"demo\",\"method\":\"lbr\",\"runs\":1,\"seed\":7}\n\
//! this is not json\n\
//! {\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"demo\",\"method\":\"classic\",\"runs\":1,\"seed\":8}\n";
//! let mut out = Vec::new();
//! let stats = service
//!     .serve_pipelined(wire.as_bytes(), &mut out, &PipelineOptions::new().chunk(2))
//!     .unwrap();
//! assert_eq!((stats.requests, stats.parse_errors, stats.responses), (2, 1, 3));
//! let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
//! assert!(lines[1].contains("parse error on line 2"));
//! ```

pub mod net;
pub mod proto;
mod reactor;
mod ring;

use crate::cache::{AdmissionPolicy, CacheQuotas, CacheStats, PairKey, PairParts, ProfileCache};
use crate::evaluate::{evaluate_method_with_seeds, ErrorStats};
use crate::grid::{default_threads, for_each_index, mix64, WorkloadSpec};
use crate::methods::{MethodInstance, MethodKind, MethodOptions};
use ct_isa::{Cfg, Program};
use ct_sim::{MachineModel, RunConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use ring::ring_channel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One evaluation request: machine, workload and method by name, plus the
/// measurement shape (`runs` repeats from base `seed`) and an optional
/// catalog (tenant) name.
///
/// Serialization is hand-written (not derived) for one wire-format
/// reason: a request without a catalog must serialize to exactly the
/// pre-registry five-field JSON object, so every existing stream — and
/// every response echoing such a request — stays byte-identical. The
/// `catalog` key only appears on the wire when it is `Some`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRequest {
    /// Machine name, matched exactly against the catalog.
    pub machine: String,
    /// Workload name, matched exactly against the catalog.
    pub workload: String,
    /// Method label as in [`MethodKind::label`] (e.g. `"lbr"`).
    pub method: String,
    /// Number of repeated measurements (`0` is served as `1`).
    pub runs: usize,
    /// Base seed; per-run seeds derive from it via [`request_seed`].
    pub seed: u64,
    /// Catalog (tenant) name, resolved through the service's
    /// [`CatalogRegistry`]; `None` means the default catalog.
    pub catalog: Option<String>,
}

impl EvalRequest {
    /// Convenience constructor (default catalog).
    #[must_use]
    pub fn new(machine: &str, workload: &str, method: &str, runs: usize, seed: u64) -> Self {
        Self {
            machine: machine.to_string(),
            workload: workload.to_string(),
            method: method.to_string(),
            runs,
            seed,
            catalog: None,
        }
    }

    /// Targets the request at a named catalog of the registry.
    #[must_use]
    pub fn in_catalog(mut self, catalog: &str) -> Self {
        self.catalog = Some(catalog.to_string());
        self
    }

    /// The number of measurement runs actually performed (`runs`, with
    /// `0` clamped to one run).
    #[must_use]
    pub fn effective_runs(&self) -> usize {
        self.runs.max(1)
    }
}

impl Serialize for EvalRequest {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("machine".to_string(), self.machine.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("method".to_string(), self.method.to_value()),
            ("runs".to_string(), self.runs.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if let Some(catalog) = &self.catalog {
            fields.push(("catalog".to_string(), catalog.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for EvalRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            machine: serde::field(v, "machine")?,
            workload: serde::field(v, "workload")?,
            method: serde::field(v, "method")?,
            runs: serde::field(v, "runs")?,
            seed: serde::field(v, "seed")?,
            // A missing key reads as `None`: pre-registry streams parse
            // unchanged into default-catalog requests.
            catalog: serde::field(v, "catalog")?,
        })
    }
}

/// Per-request latency breakdown, in microseconds, recorded only when
/// [`PipelineOptions::record_latency`] is on.
///
/// Queue and build time are chunk-granular (every request of a pipeline
/// chunk shares them); evaluation time is the request's own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestLatency {
    /// Intake-to-build-start: time the request's chunk spent queued
    /// between pipeline stages (including planning).
    pub queue_us: u64,
    /// Build-stage wall time of the request's chunk (cache attachment /
    /// reference builds).
    pub build_us: u64,
    /// This request's own evaluation wall time (`0` for requests that
    /// never evaluated — resolution failures).
    pub eval_us: u64,
}

impl RequestLatency {
    /// Total intake-to-response latency.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.build_us + self.eval_us
    }
}

/// One evaluation response: the request echoed back plus either its error
/// statistics or a failure description.
///
/// Like [`EvalRequest`], serialization is hand-written so the optional
/// `latency` key is entirely absent — not `null` — when latency
/// recording is off, keeping the default wire format byte-identical to
/// the pre-latency one.
#[derive(Debug, Clone)]
pub struct EvalResponse {
    /// The request this response answers.
    pub request: EvalRequest,
    /// The evaluation result; `None` when the request failed.
    pub stats: Option<ErrorStats>,
    /// The failure description; `None` when the request succeeded.
    pub error: Option<String>,
    /// The latency breakdown; `None` unless the serving mode recorded it
    /// ([`PipelineOptions::record_latency`]).
    pub latency: Option<RequestLatency>,
}

impl Serialize for EvalResponse {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("request".to_string(), self.request.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("error".to_string(), self.error.to_value()),
        ];
        if let Some(latency) = &self.latency {
            fields.push(("latency".to_string(), latency.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for EvalResponse {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            request: serde::field(v, "request")?,
            stats: serde::field(v, "stats")?,
            error: serde::field(v, "error")?,
            latency: serde::field(v, "latency")?,
        })
    }
}

impl EvalResponse {
    fn err(request: EvalRequest, error: String) -> Self {
        Self {
            request,
            stats: None,
            error: Some(error),
            latency: None,
        }
    }

    /// The response to an unparseable request line: an error response
    /// echoing an empty request (there is no request to echo), emitted at
    /// the line's original stream position.
    fn parse_err(error: String) -> Self {
        Self {
            request: EvalRequest::new("", "", "", 0, 0),
            stats: None,
            error: Some(error),
            latency: None,
        }
    }

    /// Whether the request succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.stats.is_some()
    }
}

/// A response minus the request it answers: what the attach/evaluate
/// stages actually compute. Slots hold bodies so the final in-order
/// assembly can *move* each request out of the batch into its response —
/// the echoed request is never cloned on the serve hot path.
struct ResponseBody {
    stats: Option<ErrorStats>,
    error: Option<String>,
}

impl ResponseBody {
    fn ok(stats: ErrorStats) -> Self {
        Self {
            stats: Some(stats),
            error: None,
        }
    }

    fn err(error: String) -> Self {
        Self {
            stats: None,
            error: Some(error),
        }
    }

    fn into_response(self, request: EvalRequest) -> EvalResponse {
        EvalResponse {
            request,
            stats: self.stats,
            error: self.error,
            latency: None,
        }
    }
}

/// Derives the seed of one measurement run from a request's base seed.
///
/// Seeds are a pure function of `(base_seed, run)` — never of the
/// catalog, the batch composition or scheduling — so the same request
/// always produces the same response, on any service.
#[must_use]
pub fn request_seed(base_seed: u64, run: usize) -> u64 {
    let mut h = mix64(base_seed ^ 0xA24B_AED4_963E_E407);
    h ^= run as u64;
    mix64(h)
}

/// Per-catalog (tenant) slice of [`ServeStats`], one per registered
/// catalog in registry order.
///
/// A request is attributed to the catalog it named (or the default) as
/// long as that *catalog* resolved — including requests that then
/// failed machine/workload/method resolution, so a tenant generating
/// error traffic is visible as such. Only a request naming an unknown
/// catalog has no tenant to charge and is counted solely in the global
/// [`ServeStats::errors`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantServeStats {
    /// The catalog's registered name.
    pub catalog: String,
    /// Requests attributed to this catalog (explicitly or as the
    /// default), whether or not they went on to resolve and evaluate.
    pub requests: u64,
    /// This catalog's requests that reused existing pair state.
    pub cache_hits: u64,
    /// This catalog's requests whose pair state had to be built.
    pub builds: u64,
    /// This catalog's requests answered with an error response
    /// (resolution, build or evaluation failures).
    pub errors: u64,
    /// This catalog's requests that carried a latency stamp.
    pub timed_requests: u64,
    /// Median total per-request latency (µs) over this catalog's most
    /// recent [`LATENCY_WINDOW`] timed requests.
    pub latency_p50_us: u64,
    /// 99th-percentile total per-request latency (µs) over the same
    /// window.
    pub latency_p99_us: u64,
}

impl TenantServeStats {
    /// Fraction of this catalog's pair attachments served without a
    /// reference build.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let attached = self.cache_hits + self.builds;
        if attached == 0 {
            0.0
        } else {
            self.cache_hits as f64 / attached as f64
        }
    }
}

/// Cumulative per-request counters of an [`EvalService`].
///
/// Unlike [`CacheStats`] (one lookup per shard), these count *requests*:
/// a request is a cache hit when the pair state it rode on already
/// existed — resident in the cache, or built moments earlier by another
/// request of the same batch shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests received. Malformed pipeline lines never parse into a
    /// request and are **not** counted here (see
    /// [`PipelineStats::parse_errors`]).
    pub requests: u64,
    /// Requests that reused existing pair state.
    pub cache_hits: u64,
    /// Requests whose pair state had to be built (one instrumented
    /// reference execution each).
    pub builds: u64,
    /// Lines answered with an error response: request failures
    /// (resolution, build or evaluation) plus, under pipelined intake,
    /// parse errors — so this can exceed `requests` minus successes on
    /// a malformed stream.
    pub errors: u64,
    /// Requests that carried a latency stamp
    /// ([`PipelineOptions::record_latency`]).
    pub timed_requests: u64,
    /// Median total (queue+build+eval) per-request latency in
    /// microseconds, nearest-rank over the most recent
    /// [`LATENCY_WINDOW`] timed requests (`0` when nothing was timed).
    pub latency_p50_us: u64,
    /// 99th-percentile total per-request latency in microseconds over
    /// the same window (`0` when nothing was timed).
    pub latency_p99_us: u64,
    /// Per-catalog breakdown, one entry per registered catalog in
    /// registry order (a single-catalog service has exactly one).
    pub tenants: Vec<TenantServeStats>,
}

impl ServeStats {
    /// Fraction of pair attachments served without a reference build.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let attached = self.cache_hits + self.builds;
        if attached == 0 {
            0.0
        } else {
            self.cache_hits as f64 / attached as f64
        }
    }
}

/// The nearest-rank `p`-th percentile of an ascending-sorted sample.
///
/// Boundary semantics (locked by unit tests): an empty sample reports
/// `0` (there is no distribution to summarize), a single sample answers
/// every percentile, `p` is clamped into `[0, 1]`, `p = 0` reports the
/// minimum and `p = 1` the maximum, and even-length medians take the
/// *lower* of the two middle samples (nearest-rank never interpolates).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// How many timed-request samples the latency window retains: old
/// samples rotate out so a long-running server neither grows without
/// bound nor pays more than a bounded sort per [`EvalService::stats`]
/// snapshot.
pub const LATENCY_WINDOW: usize = 4096;

/// A bounded sliding window of per-request latency samples (ring buffer
/// once full) plus the all-time count.
#[derive(Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    /// Ring cursor: the slot the next sample overwrites once full.
    next: usize,
    /// All-time number of recorded samples (never truncated).
    total: u64,
}

impl LatencyWindow {
    fn record(&mut self, us: u64) {
        self.total += 1;
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Snapshot: the window's samples sorted ascending, plus the
    /// all-time count.
    fn sorted_samples(&self) -> (Vec<u64>, u64) {
        let mut samples = self.samples.clone();
        samples.sort_unstable();
        (samples, self.total)
    }
}

/// One catalog's cumulative per-request counters inside an
/// [`EvalService`] (aggregated into [`TenantServeStats`] snapshots).
#[derive(Default)]
struct TenantCounters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    builds: AtomicU64,
    errors: AtomicU64,
    latencies: Mutex<LatencyWindow>,
}

/// The name a single-catalog service registers its catalog under, and
/// the catalog requests without a `catalog` field resolve to.
pub const DEFAULT_CATALOG: &str = "default";

/// One workload of an owned [`Catalog`]: the resolved name, program and
/// run configuration a request's `workload` field binds to.
///
/// The program rides in an `Arc` so registering the same workload into
/// several catalogs shares one copy.
#[derive(Debug, Clone)]
pub struct CatalogWorkload {
    pub name: String,
    pub program: Arc<Program>,
    pub run_config: RunConfig,
}

impl From<ct_workloads::Workload> for CatalogWorkload {
    fn from(w: ct_workloads::Workload) -> Self {
        Self {
            name: w.name,
            program: Arc::new(w.program),
            run_config: w.run_config,
        }
    }
}

/// A named, registrable evaluation catalog: the machines and workloads
/// requests resolve their names against, plus the default
/// [`MethodOptions`] those requests are instantiated with.
///
/// Catalogs **own** their data (machines by value, programs behind
/// `Arc`s), so a catalog can outlive whatever produced it — the
/// property that lets [`Catalog::from_dir`] turn a directory of
/// `.ctasm`/manifest files into a served tenant catalog. They are
/// registered into a [`CatalogRegistry`]; the registry index becomes
/// the cache namespace ([`PairKey::catalog`]).
pub struct Catalog {
    machines: Vec<MachineModel>,
    workloads: Vec<CatalogWorkload>,
    opts: MethodOptions,
    /// Per-workload CFGs, built lazily (a CFG depends only on the
    /// program) and shared with every cached pair of that workload.
    cfgs: Vec<OnceLock<Arc<Cfg>>>,
}

impl Catalog {
    /// A catalog over the given machines and workloads, with default
    /// method options. The borrowed specs are cloned into owned
    /// storage.
    #[must_use]
    pub fn new(machines: &[MachineModel], workloads: &[WorkloadSpec<'_>]) -> Self {
        Self::from_parts(
            machines.to_vec(),
            workloads
                .iter()
                .map(|w| CatalogWorkload {
                    name: w.name.to_string(),
                    program: Arc::new(w.program.clone()),
                    run_config: w.run_config.clone(),
                })
                .collect(),
        )
    }

    /// A catalog from already-owned parts (no cloning).
    #[must_use]
    pub fn from_parts(machines: Vec<MachineModel>, workloads: Vec<CatalogWorkload>) -> Self {
        let cfgs = (0..workloads.len()).map(|_| OnceLock::new()).collect();
        Self {
            machines,
            workloads,
            opts: MethodOptions::default(),
            cfgs,
        }
    }

    /// A catalog compiled from a directory of `.ctasm` + JSON manifest
    /// pairs through [`ct_workloads::loader`]: every program is
    /// assembler-validated and size/step-limited
    /// ([`ct_workloads::LoaderLimits`]), so a malformed or oversized
    /// tenant file is a typed error here — nothing invalid ever reaches
    /// the evaluation cache. `scale` applies the manifests' `scaled`
    /// sizing rule (1.0 = the checked-in base sizes).
    pub fn from_dir(
        machines: &[MachineModel],
        dir: impl AsRef<Path>,
        scale: f64,
    ) -> Result<Self, ct_workloads::LoaderError> {
        let limits = ct_workloads::LoaderLimits::default();
        let loaded = ct_workloads::loader::load_dir(dir, scale, &limits)?;
        Ok(Self::from_parts(
            machines.to_vec(),
            loaded.into_iter().map(CatalogWorkload::from).collect(),
        ))
    }

    /// Sets the method options requests against this catalog are
    /// instantiated with.
    #[must_use]
    pub fn method_options(mut self, opts: MethodOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The catalog's machines.
    #[must_use]
    pub fn machines(&self) -> &[MachineModel] {
        &self.machines
    }

    /// The catalog's workloads.
    #[must_use]
    pub fn workloads(&self) -> &[CatalogWorkload] {
        &self.workloads
    }

    /// The workload's CFG, built on first use and shared thereafter.
    fn workload_cfg(&self, w: usize) -> Arc<Cfg> {
        self.cfgs[w]
            .get_or_init(|| Arc::new(Cfg::build(&self.workloads[w].program)))
            .clone()
    }
}

/// An ordered collection of named [`Catalog`]s — the resolution root of
/// a multi-tenant [`EvalService`].
///
/// The first registered catalog is the **default**: requests without a
/// `catalog` field resolve to it, whatever it is named. Registration
/// order is the cache namespace order, so keep it stable across runs
/// that share persisted expectations.
pub struct CatalogRegistry {
    catalogs: Vec<(String, Catalog)>,
}

impl CatalogRegistry {
    /// A registry holding one default catalog under
    /// [`DEFAULT_CATALOG`].
    #[must_use]
    pub fn new(default: Catalog) -> Self {
        Self {
            catalogs: vec![(DEFAULT_CATALOG.to_string(), default)],
        }
    }

    /// Registers `catalog` under `name`, replacing any catalog already
    /// registered under that name (re-registering the default's name
    /// swaps the default in place).
    #[must_use]
    pub fn register(mut self, name: &str, catalog: Catalog) -> Self {
        match self.catalogs.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = catalog,
            None => self.catalogs.push((name.to_string(), catalog)),
        }
        self
    }

    /// The registered catalog names, default first.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.catalogs.iter().map(|(n, _)| n.as_str())
    }

    /// The catalog registered under `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Catalog> {
        self.catalogs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
    }

    /// Number of registered catalogs (always ≥ 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.catalogs.len()
    }

    /// Whether the registry is empty (it never is — construction
    /// requires a default catalog).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.catalogs.is_empty()
    }

    /// Resolves a request's catalog name to its index: `None` is the
    /// default catalog (index 0), a name must be registered.
    fn index_of(&self, name: Option<&str>) -> Result<usize, String> {
        match name {
            None => Ok(0),
            Some(name) => self
                .catalogs
                .iter()
                .position(|(n, _)| n == name)
                .ok_or_else(|| format!("unknown catalog `{name}`")),
        }
    }

    fn catalog(&self, index: usize) -> &Catalog {
        &self.catalogs[index].1
    }
}

/// A resolved request: registry + catalog indices plus the instantiated
/// method.
struct Resolved {
    catalog: usize,
    machine: usize,
    workload: usize,
    label: String,
    instance: MethodInstance,
}

/// One batch moving through the serve stages: planned requests, their
/// pair shards, per-request response slots, and (after the build stage)
/// the attached pair state each shard rides on.
///
/// Both [`EvalService::serve`] and the staged pipeline
/// ([`EvalService::serve_pipelined`]) push batches through the same
/// three steps — plan, attach, evaluate — so batched and pipelined
/// responses are computed by identical code and stay byte-identical.
struct Batch {
    requests: Vec<EvalRequest>,
    resolved: Vec<Result<Resolved, String>>,
    /// Shards by catalog-namespaced `(machine, workload)` pair, in
    /// first-appearance order; each holds the indices of its member
    /// requests.
    shards: Vec<(PairKey, Vec<usize>)>,
    /// One response-body slot per request, filled by the attach stage
    /// (build failures) or the evaluate stage; the request itself is
    /// moved in during the final in-order assembly.
    slots: Vec<Mutex<Option<ResponseBody>>>,
    /// One attachment per shard (`None` until attached, or on build
    /// failure — those members' slots already hold error responses).
    attachments: Vec<Option<Arc<PairParts>>>,
    /// Latency bookkeeping; `Some` only when the serving mode records
    /// latency ([`PipelineOptions::record_latency`]).
    timing: Option<BatchTiming>,
    /// Cross-catalog scheduling policy for this batch's build and
    /// evaluate stages.
    fairness: FairnessPolicy,
}

/// Wall-clock bookkeeping of one timed batch moving through the
/// pipeline. Queue and build times are batch-granular (stages handle a
/// chunk at a time); evaluation times are per-request.
struct BatchTiming {
    /// When intake finished parsing the chunk.
    parsed_at: Instant,
    /// Micros between `parsed_at` and the start of the build stage
    /// (inter-stage queueing + planning), filled by the build stage.
    queue_us: u64,
    /// Micros the build stage spent attaching the chunk's shards.
    build_us: u64,
    /// Per-request evaluation micros, filled by the evaluate stage
    /// (`0` for requests that never evaluated).
    eval_us: Vec<AtomicU64>,
}

impl BatchTiming {
    fn new(parsed_at: Instant, requests: usize) -> Self {
        Self {
            parsed_at,
            queue_us: 0,
            build_us: 0,
            eval_us: (0..requests).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn latency_of(&self, request: usize) -> RequestLatency {
        RequestLatency {
            queue_us: self.queue_us,
            build_us: self.build_us,
            eval_us: self.eval_us[request].load(Ordering::Relaxed),
        }
    }
}

/// Saturating microseconds since `from` (latency accounting only — never
/// part of a response's deterministic payload).
fn micros_since(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// How the plan/build/evaluate stages order work across catalogs within
/// one chunk.
///
/// Fairness is a pure *scheduling* knob: responses are always emitted in
/// stream order, so output bytes are identical under every policy — what
/// changes is which tenant's reference builds and evaluations get worker
/// time first, and therefore per-tenant latency under mixed traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessPolicy {
    /// First-come-first-served: shards and evaluation tasks run in
    /// stream order (the default — a burst from one tenant occupies the
    /// workers until its chunk share is done).
    #[default]
    Fcfs,
    /// Weighted round-robin over catalogs: within each chunk, shards and
    /// evaluation tasks are interleaved one-per-catalog in rotation
    /// (equal weights), so a hot tenant's burst cannot monopolize
    /// reference builds ahead of a cold tenant's single request.
    Weighted,
}

impl FairnessPolicy {
    /// Parses a CLI flag value (`fcfs` / `weighted`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fcfs" => Some(Self::Fcfs),
            "weighted" | "wrr" => Some(Self::Weighted),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fcfs => "fcfs",
            Self::Weighted => "weighted",
        }
    }
}

/// Round-robin interleave over catalogs: items tagged with their catalog
/// index come back one-per-catalog in rotation (catalogs ordered by
/// first appearance, per-catalog order preserved) — the
/// [`FairnessPolicy::Weighted`] schedule. A pure function of its input,
/// so scheduling stays deterministic.
fn interleave_by_catalog<T>(tagged: Vec<(usize, T)>) -> Vec<T> {
    let total = tagged.len();
    let mut groups: Vec<(usize, std::collections::VecDeque<T>)> = Vec::new();
    for (catalog, item) in tagged {
        match groups.iter_mut().find(|(c, _)| *c == catalog) {
            Some((_, group)) => group.push_back(item),
            None => groups.push((catalog, std::collections::VecDeque::from([item]))),
        }
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        for (_, group) in &mut groups {
            if let Some(item) = group.pop_front() {
                out.push(item);
            }
        }
    }
    out
}

/// Shape of the staged request pipeline behind
/// [`EvalService::serve_pipelined`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Chunks each inter-stage queue may buffer before the upstream
    /// stage blocks (values below 1 are served as 1). Depth 1 still
    /// overlaps the stages — it only tightens how far intake may run
    /// ahead of evaluation.
    pub depth: usize,
    /// Requests per pipeline chunk (values below 1 are served as 1): the
    /// granularity at which reference builds for later requests overlap
    /// the evaluation of earlier ones.
    pub chunk: usize,
    /// Stamps every response with its queue/build/eval micros
    /// ([`EvalResponse::latency`]) and feeds the [`ServeStats`] latency
    /// percentiles. **Off by default**: latency values are wall-clock
    /// measurements, so turning this on intentionally steps outside the
    /// byte-identical determinism contract.
    pub record_latency: bool,
    /// How plan/build/evaluate order work across catalogs inside each
    /// chunk (see [`FairnessPolicy`]; default FCFS). Never changes
    /// output bytes — only which tenant's work runs first.
    pub fairness: FairnessPolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            depth: 2,
            chunk: 64,
            record_latency: false,
            fairness: FairnessPolicy::Fcfs,
        }
    }
}

impl PipelineOptions {
    /// Default shape: depth 2, 64-request chunks, no latency recording.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the queue depth (clamped to at least 1 at use).
    #[must_use]
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Sets the chunk size (clamped to at least 1 at use).
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Enables or disables per-request latency stamping.
    #[must_use]
    pub fn record_latency(mut self, on: bool) -> Self {
        self.record_latency = on;
        self
    }

    /// Sets the cross-catalog scheduling policy (see [`FairnessPolicy`]).
    #[must_use]
    pub fn fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }
}

/// Counters of one [`EvalService::serve_pipelined`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Non-empty input lines consumed.
    pub lines: u64,
    /// Lines that parsed into an [`EvalRequest`].
    pub requests: u64,
    /// Lines answered with a parse-error response.
    pub parse_errors: u64,
    /// Chunks pushed through the pipeline.
    pub chunks: u64,
    /// Responses written (one per non-empty line).
    pub responses: u64,
}

/// One non-empty intake line: a parsed request, or the parse failure
/// that will be answered in place.
enum LineItem {
    /// The next entry of the chunk's `requests` vector.
    Request,
    /// A malformed line, answered by a parse-error response (naming the
    /// line number) at its original stream position.
    Bad { error: String },
}

/// A chunk mid-pipeline: the per-line layout (so responses interleave
/// parse errors back in stream order) plus the batch being staged.
struct Chunk {
    layout: Vec<LineItem>,
    batch: Batch,
}

/// Intake output: the parsed requests of one chunk plus its line layout
/// and (when latency is recorded) the parse-completion timestamp.
struct ParsedChunk {
    layout: Vec<LineItem>,
    requests: Vec<EvalRequest>,
    parsed_at: Option<Instant>,
}

/// The batched evaluation service. Construct with [`EvalService::new`]
/// (single catalog) or [`EvalService::with_registry`] (multi-tenant),
/// configure with the builder methods, then feed request batches to
/// [`EvalService::serve`] (the cache persists across batches and is
/// shared by every catalog).
pub struct EvalService {
    registry: CatalogRegistry,
    threads: usize,
    cache: ProfileCache,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    builds: AtomicU64,
    errors: AtomicU64,
    /// Sliding window of total (queue+build+eval) micros of
    /// latency-stamped requests, aggregated into the [`ServeStats`]
    /// percentiles.
    latencies_us: Mutex<LatencyWindow>,
    /// Per-catalog counters, one per registered catalog in registry
    /// order (aggregated into [`ServeStats::tenants`]).
    tenants: Vec<TenantCounters>,
    /// Memoized [`crate::store::pair_fingerprint`]s, keyed by pair.
    /// Fingerprints hash the machine model and whole program, so they
    /// are computed once per pair (and only when a snapshot store is
    /// attached), not once per miss.
    snapshot_fingerprints: Mutex<HashMap<PairKey, u64>>,
}

impl EvalService {
    /// A service over a single default catalog: default method options,
    /// all available hardware parallelism, unbounded cache.
    #[must_use]
    pub fn new(machines: &[MachineModel], workloads: &[WorkloadSpec<'_>]) -> Self {
        Self::with_registry(CatalogRegistry::new(Catalog::new(machines, workloads)))
    }

    /// A service over a whole registry of named catalogs sharing one
    /// cache and one admission policy. Requests pick their catalog with
    /// the `catalog` field; absent means the registry's default.
    #[must_use]
    pub fn with_registry(registry: CatalogRegistry) -> Self {
        let tenants = (0..registry.len()).map(|_| TenantCounters::default()).collect();
        Self {
            registry,
            threads: default_threads(),
            cache: ProfileCache::unbounded(),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies_us: Mutex::new(LatencyWindow::default()),
            tenants,
            snapshot_fingerprints: Mutex::new(HashMap::new()),
        }
    }

    /// The service's catalog registry.
    #[must_use]
    pub fn registry(&self) -> &CatalogRegistry {
        &self.registry
    }

    /// Appends a tenant catalog compiled from a directory of
    /// `.ctasm` + manifest files (see [`Catalog::from_dir`]),
    /// registered under the directory's file name and resolving against
    /// the paper's three machine models. Loading failures are typed
    /// [`ct_workloads::LoaderError`]s — a malformed or over-limit file
    /// rejects the whole directory before anything reaches the cache.
    pub fn workload_dir(
        mut self,
        dir: impl AsRef<Path>,
        scale: f64,
    ) -> Result<Self, ct_workloads::LoaderError> {
        let dir = dir.as_ref();
        let name = dir
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("dir")
            .to_string();
        let machines = MachineModel::paper_machines();
        let catalog = Catalog::from_dir(&machines, dir, scale)?;
        match self.registry.catalogs.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = catalog,
            None => {
                self.registry.catalogs.push((name, catalog));
                self.tenants.push(TenantCounters::default());
            }
        }
        Ok(self)
    }

    /// Sets the worker-thread count; `0` restores the default (available
    /// hardware parallelism). Responses do not depend on this.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { default_threads() } else { n };
        self
    }

    /// Bounds the profile cache to `capacity` pairs (`0` means
    /// unbounded), keeping the configured admission policy and quotas.
    /// Responses do not depend on this — only build counts do.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        let backing = self.cache.snapshot_backing();
        self.cache =
            ProfileCache::with_config(capacity, self.cache.policy(), self.cache.quotas());
        self.cache.set_snapshot_backing(backing);
        self
    }

    /// Sets the cache admission policy (see [`AdmissionPolicy`]), keeping
    /// the configured capacity and quotas. Responses do not depend on
    /// this — only build counts do.
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        let backing = self.cache.snapshot_backing();
        self.cache =
            ProfileCache::with_config(self.cache.capacity(), policy, self.cache.quotas());
        self.cache.set_snapshot_backing(backing);
        self
    }

    /// Sets per-catalog residency quotas on the shared cache (see
    /// [`CacheQuotas`]; default unlimited), keeping the configured
    /// capacity and admission policy. Responses do not depend on this —
    /// only build counts and per-tenant hit rates do.
    #[must_use]
    pub fn cache_quotas(mut self, quotas: CacheQuotas) -> Self {
        let backing = self.cache.snapshot_backing();
        self.cache =
            ProfileCache::with_config(self.cache.capacity(), self.cache.policy(), quotas);
        self.cache.set_snapshot_backing(backing);
        self
    }

    /// Backs the profile cache with an on-disk snapshot store over `dir`
    /// (see [`crate::store`]): cache misses read through validated
    /// snapshots instead of re-running references, and cold builds write
    /// behind into the directory — so a service restarted on the same
    /// directory warm-starts at full hit rate with **zero** instrumented
    /// executions, byte-identical to the cold run. Survives the
    /// cache-rebuilding builders above in either order.
    #[must_use]
    pub fn snapshot_dir(self, dir: impl Into<PathBuf>) -> Self {
        self.attach_snapshot_dir(dir);
        self
    }

    /// [`Self::snapshot_dir`] through a shared reference — how
    /// [`net::NetOptions::snapshot_dir`] attaches the store to a service
    /// already behind the server's `&self`.
    pub fn attach_snapshot_dir(&self, dir: impl Into<PathBuf>) {
        self.cache.attach_snapshot_store(dir);
    }

    /// Sets the method options requests against the **default** catalog
    /// are instantiated with. Other catalogs of a registry keep the
    /// options they were registered with
    /// ([`Catalog::method_options`]).
    #[must_use]
    pub fn method_options(mut self, opts: MethodOptions) -> Self {
        self.registry.catalogs[0].1.opts = opts;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Serves one batch of requests, returning one response per request
    /// **in request order**.
    ///
    /// Requests are sharded by `(machine, workload)` pair and shards run
    /// in parallel; each shard attaches to its pair state through the
    /// cache once and holds it for every member request, so a batch
    /// performs at most one reference build per distinct pair no matter
    /// how small the cache is.
    pub fn serve(&self, requests: &[EvalRequest]) -> Vec<EvalResponse> {
        let mut batch = self.plan_batch(requests.to_vec(), None, FairnessPolicy::Fcfs);
        self.attach_batch(&mut batch);
        self.evaluate_batch(batch)
    }

    /// Plan stage: resolves every request through the catalog registry
    /// and shards the resolvable ones by catalog-namespaced
    /// `(machine, workload)` pair — in first-appearance order under
    /// FCFS, or interleaved round-robin across catalogs under
    /// [`FairnessPolicy::Weighted`] so the build stage starts every
    /// tenant's references fairly. `parsed_at` carries the intake
    /// timestamp of a latency-recording pipeline (`None` everywhere
    /// else).
    fn plan_batch(
        &self,
        requests: Vec<EvalRequest>,
        parsed_at: Option<Instant>,
        fairness: FairnessPolicy,
    ) -> Batch {
        let resolved: Vec<Result<Resolved, String>> =
            requests.iter().map(|r| self.resolve(r)).collect();
        let mut shard_of: HashMap<PairKey, usize> = HashMap::new();
        let mut shards: Vec<(PairKey, Vec<usize>)> = Vec::new();
        for (i, r) in resolved.iter().enumerate() {
            if let Ok(res) = r {
                let key = PairKey::new(res.catalog, res.machine, res.workload);
                let s = *shard_of.entry(key).or_insert_with(|| {
                    shards.push((key, Vec::new()));
                    shards.len() - 1
                });
                shards[s].1.push(i);
            }
        }
        if fairness == FairnessPolicy::Weighted {
            shards = interleave_by_catalog(
                shards.into_iter().map(|s| (s.0.catalog, s)).collect(),
            );
        }
        let slots = requests.iter().map(|_| Mutex::new(None)).collect();
        let attachments = shards.iter().map(|_| None).collect();
        let timing = parsed_at.map(|at| BatchTiming::new(at, requests.len()));
        Batch {
            requests,
            resolved,
            shards,
            slots,
            attachments,
            timing,
            fairness,
        }
    }

    /// Build stage: one task per shard acquires (or builds) the pair
    /// state through the cache, so a batch performs at most one
    /// reference build per distinct pair whatever the capacity. In the
    /// pipeline this stage runs for chunk N+1 while chunk N evaluates.
    fn attach_batch(&self, batch: &mut Batch) {
        let attachments: Vec<Mutex<Option<Arc<PairParts>>>> =
            batch.shards.iter().map(|_| Mutex::new(None)).collect();
        for_each_index(self.threads, batch.shards.len(), |s| {
            let (key, members) = &batch.shards[s];
            if let Some(parts) = self.attach_shard(*key, members, &batch.slots) {
                *attachments[s].lock().expect("no poisoned slots") = Some(parts);
            }
        });
        batch.attachments = attachments
            .into_iter()
            .map(|a| a.into_inner().expect("no poisoned slots"))
            .collect();
    }

    /// Evaluate stage: one task per *request*, so skewed traffic (many
    /// requests on one hot pair) still spreads across every worker
    /// instead of serializing inside its shard. Under
    /// [`FairnessPolicy::Weighted`] the task list is interleaved
    /// round-robin across catalogs, so a hot tenant's burst cannot queue
    /// ahead of every other tenant's requests. Responses come back in
    /// request order; requests that never reached a shard failed
    /// resolution and are answered here.
    fn evaluate_batch(&self, batch: Batch) -> Vec<EvalResponse> {
        let Batch {
            requests,
            resolved,
            shards,
            slots,
            attachments,
            timing,
            fairness,
        } = batch;
        let mut tasks: Vec<(usize, usize)> = shards
            .iter()
            .enumerate()
            .filter(|(s, _)| attachments[*s].is_some())
            .flat_map(|(s, (_, members))| members.iter().map(move |&i| (s, i)))
            .collect();
        if fairness == FairnessPolicy::Weighted {
            tasks = interleave_by_catalog(
                tasks.into_iter().map(|t| (shards[t.0].0.catalog, t)).collect(),
            );
        }
        let timing_ref = timing.as_ref();
        for_each_index(self.threads, tasks.len(), |t| {
            let (s, i) = tasks[t];
            let parts = attachments[s].as_ref().expect("attached shards only");
            let key = shards[s].0;
            let res = resolved[i].as_ref().expect("sharded requests resolved");
            let started = timing_ref.map(|_| Instant::now());
            let response = self.evaluate_request(&requests[i], res, key, parts);
            if let (Some(tm), Some(at)) = (timing_ref, started) {
                tm.eval_us[i].store(micros_since(at), Ordering::Relaxed);
            }
            *slots[i].lock().expect("no poisoned slots") = Some(response);
        });

        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        let responses: Vec<EvalResponse> = requests
            .into_iter()
            .zip(resolved)
            .zip(slots)
            .enumerate()
            .map(|(i, ((request, resolution), slot))| {
                // The tenant to charge. A request whose names failed to
                // resolve still belongs to its catalog as long as the
                // catalog itself resolved — only an unknown catalog
                // leaves no tenant to attribute to.
                let catalog = match &resolution {
                    Ok(res) => Some(res.catalog),
                    Err(_) => self.registry.index_of(request.catalog.as_deref()).ok(),
                };
                let unresolved = resolution.is_err();
                let mut response = match slot.into_inner().expect("no poisoned slots") {
                    Some(body) => body.into_response(request),
                    None => {
                        let error =
                            resolution.err().expect("unfilled slots are unresolved");
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        EvalResponse::err(request, error)
                    }
                };
                if let Some(c) = catalog {
                    self.tenants[c].requests.fetch_add(1, Ordering::Relaxed);
                    if unresolved {
                        self.tenants[c].errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if let Some(tm) = &timing {
                    response.latency = Some(tm.latency_of(i));
                    if let (Some(c), Some(latency)) = (catalog, response.latency) {
                        self.tenants[c]
                            .latencies
                            .lock()
                            .expect("no poisoned stats")
                            .record(latency.total_us());
                    }
                }
                response
            })
            .collect();

        if timing.is_some() {
            let mut window = self.latencies_us.lock().expect("no poisoned stats");
            for us in responses.iter().filter_map(|r| r.latency.map(|l| l.total_us())) {
                window.record(us);
            }
        }
        responses
    }

    /// Serves a single request — batching degenerates gracefully, and the
    /// cache still amortizes builds across calls.
    pub fn serve_one(&self, request: &EvalRequest) -> EvalResponse {
        self.serve(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Serves a batch and serializes each response as one JSON line —
    /// the byte-identity unit of the determinism contract.
    pub fn serve_jsonl(&self, requests: &[EvalRequest]) -> String {
        let mut out = String::new();
        for response in self.serve(requests) {
            serde_json::to_string_into(&response, &mut out)
                .expect("responses always serialize");
            out.push('\n');
        }
        out
    }

    /// Serves a JSON-lines request stream through the staged pipeline:
    ///
    /// ```text
    /// reader ──intake──▶ plan ──▶ build ──▶ evaluate+emit ──▶ writer
    ///          (parse)  (shard)  (warm cache)  (in order)
    /// ```
    ///
    /// Each stage runs on its own scoped thread (evaluation on the
    /// calling thread), connected by bounded lock-free SPSC ring
    /// buffers holding at most
    /// [`PipelineOptions::depth`] chunks of [`PipelineOptions::chunk`]
    /// requests — so while chunk N evaluates, chunk N+1's reference
    /// profiles are already building through the cache and chunk N+2 is
    /// being parsed, instead of idling behind a batch barrier.
    ///
    /// Responses are written **in stream order**, one JSON line per
    /// non-empty input line (blank lines are skipped). A malformed line
    /// becomes an in-order error response naming its line number — the
    /// pipeline keeps draining. For a well-formed stream the output is
    /// byte-identical to [`EvalService::serve_jsonl`] over the same
    /// requests, for any thread count, queue depth or chunk size.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error raised by `reader` or `writer`;
    /// evaluation failures are never I/O errors (they are responses).
    pub fn serve_pipelined<R, W>(
        &self,
        reader: R,
        writer: &mut W,
        options: &PipelineOptions,
    ) -> std::io::Result<PipelineStats>
    where
        R: BufRead + Send,
        W: Write,
    {
        let depth = options.depth.max(1);
        let chunk_size = options.chunk.max(1);
        let record_latency = options.record_latency;
        let fairness = options.fairness;
        let mut stats = PipelineStats::default();
        let mut io_result: std::io::Result<()> = Ok(());
        // A reader error surfaces here: the plan stage parks it and
        // closes its pipe, draining the pipeline behind it.
        let read_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let read_error_slot = &read_error;

        std::thread::scope(|scope| {
            let (parsed_tx, parsed_rx) =
                ring_channel::<std::io::Result<ParsedChunk>>(depth);
            let (planned_tx, planned_rx) = ring_channel::<Chunk>(depth);
            let (built_tx, built_rx) = ring_channel::<Chunk>(depth);

            // Stage 1 — intake: read and parse lines incrementally,
            // cutting a chunk every `chunk_size` non-empty lines. An
            // abandoned send means a downstream stage (or the caller)
            // aborted; the stage just stops reading.
            scope.spawn(move || {
                let mut reader = reader;
                let mut line = String::new();
                let mut line_no: u64 = 0;
                let mut layout = Vec::new();
                let mut requests = Vec::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) => {
                            let _ = parsed_tx.send(Err(e));
                            return;
                        }
                    }
                    line_no += 1;
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<EvalRequest>(trimmed) {
                        Ok(request) => {
                            layout.push(LineItem::Request);
                            requests.push(request);
                        }
                        Err(e) => layout.push(LineItem::Bad {
                            error: format!("parse error on line {line_no}: {e}"),
                        }),
                    }
                    if layout.len() == chunk_size {
                        let parsed = ParsedChunk {
                            layout: std::mem::take(&mut layout),
                            requests: std::mem::take(&mut requests),
                            parsed_at: record_latency.then(Instant::now),
                        };
                        if parsed_tx.send(Ok(parsed)).is_err() {
                            return;
                        }
                    }
                }
                if !layout.is_empty() {
                    let _ = parsed_tx.send(Ok(ParsedChunk {
                        layout,
                        requests,
                        parsed_at: record_latency.then(Instant::now),
                    }));
                }
            });

            // Stage 2 — plan: resolve names and shard by pair. An intake
            // I/O error is forwarded by closing the pipe behind it.
            scope.spawn(move || {
                for parsed in parsed_rx {
                    match parsed {
                        Ok(p) => {
                            let chunk = Chunk {
                                layout: p.layout,
                                batch: self.plan_batch(p.requests, p.parsed_at, fairness),
                            };
                            if planned_tx.send(chunk).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            *read_error_slot.lock().expect("no poisoned slots") =
                                Some(e);
                            return;
                        }
                    }
                }
            });

            // Stage 3 — build: warm the profile cache for every distinct
            // pair of the chunk. This is the stage that overlaps chunk
            // N+1's reference builds with chunk N's evaluation.
            scope.spawn(move || {
                for mut chunk in planned_rx {
                    if let Some(timing) = &mut chunk.batch.timing {
                        timing.queue_us = micros_since(timing.parsed_at);
                    }
                    let build_started = chunk.batch.timing.as_ref().map(|_| Instant::now());
                    self.attach_batch(&mut chunk.batch);
                    if let (Some(timing), Some(at)) =
                        (&mut chunk.batch.timing, build_started)
                    {
                        timing.build_us = micros_since(at);
                    }
                    if built_tx.send(chunk).is_err() {
                        return;
                    }
                }
            });

            // Stage 4 — evaluate and emit, on the calling thread, in
            // stream order. One serialization buffer serves the whole
            // stream: each response appends into it and it is flushed to
            // the writer per line, so steady state allocates nothing.
            let mut json = String::new();
            'emit: for chunk in built_rx {
                stats.chunks += 1;
                let mut responses = self.evaluate_batch(chunk.batch).into_iter();
                for item in chunk.layout {
                    stats.lines += 1;
                    let response = match item {
                        LineItem::Request => {
                            stats.requests += 1;
                            responses.next().expect("one response per request")
                        }
                        LineItem::Bad { error } => {
                            stats.parse_errors += 1;
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            EvalResponse::parse_err(error)
                        }
                    };
                    json.clear();
                    serde_json::to_string_into(&response, &mut json)
                        .expect("responses always serialize");
                    json.push('\n');
                    if let Err(e) = writer.write_all(json.as_bytes()) {
                        io_result = Err(e);
                        break 'emit;
                    }
                    stats.responses += 1;
                }
            }
        });

        if let Some(e) = read_error.into_inner().expect("no poisoned slots") {
            return Err(e);
        }
        io_result.map(|()| stats)
    }

    /// A snapshot of the cumulative per-request counters. The latency
    /// percentiles cover the most recent [`LATENCY_WINDOW`]
    /// latency-stamped requests (zero when nothing opted into
    /// [`PipelineOptions::record_latency`]), so snapshot cost stays
    /// bounded on a long-running server.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let (timed, total) = self
            .latencies_us
            .lock()
            .expect("no poisoned stats")
            .sorted_samples();
        let tenants = self
            .registry
            .catalogs
            .iter()
            .zip(&self.tenants)
            .map(|((name, _), counters)| {
                let (samples, timed_requests) = counters
                    .latencies
                    .lock()
                    .expect("no poisoned stats")
                    .sorted_samples();
                TenantServeStats {
                    catalog: name.clone(),
                    requests: counters.requests.load(Ordering::Relaxed),
                    cache_hits: counters.cache_hits.load(Ordering::Relaxed),
                    builds: counters.builds.load(Ordering::Relaxed),
                    errors: counters.errors.load(Ordering::Relaxed),
                    timed_requests,
                    latency_p50_us: percentile_us(&samples, 0.50),
                    latency_p99_us: percentile_us(&samples, 0.99),
                }
            })
            .collect();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timed_requests: total,
            latency_p50_us: percentile_us(&timed, 0.50),
            latency_p99_us: percentile_us(&timed, 0.99),
            tenants,
        }
    }

    /// A snapshot of the underlying cache counters (per-shard lookups,
    /// evictions, residency).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Attaches one pair shard to its (cached or freshly built) pair
    /// state, recording per-request hit/build accounting. On build
    /// failure, fills every member's slot with an error body and
    /// returns `None`.
    fn attach_shard(
        &self,
        key: PairKey,
        members: &[usize],
        slots: &[Mutex<Option<ResponseBody>>],
    ) -> Option<Arc<PairParts>> {
        let catalog = self.registry.catalog(key.catalog);
        let machine = &catalog.machines[key.machine];
        let workload = &catalog.workloads[key.workload];
        // Fingerprints only matter (and only cost anything) when a
        // snapshot store is attached; without one the call is exactly
        // the plain get_or_build.
        let fingerprint = self
            .cache
            .has_snapshot_store()
            .then(|| self.pair_fingerprint(key));
        let built = self.cache.get_or_build_with_fingerprint(key, fingerprint, || {
            PairParts::collect(
                machine,
                &workload.program,
                &workload.run_config,
                catalog.workload_cfg(key.workload),
            )
        });
        let tenant = &self.tenants[key.catalog];
        let (parts, hit) = match built {
            Ok(ok) => ok,
            Err(e) => {
                self.errors.fetch_add(members.len() as u64, Ordering::Relaxed);
                tenant.errors.fetch_add(members.len() as u64, Ordering::Relaxed);
                for &i in members {
                    *slots[i].lock().expect("no poisoned slots") =
                        Some(ResponseBody::err(format!("reference collection failed: {e}")));
                }
                return None;
            }
        };
        // Per-request accounting: the build (if any) is charged to one
        // member; every other member shared existing state.
        let hits = if hit {
            members.len() as u64
        } else {
            self.builds.fetch_add(1, Ordering::Relaxed);
            tenant.builds.fetch_add(1, Ordering::Relaxed);
            members.len() as u64 - 1
        };
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        tenant.cache_hits.fetch_add(hits, Ordering::Relaxed);
        Some(parts)
    }

    /// The pair generation fingerprint for `key`
    /// ([`crate::store::pair_fingerprint`] over the catalog name and the
    /// resolved machine/program/run-config/options), memoized per
    /// service.
    fn pair_fingerprint(&self, key: PairKey) -> u64 {
        let mut memo = self
            .snapshot_fingerprints
            .lock()
            .expect("fingerprint memo lock never poisoned");
        if let Some(&fp) = memo.get(&key) {
            return fp;
        }
        let (name, catalog) = &self.registry.catalogs[key.catalog];
        let workload = &catalog.workloads[key.workload];
        let fp = crate::store::pair_fingerprint(
            name,
            &catalog.machines[key.machine],
            &workload.program,
            &workload.run_config,
            &catalog.opts,
        );
        memo.insert(key, fp);
        fp
    }

    /// Evaluates one request against its shard's shared pair state,
    /// returning the response body (the request is moved in later, by
    /// the in-order assembly — never cloned here).
    fn evaluate_request(
        &self,
        request: &EvalRequest,
        res: &Resolved,
        key: PairKey,
        parts: &PairParts,
    ) -> ResponseBody {
        let catalog = self.registry.catalog(key.catalog);
        let machine = &catalog.machines[key.machine];
        let workload = &catalog.workloads[key.workload];
        let mut session =
            parts.session(machine, &workload.program, workload.run_config.clone());
        let seeds: Vec<u64> = (0..request.effective_runs())
            .map(|r| request_seed(request.seed, r))
            .collect();
        match evaluate_method_with_seeds(&mut session, &res.instance, &res.label, &seeds) {
            Ok(stats) => ResponseBody::ok(stats),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.tenants[key.catalog].errors.fetch_add(1, Ordering::Relaxed);
                ResponseBody::err(format!("evaluation failed: {e}"))
            }
        }
    }

    /// Resolves a request's names through the registry: the catalog
    /// first (absent = default), then machine, workload and method
    /// within it. Every failure is a per-request error string — an
    /// unknown catalog answers exactly like an unknown machine, in
    /// order, never a panic.
    fn resolve(&self, request: &EvalRequest) -> Result<Resolved, String> {
        let catalog_index = self.registry.index_of(request.catalog.as_deref())?;
        let catalog = self.registry.catalog(catalog_index);
        let machine = catalog
            .machines
            .iter()
            .position(|m| m.name == request.machine)
            .ok_or_else(|| format!("unknown machine `{}`", request.machine))?;
        let workload = catalog
            .workloads
            .iter()
            .position(|w| w.name == request.workload)
            .ok_or_else(|| format!("unknown workload `{}`", request.workload))?;
        let kind = MethodKind::from_label(&request.method)
            .ok_or_else(|| format!("unknown method `{}`", request.method))?;
        let instance = kind
            .instantiate(&catalog.machines[machine], &catalog.opts)
            .ok_or_else(|| {
                format!(
                    "method `{}` unavailable on {}",
                    request.method, catalog.machines[machine].name
                )
            })?;
        Ok(Resolved {
            catalog: catalog_index,
            machine,
            workload,
            label: request.method.clone(),
            instance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;
    use ct_isa::Program;
    use ct_sim::RunConfig;

    fn kernel(n: u64) -> Program {
        assemble(
            "k",
            &format!(
                r#"
                .func main
                    movi r1, {n}
                top:
                    addi r2, r2, 1
                    subi r1, r1, 1
                    brnz r1, top
                    halt
                .endfunc
            "#
            ),
        )
        .unwrap()
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let program = kernel(20_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge(), MachineModel::westmere()];
        let requests = vec![
            EvalRequest::new("Westmere (Xeon X5650)", "k", "classic", 1, 1),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "lbr", 1, 2),
            EvalRequest::new("Westmere (Xeon X5650)", "k", "precise", 2, 3),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 1, 4),
        ];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(4);
        let responses = service.serve(&requests);
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(&response.request, request);
            assert!(response.is_ok(), "{:?}", response.error);
        }
        assert_eq!(responses[2].stats.as_ref().unwrap().runs.len(), 2);
        // 4 requests over 2 pairs: 2 builds, 2 hits.
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn bad_requests_become_error_responses() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::magny_cours()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(2);
        let requests = vec![
            EvalRequest::new("No Such Machine", "k", "classic", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "nope", "classic", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "frobnicate", 1, 1),
            // LBR does not exist on AMD: resolvable names, unavailable method.
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "lbr", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "classic", 1, 1),
        ];
        let responses = service.serve(&requests);
        assert!(responses[0].error.as_ref().unwrap().contains("unknown machine"));
        assert!(responses[1].error.as_ref().unwrap().contains("unknown workload"));
        assert!(responses[2].error.as_ref().unwrap().contains("unknown method"));
        assert!(responses[3].error.as_ref().unwrap().contains("unavailable"));
        assert!(responses[4].is_ok());
        let stats = service.stats();
        assert_eq!(stats.errors, 4);
        // All five requests — including the four resolution failures —
        // belong to the default catalog, and its error count sees them.
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].catalog, DEFAULT_CATALOG);
        assert_eq!(stats.tenants[0].requests, 5);
        assert_eq!(stats.tenants[0].errors, 4);
    }

    #[test]
    fn latency_window_rotates_and_keeps_the_all_time_count() {
        let mut window = LatencyWindow::default();
        for us in 0..(LATENCY_WINDOW as u64 + 10) {
            window.record(us);
        }
        assert_eq!(window.total, LATENCY_WINDOW as u64 + 10);
        assert_eq!(window.samples.len(), LATENCY_WINDOW, "bounded retention");
        // The oldest 10 samples rotated out; the newest 10 overwrote them.
        assert!(!window.samples.contains(&0));
        assert!(window.samples.contains(&(LATENCY_WINDOW as u64 + 9)));
        assert_eq!(window.next, 10);
    }

    #[test]
    fn percentile_us_nearest_rank_boundaries() {
        // Empty window: no distribution, report 0 for every p.
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_us(&[], p), 0);
        }
        // A single sample answers every percentile.
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_us(&[42], p), 42);
        }
        // p50 on len 2 is the LOWER sample (nearest rank: ceil(0.5*2)=1,
        // 1-indexed) — not the mean, not the upper.
        assert_eq!(percentile_us(&[10, 20], 0.50), 10);
        assert_eq!(percentile_us(&[10, 20], 0.51), 20);
        // p0 is the minimum, p1 the maximum; out-of-range p is clamped.
        assert_eq!(percentile_us(&[10, 20, 30], 0.0), 10);
        assert_eq!(percentile_us(&[10, 20, 30], 1.0), 30);
        assert_eq!(percentile_us(&[10, 20, 30], -0.5), 10);
        assert_eq!(percentile_us(&[10, 20, 30], 7.0), 30);
        // Exact-rank boundaries: p99 of 100 samples is the 99th value.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&hundred, 0.99), 99);
        assert_eq!(percentile_us(&hundred, 0.50), 50);
    }

    #[test]
    fn latency_percentiles_cover_only_the_post_wraparound_window() {
        // Fill the window with large values, then wrap it completely
        // with small ones: percentiles must reflect only the surviving
        // window, with no stale sample leaking through the ring cursor.
        let mut window = LatencyWindow::default();
        for _ in 0..LATENCY_WINDOW {
            window.record(1_000_000);
        }
        for us in 0..LATENCY_WINDOW as u64 {
            window.record(us);
        }
        let (samples, total) = window.sorted_samples();
        assert_eq!(total, 2 * LATENCY_WINDOW as u64);
        assert_eq!(samples.len(), LATENCY_WINDOW);
        assert_eq!(percentile_us(&samples, 1.0), LATENCY_WINDOW as u64 - 1);
        assert!(percentile_us(&samples, 0.99) < 1_000_000, "old samples rotated out");
        // A partial wrap keeps the mixed window: the cursor overwrites
        // the oldest slots first.
        let mut partial = LatencyWindow::default();
        for _ in 0..LATENCY_WINDOW {
            partial.record(7);
        }
        partial.record(9);
        let (samples, _) = partial.sorted_samples();
        assert_eq!(samples.iter().filter(|&&s| s == 9).count(), 1);
        assert_eq!(samples.len(), LATENCY_WINDOW);
    }

    #[test]
    fn weighted_interleave_rotates_catalogs_and_preserves_order() {
        let tagged = vec![
            (0, "a0"),
            (0, "a1"),
            (0, "a2"),
            (1, "b0"),
            (0, "a3"),
            (2, "c0"),
            (1, "b1"),
        ];
        assert_eq!(
            interleave_by_catalog(tagged),
            vec!["a0", "b0", "c0", "a1", "b1", "a2", "a3"],
            "one item per catalog per turn, catalogs by first appearance"
        );
        assert_eq!(interleave_by_catalog::<u32>(Vec::new()), Vec::<u32>::new());
        let single = vec![(5, 1), (5, 2), (5, 3)];
        assert_eq!(interleave_by_catalog(single), vec![1, 2, 3], "one catalog is a no-op");
    }

    #[test]
    fn fairness_policy_parses_flag_values() {
        assert_eq!(FairnessPolicy::parse("fcfs"), Some(FairnessPolicy::Fcfs));
        assert_eq!(FairnessPolicy::parse("weighted"), Some(FairnessPolicy::Weighted));
        assert_eq!(FairnessPolicy::parse("wrr"), Some(FairnessPolicy::Weighted));
        assert_eq!(FairnessPolicy::parse("lifo"), None);
        assert_eq!(FairnessPolicy::default(), FairnessPolicy::Fcfs);
        assert_eq!(FairnessPolicy::Weighted.name(), "weighted");
        assert_eq!(PipelineOptions::default().fairness, FairnessPolicy::Fcfs);
        assert_eq!(
            PipelineOptions::new().fairness(FairnessPolicy::Weighted).fairness,
            FairnessPolicy::Weighted
        );
    }

    #[test]
    fn request_seeds_are_stable_and_distinct() {
        assert_eq!(request_seed(7, 0), request_seed(7, 0));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16 {
            for run in 0..8 {
                assert!(seen.insert(request_seed(seed, run)));
            }
        }
    }

    #[test]
    fn zero_runs_are_served_as_one() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast());
        let response =
            service.serve_one(&EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 0, 9));
        assert_eq!(response.stats.unwrap().runs.len(), 1);
    }

    #[test]
    fn pipelined_output_matches_batched_output() {
        let program = kernel(10_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge(), MachineModel::westmere()];
        let requests = vec![
            EvalRequest::new("Westmere (Xeon X5650)", "k", "classic", 1, 1),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "lbr", 1, 2),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "precise", 1, 3),
            EvalRequest::new("Westmere (Xeon X5650)", "k", "precise", 2, 4),
            EvalRequest::new("Westmere (Xeon X5650)", "k", "no such method", 1, 5),
        ];
        let wire: String = requests
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();

        let batched = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(4);
        let mut expected = String::new();
        for chunk in requests.chunks(2) {
            expected.push_str(&batched.serve_jsonl(chunk));
        }

        for (depth, chunk) in [(1, 2), (3, 2), (2, 1), (1, 64)] {
            let service = EvalService::new(&machines, &workloads)
                .method_options(MethodOptions::fast())
                .threads(4);
            let mut out = Vec::new();
            let stats = service
                .serve_pipelined(
                    wire.as_bytes(),
                    &mut out,
                    &PipelineOptions::new().depth(depth).chunk(chunk),
                )
                .unwrap();
            assert_eq!(stats.requests, 5);
            assert_eq!(stats.parse_errors, 0);
            assert_eq!(stats.responses, 5);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                expected,
                "depth {depth} chunk {chunk} must match batched output"
            );
        }
    }

    #[test]
    fn pipelined_empty_stream_is_empty_output() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast());
        let mut out = Vec::new();
        let stats = service
            .serve_pipelined("".as_bytes(), &mut out, &PipelineOptions::default())
            .unwrap();
        assert_eq!(stats, PipelineStats::default());
        assert!(out.is_empty());
        // Blank lines are skipped, not answered.
        let stats = service
            .serve_pipelined("\n  \n\n".as_bytes(), &mut out, &PipelineOptions::default())
            .unwrap();
        assert_eq!(stats.responses, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn pipelined_depth_and_chunk_zero_are_clamped() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast());
        let request = EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 1, 3);
        let wire = serde_json::to_string(&request).unwrap() + "\n";
        let mut out = Vec::new();
        let stats = service
            .serve_pipelined(
                wire.as_bytes(),
                &mut out,
                &PipelineOptions::new().depth(0).chunk(0),
            )
            .unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.chunks, 1);
        assert_eq!(out.iter().filter(|&&b| b == b'\n').count(), 1);
    }

    #[test]
    fn pipelined_write_errors_surface() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::Other, "sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast());
        let request = EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 1, 3);
        let wire = serde_json::to_string(&request).unwrap() + "\n";
        let err = service
            .serve_pipelined(wire.as_bytes(), &mut FailingWriter, &PipelineOptions::default())
            .unwrap_err();
        assert_eq!(err.to_string(), "sink full");
    }

    #[test]
    fn identical_requests_get_identical_responses_across_batches() {
        let program = kernel(10_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::westmere()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .cache_capacity(1);
        let request = EvalRequest::new("Westmere (Xeon X5650)", "k", "precise+prime+rand", 3, 11);
        let a = serde_json::to_string(&service.serve_one(&request)).unwrap();
        let b = serde_json::to_string(&service.serve_one(&request)).unwrap();
        assert_eq!(a, b, "replayed request must be byte-identical");
    }
}
