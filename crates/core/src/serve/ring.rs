//! Bounded single-producer / single-consumer ring channel for the
//! pipeline stages.
//!
//! [`EvalService::serve_pipelined`](super::EvalService::serve_pipelined)
//! connects each pair of adjacent stages with exactly one producer and
//! one consumer, so the general-purpose `std::sync::mpsc::sync_channel`
//! (which takes a lock on every send/recv to coordinate any number of
//! senders) is more machinery than the topology needs. This ring
//! commits to the SPSC shape at the type level — [`RingSender`] and
//! [`RingReceiver`] are `Send + !Sync` and not cloneable — and in
//! exchange moves items through a fixed slot array with one atomic
//! store per side on the uncontended path.
//!
//! * **Lock-free fast path** — `send` and `recv` read the opposite
//!   side's cursor (`Acquire`), move the item through its slot, and
//!   publish their own cursor (`Release`). No mutex is touched while
//!   the ring is neither empty nor full.
//! * **Blocking edges** — a full `send` / empty `recv` parks on a
//!   `Condvar` after registering itself in a waiter count, re-checking
//!   the cursors in between so a wakeup can never be lost. The park
//!   uses a coarse timeout purely as a belt-and-suspenders backstop;
//!   progress is signalled by the opposite side, not by polling.
//! * **Close semantics** match `sync_channel`: dropping the sender
//!   makes `recv` drain the ring then return `None`; dropping the
//!   receiver makes `send` fail, handing the item back.
//!
//! Capacity is at least 1 (a rendezvous ring would re-introduce a
//! lock-step barrier between stages, which is exactly what the
//! pipeline's `depth` exists to avoid).

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Backstop for the parked edge cases; real wakeups come from the
/// opposite side's `notify_all`, this only bounds the damage of an
/// (impossible-by-construction, but cheap to defend against) missed
/// signal.
const PARK_BACKSTOP: Duration = Duration::from_millis(50);

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Monotonic count of items written; slot = head % capacity.
    head: AtomicUsize,
    /// Monotonic count of items read; slot = tail % capacity.
    tail: AtomicUsize,
    sender_alive: AtomicBool,
    receiver_alive: AtomicBool,
    /// Number of threads parked (or about to park) on `cond`.
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

// SAFETY: the slot array is only touched according to the SPSC
// protocol — the producer writes slot `head % cap` strictly before
// publishing `head` (Release), the consumer reads slot `tail % cap`
// only after observing `head > tail` (Acquire) and before publishing
// `tail`. Each slot is therefore owned by exactly one side at any
// time, so sharing `Shared<T>` across the two endpoint threads is
// sound whenever `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Wake the opposite side if (and only if) it might be parked.
    fn wake(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Take the lock so the notification cannot slip into the
            // window between a waiter's cursor re-check and its park.
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cond.notify_all();
        }
    }

    /// Park until `ready()` holds. `ready` must only read atomics.
    fn park_until(&self, ready: impl Fn() -> bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !ready() {
            let (next, _timeout) = self
                .cond
                .wait_timeout(guard, PARK_BACKSTOP)
                .unwrap_or_else(|e| e.into_inner());
            guard = next;
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Producer half of an SPSC [`ring_channel`]. `Send` but deliberately
/// `!Sync` and not `Clone`: exactly one thread may feed the ring.
pub(crate) struct RingSender<T> {
    shared: Arc<Shared<T>>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

/// Consumer half of an SPSC [`ring_channel`]. `Send` but `!Sync`,
/// not `Clone`; iterate it (`for item in rx`) to drain until the
/// sender hangs up.
pub(crate) struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// SAFETY: the endpoints own no thread-affine state; moving one to
// another thread just relocates which thread plays producer/consumer.
// `!Sync` (via the PhantomData<Cell>) keeps each role single-threaded.
unsafe impl<T: Send> Send for RingSender<T> {}
unsafe impl<T: Send> Send for RingReceiver<T> {}

/// Create a bounded SPSC channel holding at most `capacity.max(1)`
/// in-flight items.
pub(crate) fn ring_channel<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let capacity = capacity.max(1);
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        sender_alive: AtomicBool::new(true),
        receiver_alive: AtomicBool::new(true),
        waiters: AtomicUsize::new(0),
        lock: Mutex::new(()),
        cond: Condvar::new(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
            _not_sync: PhantomData,
        },
        RingReceiver {
            shared,
            _not_sync: PhantomData,
        },
    )
}

impl<T> RingSender<T> {
    /// Block until a slot frees up, then enqueue `item`. Fails —
    /// returning the item — once the receiver is gone.
    pub(crate) fn send(&self, item: T) -> Result<(), T> {
        let shared = &*self.shared;
        let cap = shared.capacity();
        loop {
            if !shared.receiver_alive.load(Ordering::Acquire) {
                return Err(item);
            }
            let head = shared.head.load(Ordering::Relaxed);
            let tail = shared.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) < cap {
                // SAFETY: `head - tail < cap` means slot `head % cap`
                // has been consumed (or never filled); only this
                // producer may write it until `head` is published.
                unsafe {
                    (*shared.slots[head % cap].get()).write(item);
                }
                shared.head.store(head.wrapping_add(1), Ordering::Release);
                shared.wake();
                return Ok(());
            }
            // Ring full: park until the consumer advances or leaves.
            shared.park_until(|| {
                let head = shared.head.load(Ordering::Relaxed);
                let tail = shared.tail.load(Ordering::Acquire);
                head.wrapping_sub(tail) < cap
                    || !shared.receiver_alive.load(Ordering::Acquire)
            });
        }
    }
}

impl<T> RingReceiver<T> {
    /// Block until an item is available; `None` once the sender has
    /// hung up **and** the ring is drained.
    pub(crate) fn recv(&self) -> Option<T> {
        let shared = &*self.shared;
        let cap = shared.capacity();
        loop {
            let tail = shared.tail.load(Ordering::Relaxed);
            let head = shared.head.load(Ordering::Acquire);
            if head != tail {
                // SAFETY: `head > tail` means slot `tail % cap` holds a
                // value the producer fully wrote before its Release
                // store to `head`, which our Acquire load observed.
                let item = unsafe { (*shared.slots[tail % cap].get()).assume_init_read() };
                shared.tail.store(tail.wrapping_add(1), Ordering::Release);
                shared.wake();
                return Some(item);
            }
            if !shared.sender_alive.load(Ordering::Acquire) {
                return None;
            }
            // Ring empty: park until the producer advances or leaves.
            shared.park_until(|| {
                let tail = shared.tail.load(Ordering::Relaxed);
                let head = shared.head.load(Ordering::Acquire);
                head != tail || !shared.sender_alive.load(Ordering::Acquire)
            });
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.sender_alive.store(false, Ordering::Release);
        self.shared.wake();
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.receiver_alive.store(false, Ordering::Release);
        // Drain anything still enqueued so in-flight items are dropped
        // exactly once, here (the producer never reclaims a slot it
        // already published).
        let shared = &*self.shared;
        let cap = shared.capacity();
        let mut tail = shared.tail.load(Ordering::Relaxed);
        let head = shared.head.load(Ordering::Acquire);
        while tail != head {
            // SAFETY: same slot-ownership argument as `recv`; the
            // producer can no longer free-running publish into these
            // slots because `head` is fixed from its perspective until
            // it observes `receiver_alive == false` and bails.
            unsafe {
                (*shared.slots[tail % cap].get()).assume_init_drop();
            }
            tail = tail.wrapping_add(1);
        }
        shared.tail.store(tail, Ordering::Release);
        shared.wake();
    }
}

/// Draining iterator: yields until the sender disconnects.
pub(crate) struct RingIter<T> {
    receiver: RingReceiver<T>,
}

impl<T> Iterator for RingIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv()
    }
}

impl<T> IntoIterator for RingReceiver<T> {
    type Item = T;
    type IntoIter = RingIter<T>;

    fn into_iter(self) -> RingIter<T> {
        RingIter { receiver: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_across_threads() {
        let (tx, rx) = ring_channel::<u64>(2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let mut expected = 0u64;
            for item in rx {
                assert_eq!(item, expected);
                expected += 1;
            }
            assert_eq!(expected, 10_000);
        });
    }

    #[test]
    fn capacity_bounds_in_flight_items() {
        // With capacity 2 a third send must block until a recv frees a
        // slot; observe the bound through a side counter.
        let (tx, rx) = ring_channel::<usize>(2);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let sent = &sent;
            scope.spawn(move || {
                for i in 0..4 {
                    tx.send(i).expect("receiver alive");
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Give the producer time to run ahead as far as it can.
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            while sent.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(sent.load(Ordering::SeqCst), 2, "third send must block");
            let drained: Vec<usize> = rx.into_iter().collect();
            assert_eq!(drained, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn recv_returns_none_after_sender_drop() {
        let (tx, rx) = ring_channel::<u8>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "disconnect is sticky");
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = ring_channel::<String>(1);
        drop(rx);
        assert_eq!(tx.send("lost".into()), Err("lost".into()));
    }

    #[test]
    fn receiver_drop_releases_blocked_sender() {
        let (tx, rx) = ring_channel::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(handle.join().unwrap(), Err(2));
        });
    }

    #[test]
    fn in_flight_items_drop_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (tx, rx) = ring_channel::<Counted>(4);
        tx.send(Counted).unwrap();
        tx.send(Counted).unwrap();
        tx.send(Counted).unwrap();
        drop(rx.recv()); // one consumed
        drop(rx); // two drained by the receiver's Drop
        assert!(tx.send(Counted).is_err()); // handed back, dropped by caller
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn park_backstop_recovers_without_a_wakeup() {
        // Drive the parking primitive directly with a readiness flag
        // that is flipped WITHOUT any `wake()` — the only thing that can
        // unpark the thread is the PARK_BACKSTOP re-check, so returning
        // at all (and promptly) pins the backstop behaviour the module
        // docs promise for a missed signal.
        let (tx, _rx) = ring_channel::<()>(1);
        let shared = Arc::clone(&tx.shared);
        let ready = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ready);
        let flipper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            flag.store(true, Ordering::SeqCst);
            // Deliberately no notify: the backstop must notice alone.
        });
        let start = std::time::Instant::now();
        shared.park_until(|| ready.load(Ordering::SeqCst));
        let elapsed = start.elapsed();
        flipper.join().unwrap();
        assert!(
            elapsed >= Duration::from_millis(120),
            "park_until returned before the flag was set ({elapsed:?})"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "backstop wakeup never fired; parked {elapsed:?} past the flag"
        );
        assert_eq!(
            shared.waiters.load(Ordering::SeqCst),
            0,
            "waiter registration must drain after unpark"
        );
    }

    #[test]
    fn blocked_sides_survive_multiple_backstop_periods() {
        // Each side parked for ~120 ms — several 50 ms backstop periods,
        // so the condvar wait times out and re-checks more than once
        // before the opposite side finally acts. Both edges must
        // complete and the waiter count must return to zero.
        let (tx, rx) = ring_channel::<u8>(1);

        // Receiver parks on an empty ring well before the send.
        let rx = std::thread::scope(|scope| {
            let parked = scope.spawn(move || {
                assert_eq!(rx.recv(), Some(9));
                rx
            });
            std::thread::sleep(Duration::from_millis(120));
            tx.send(9).unwrap();
            parked.join().unwrap()
        });

        // Sender parks on a full ring equally long before a recv frees
        // a slot.
        tx.send(1).unwrap();
        std::thread::scope(|scope| {
            let parked = scope.spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(120));
            assert_eq!(rx.recv(), Some(1));
            parked.join().unwrap();
        });
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(
            rx.shared.waiters.load(Ordering::SeqCst),
            0,
            "no stale waiter registrations after both parks resolved"
        );
    }

    #[test]
    fn dropping_either_end_of_a_full_ring_drops_queued_items_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted(usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        // Receiver dropped while the ring is full AND the producer is
        // parked mid-send: the receiver's Drop drains the three queued
        // items, the parked send fails handing its item back (dropped by
        // the producer thread), and nothing is dropped twice.
        DROPS.store(0, Ordering::SeqCst);
        let (tx, rx) = ring_channel::<Counted>(3);
        for i in 0..3 {
            tx.send(Counted(i)).unwrap();
        }
        std::thread::scope(|scope| {
            let parked = scope.spawn(move || tx.send(Counted(3)).is_err());
            std::thread::sleep(Duration::from_millis(60));
            assert_eq!(
                DROPS.load(Ordering::SeqCst),
                0,
                "nothing may drop while both endpoints are alive"
            );
            drop(rx);
            assert!(
                parked.join().unwrap(),
                "the parked send must fail once the receiver is gone"
            );
        });
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            4,
            "3 drained by the receiver's Drop + 1 handed back to the sender"
        );

        // Sender dropped while the ring is full: close is graceful in
        // this direction — the receiver drains every queued item in
        // order, then sees the disconnect, and each item drops exactly
        // once at the consumer.
        DROPS.store(0, Ordering::SeqCst);
        let (tx, rx) = ring_channel::<Counted>(3);
        for i in 0..3 {
            tx.send(Counted(i)).unwrap();
        }
        drop(tx);
        let mut seen = 0;
        for item in rx {
            assert_eq!(item.0, seen, "full-ring drain must preserve order");
            seen += 1;
        }
        assert_eq!(seen, 3, "every queued item survives the sender's drop");
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stress_many_items_small_ring() {
        for cap in [1usize, 2, 3, 8] {
            let (tx, rx) = ring_channel::<usize>(cap);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..50_000 {
                        if tx.send(i).is_err() {
                            return;
                        }
                    }
                });
                let mut next = 0usize;
                for item in rx {
                    assert_eq!(item, next);
                    next += 1;
                }
                assert_eq!(next, 50_000, "cap {cap}");
            });
        }
    }
}
