//! TCP network intake for the evaluation service.
//!
//! [`EvalServer`] is the socket front door of [`EvalService`]: it binds a
//! [`TcpListener`] and drives every accepted connection through a fixed
//! pool of connection workers. Each connection is protocol-negotiated by
//! its first bytes (see [`super::proto`]): the original **v1** wire
//! format — one EOF-delimited JSON-lines stream, answered through
//! [`EvalService::serve_pipelined`], byte-identical to an offline
//! pipelined run — and the keep-alive, multiplexed **v2** framing,
//! whose per-stream responses are byte-identical to the same lines over
//! their own v1 connection. v1 clients need no changes and see no
//! difference.
//!
//! The accept path is event-driven (the `serve::reactor` module):
//! the listener blocks in the kernel until a connection is ready, and
//! handing a connection to the worker pool blocks while all
//! [`NetOptions::max_connections`] workers are busy. An idle or at-cap
//! server parks — there is no fixed-interval poll anywhere.
//!
//! Operational guarantees:
//!
//! * **Connection cap** ([`NetOptions::max_connections`]): the pool has
//!   exactly that many workers; when all are busy the server stops
//!   accepting until one frees — pending clients wait in the OS backlog
//!   instead of being dropped.
//! * **Graceful shutdown** ([`ServerHandle::shutdown`]): the accept loop
//!   stops taking new connections (a loopback wake-up unparks a blocked
//!   accept), every in-flight connection drains to completion, then
//!   [`EvalServer::serve`] returns its [`NetStats`].
//! * **Per-connection error isolation**: a connection that fails mid-I/O
//!   (client gone, socket reset) is counted in [`NetStats::io_errors`];
//!   a connection whose worker *panics* is counted separately in
//!   [`NetStats::worker_panics`]. Both are logged to stderr and neither
//!   takes down the accept loop or any sibling connection. Malformed
//!   request lines are not errors at this layer at all — the pipeline
//!   answers them in-order, per its contract.
//! * **No lost accounting**: if the *listener itself* fails, the error
//!   comes back as an [`AcceptError`] that still carries the
//!   [`NetStats`] of everything served up to that point.
//!
//! # Examples
//!
//! Serve a catalog over loopback and drive one client connection
//! (networked and offline responses are byte-identical):
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::net::{EvalServer, NetOptions};
//! use countertrust::serve::{EvalService, PipelineOptions};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//! use std::io::{Read, Write};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let service = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let wire = "{\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"demo\",\"method\":\"classic\",\"runs\":1,\"seed\":7}\n";
//!
//! let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let served = std::thread::scope(|scope| {
//!     let serving = scope.spawn(|| server.serve(&service));
//!     let mut stream = std::net::TcpStream::connect(addr).unwrap();
//!     stream.write_all(wire.as_bytes()).unwrap();
//!     stream.shutdown(std::net::Shutdown::Write).unwrap();
//!     let mut response = String::new();
//!     stream.read_to_string(&mut response).unwrap();
//!     handle.shutdown();
//!     let stats = serving.join().unwrap().unwrap();
//!     assert_eq!(stats.connections, 1);
//!     response
//! });
//!
//! let offline = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let mut expected = Vec::new();
//! offline
//!     .serve_pipelined(wire.as_bytes(), &mut expected, &PipelineOptions::default())
//!     .unwrap();
//! assert_eq!(served.as_bytes(), expected.as_slice());
//! ```

use super::proto::{self, Negotiated};
use super::reactor::{run_reactor, AcceptSource, ConnectionRegistry};
use super::{EvalService, PipelineOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default socket read/write timeout of the [`exchange`] /
/// [`super::proto::exchange_v2`] client helpers: generous enough for a
/// full reference build between responses, finite enough that a stalled
/// server cannot hang a bench client forever.
pub const DEFAULT_EXCHANGE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long [`ServerHandle::shutdown`] waits for its loopback wake-up
/// connection; purely best-effort (a server that is not blocked in
/// accept does not need waking).
const WAKE_TIMEOUT: Duration = Duration::from_millis(200);

/// Shape of a network-served evaluation tier.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// The pipeline every connection is driven through.
    pub pipeline: PipelineOptions,
    /// Maximum concurrently served connections (values below 1 are
    /// served as 1) — the size of the connection worker pool. The
    /// accept loop blocks at the cap; waiting clients queue in the OS
    /// listen backlog.
    pub max_connections: usize,
    /// Optional snapshot-store directory ([`crate::store`]) attached to
    /// the served service's cache before the first accept: reference
    /// profiles persist across server restarts, so a server restarted
    /// on the same directory warm-starts at full hit rate with zero
    /// instrumented executions. `None` (the default) serves exactly as
    /// before.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Optional directory of `.ctasm` + manifest pairs compiled into an
    /// extra served tenant catalog (named after the directory) before
    /// the first accept — the data-catalog path. Programs are assembled
    /// and size/step-limit checked by `ct_workloads::loader`; a
    /// malformed directory is rejected with a typed error at
    /// [`EvalServer::configure_service`] time, never at request time.
    /// `None` (the default) serves exactly as before.
    pub workload_dir: Option<std::path::PathBuf>,
    /// Scale applied to [`NetOptions::workload_dir`] workloads' declared
    /// size constants (the registry sizing rule). Ignored without a
    /// `workload_dir`.
    pub workload_scale: f64,
}

impl Default for NetOptions {
    fn default() -> Self {
        Self {
            pipeline: PipelineOptions::default(),
            max_connections: 8,
            snapshot_dir: None,
            workload_dir: None,
            workload_scale: 1.0,
        }
    }
}

impl NetOptions {
    /// Default shape: default pipeline, at most 8 concurrent connections.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-connection pipeline shape.
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the concurrent-connection cap (clamped to at least 1 at
    /// use).
    #[must_use]
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Backs the served service's cache with an on-disk snapshot store
    /// (see [`EvalService::snapshot_dir`]).
    #[must_use]
    pub fn snapshot_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Serves an extra tenant catalog compiled from a directory of
    /// `.ctasm` + manifest pairs (see [`EvalService::workload_dir`]).
    #[must_use]
    pub fn workload_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.workload_dir = Some(dir.into());
        self
    }

    /// Sets the scale applied to [`NetOptions::workload_dir`] workloads.
    #[must_use]
    pub fn workload_scale(mut self, scale: f64) -> Self {
        self.workload_scale = scale;
        self
    }
}

/// Counters of one [`EvalServer::serve`] run. Connection-level I/O
/// failures land in [`NetStats::io_errors`], crashed workers in
/// [`NetStats::worker_panics`]; request-level failures are ordinary
/// error responses inside their stream and are counted by the service's
/// [`super::ServeStats`] as usual.
///
/// The line/request/response counters cover **cleanly completed**
/// connections only: a connection that dies mid-stream contributes just
/// its `io_errors` tick here (its partially served work is still
/// visible in the service's cumulative [`super::ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Non-empty request lines consumed across cleanly completed
    /// connections.
    pub lines: u64,
    /// Lines that parsed into requests.
    pub requests: u64,
    /// Lines answered with parse-error responses.
    pub parse_errors: u64,
    /// Responses written across cleanly completed connections.
    pub responses: u64,
    /// Connections that ended in an I/O error (client disconnected
    /// mid-stream, socket reset); each was isolated to its own worker.
    pub io_errors: u64,
    /// Connections whose worker panicked. Kept apart from
    /// [`NetStats::io_errors`] so a crashing handler is
    /// distinguishable from a flaky client.
    pub worker_panics: u64,
}

/// A failed [`EvalServer::serve`] run: the listener-level error **plus**
/// the [`NetStats`] accumulated before it — connections drained up to
/// the failure are never silently discarded.
#[derive(Debug)]
pub struct AcceptError {
    /// What the listener failed with.
    pub error: std::io::Error,
    /// Everything served before the failure.
    pub stats: NetStats,
}

impl std::fmt::Display for AcceptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accept loop failed after {} connections ({} responses): {}",
            self.stats.connections, self.stats.responses, self.error
        )
    }
}

impl std::error::Error for AcceptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A handle that requests a graceful shutdown of a serving
/// [`EvalServer`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the server to stop accepting connections and drain. Safe to
    /// call from any thread, any number of times.
    ///
    /// The accept loop blocks in the kernel when idle, so after raising
    /// the stop flag this opens (and immediately drops) one loopback
    /// connection to unpark it; the server recognizes and discards it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            // `0.0.0.0`/`::` is a bind address, not a destination.
            addr.set_ip(match addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&addr, WAKE_TIMEOUT);
    }
}

/// A bound TCP evaluation server. [`EvalServer::listen`] binds the
/// socket; [`EvalServer::serve`] runs the accept loop against a service
/// until a [`ServerHandle::shutdown`].
pub struct EvalServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    options: NetOptions,
    stop: Arc<AtomicBool>,
    /// Connections accepted across this server's lifetime, observable
    /// while [`EvalServer::serve`] runs (the per-run [`NetStats`] is
    /// only available once it returns) — e.g. to shut down only after
    /// known traffic was taken in.
    accepted: AtomicU64,
    /// Live in-flight connection count/peak, observable while serving.
    registry: ConnectionRegistry,
}

impl EvalServer {
    /// Binds `addr` (use port `0` for an ephemeral port — the resolved
    /// address is [`EvalServer::local_addr`]) without serving yet. The
    /// listener stays in blocking mode: accepting parks in the kernel
    /// until a connection is ready.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration error when the address is
    /// unavailable.
    pub fn listen(addr: impl ToSocketAddrs, options: NetOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            options,
            stop: Arc::new(AtomicBool::new(false)),
            accepted: AtomicU64::new(0),
            registry: ConnectionRegistry::default(),
        })
    }

    /// Connections accepted so far (live — readable from other threads
    /// while the server runs).
    #[must_use]
    pub fn connections_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }

    /// Connections being served right now (live).
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.registry.active()
    }

    /// Most connections ever served at once (live) — never exceeds the
    /// [`NetOptions::max_connections`] worker-pool size.
    #[must_use]
    pub fn peak_connections(&self) -> usize {
        self.registry.peak()
    }

    /// The address the server actually bound (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle for this server, cloneable across threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: self.stop.clone(),
            addr: self.local_addr,
        }
    }

    /// Accepts connections and serves each on one of
    /// [`NetOptions::max_connections`] pooled workers — v1 connections
    /// through [`EvalService::serve_pipelined`], v2 connections through
    /// the framed [`super::proto`] session — until the [`ServerHandle`]
    /// asks for shutdown; in-flight connections drain before this
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] on the first *listener* error (a
    /// failing `accept`), carrying the stats accumulated so far.
    /// Per-connection I/O errors never surface here — they are counted
    /// in [`NetStats::io_errors`].
    pub fn serve(&self, service: &EvalService) -> Result<NetStats, AcceptError> {
        self.serve_with(service, serve_connection)
    }

    /// Applies the data-catalog options to a service before serving it:
    /// when [`NetOptions::workload_dir`] is set, compiles that directory
    /// through [`EvalService::workload_dir`] at
    /// [`NetOptions::workload_scale`] and registers the result as a
    /// served tenant catalog. With no `workload_dir` the service is
    /// returned unchanged. Consuming because tenant registration
    /// happens before the (shared, `&self`) serve loop starts.
    ///
    /// # Errors
    ///
    /// A malformed catalog directory (unparsable manifest, assembler
    /// diagnostic, size/step-limit violation, duplicate name) surfaces
    /// here as `InvalidData` — before the first accept, never at
    /// request time.
    pub fn configure_service(&self, service: EvalService) -> std::io::Result<EvalService> {
        match &self.options.workload_dir {
            Some(dir) => service
                .workload_dir(dir, self.options.workload_scale)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            None => Ok(service),
        }
    }

    /// [`EvalServer::serve`] with a custom per-connection handler — the
    /// seam for alternative wire protocols and for fault-injection
    /// tests (the panic-isolation regression drives a handler that
    /// panics on purpose).
    ///
    /// The contract the accept loop owes every handler: each connection
    /// runs on a pooled worker; a handler returning `Err` counts one
    /// [`NetStats::io_errors`]; a handler that **panics** is caught,
    /// counted in [`NetStats::worker_panics`], and its worker keeps
    /// serving — the server accepts more connections either way.
    ///
    /// # Errors
    ///
    /// Exactly as [`EvalServer::serve`]: only listener-level errors.
    pub fn serve_with<H>(
        &self,
        service: &EvalService,
        handler: H,
    ) -> Result<NetStats, AcceptError>
    where
        H: Fn(&EvalService, &TcpStream, &PipelineOptions) -> std::io::Result<super::PipelineStats>
            + Sync,
    {
        self.serve_on_source(&self.listener, service, handler)
    }

    /// The full serve loop over any [`AcceptSource`] — `serve_with`
    /// against the real listener, fault-injection tests against a
    /// source that fails on command.
    pub(crate) fn serve_on_source<S, H>(
        &self,
        source: &S,
        service: &EvalService,
        handler: H,
    ) -> Result<NetStats, AcceptError>
    where
        S: AcceptSource + ?Sized,
        H: Fn(&EvalService, &TcpStream, &PipelineOptions) -> std::io::Result<super::PipelineStats>
            + Sync,
    {
        let workers = self.options.max_connections.max(1);
        let pipeline = self.options.pipeline;
        if let Some(dir) = &self.options.snapshot_dir {
            service.attach_snapshot_dir(dir.clone());
        }
        let handler = &handler;
        let connections = AtomicU64::new(0);
        let lines = AtomicU64::new(0);
        let requests = AtomicU64::new(0);
        let parse_errors = AtomicU64::new(0);
        let responses = AtomicU64::new(0);
        let io_errors = AtomicU64::new(0);
        let worker_panics = AtomicU64::new(0);

        let accept_error = run_reactor(source, &self.stop, workers, |stream: TcpStream| {
            // Registered before any handler work; the guard deregisters
            // on every exit path, panics included.
            let _slot = self.registry.register();
            connections.fetch_add(1, Ordering::Relaxed);
            self.accepted.fetch_add(1, Ordering::Release);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler(service, &stream, &pipeline)
            }));
            let _ = stream.shutdown(Shutdown::Both);
            match outcome {
                Ok(Ok(stats)) => {
                    lines.fetch_add(stats.lines, Ordering::Relaxed);
                    requests.fetch_add(stats.requests, Ordering::Relaxed);
                    parse_errors.fetch_add(stats.parse_errors, Ordering::Relaxed);
                    responses.fetch_add(stats.responses, Ordering::Relaxed);
                }
                Ok(Err(e)) => {
                    // Isolation: this connection's failure stays its
                    // own; the server keeps serving.
                    io_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("warning: connection failed: {e}");
                }
                Err(panic) => {
                    // A worker panic is a connection failure, never a
                    // server failure: count it apart from client I/O,
                    // keep the worker serving.
                    worker_panics.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "warning: connection worker panicked: {}",
                        panic_message(panic.as_ref())
                    );
                }
            }
        });

        let stats = NetStats {
            connections: connections.into_inner(),
            lines: lines.into_inner(),
            requests: requests.into_inner(),
            parse_errors: parse_errors.into_inner(),
            responses: responses.into_inner(),
            io_errors: io_errors.into_inner(),
            worker_panics: worker_panics.into_inner(),
        };
        match accept_error {
            Some(error) => Err(AcceptError { error, stats }),
            None => Ok(stats),
        }
    }
}

/// Renders a caught panic payload for the warning log (panics carry
/// `&str` or `String` payloads from `panic!`; anything else is opaque).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Drives one accepted connection: sniffs the protocol version from its
/// first bytes, then serves v1 through the staged pipeline or v2
/// through the framed session. The consumed sniff bytes of a v1
/// connection are replayed in front of the socket, so v1 service is
/// byte-identical to a pre-negotiation server.
fn serve_connection(
    service: &EvalService,
    stream: &TcpStream,
    pipeline: &PipelineOptions,
) -> std::io::Result<super::PipelineStats> {
    // Accepted sockets may inherit listener flags on some platforms;
    // both protocols want plain blocking I/O.
    stream.set_nonblocking(false)?;
    match proto::negotiate_server(stream)? {
        Negotiated::V2 => {
            let stats = proto::serve_v2(service, stream, pipeline)?;
            let _ = stream.shutdown(Shutdown::Write);
            Ok(stats)
        }
        Negotiated::V1 { consumed } => {
            let replay = std::io::Cursor::new(consumed);
            let reader = BufReader::new(replay.chain(stream.try_clone()?));
            let mut writer = BufWriter::new(stream);
            let stats = service.serve_pipelined(reader, &mut writer, pipeline)?;
            writer.flush()?;
            // Half-close tells well-behaved clients the response stream
            // is done even if they keep their write side open.
            let _ = stream.shutdown(Shutdown::Write);
            Ok(stats)
        }
    }
}

/// Client-side convenience: sends a JSON-lines request stream over one
/// v1 TCP connection and returns the full response stream. Used by the
/// bench/client tooling; servers never call this. Socket reads and
/// writes time out after [`DEFAULT_EXCHANGE_TIMEOUT`] — use
/// [`exchange_with`] to change or disable that.
///
/// # Errors
///
/// Returns any connect/write/read error; a stalled server surfaces as
/// the platform's timeout error (`WouldBlock`/`TimedOut`) instead of
/// hanging forever.
pub fn exchange(addr: impl ToSocketAddrs, wire: &str) -> std::io::Result<String> {
    exchange_with(addr, wire, Some(DEFAULT_EXCHANGE_TIMEOUT))
}

/// [`exchange`] with an explicit socket read/write timeout (`None`
/// blocks forever, the pre-timeout behavior).
///
/// # Errors
///
/// As [`exchange`].
pub fn exchange_with(
    addr: impl ToSocketAddrs,
    wire: &str,
    timeout: Option<Duration>,
) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.write_all(wire.as_bytes())?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_options_clamp_and_build() {
        let options = NetOptions::new()
            .max_connections(0)
            .pipeline(PipelineOptions::new().depth(3).chunk(5));
        assert_eq!(options.max_connections, 0, "stored raw, clamped at use");
        assert_eq!(options.pipeline.depth, 3);
        assert_eq!(options.pipeline.chunk, 5);
        assert_eq!(NetOptions::default().max_connections, 8);
    }

    #[test]
    fn listen_resolves_ephemeral_ports_and_shutdown_is_idempotent() {
        let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        let handle = server.handle();
        handle.shutdown();
        handle.shutdown();
        assert!(server.stop.load(Ordering::Acquire));
    }

    #[test]
    fn exchange_times_out_against_a_server_that_never_responds() {
        // A bound listener that never accepts: the connect succeeds via
        // the OS backlog, the write lands in socket buffers, and the
        // read would previously have hung forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let started = std::time::Instant::now();
        let err = exchange_with(addr, "{\"x\":1}\n", Some(Duration::from_millis(100)))
            .expect_err("a never-responding server must time out");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must fire promptly, not hang"
        );
    }

    #[test]
    fn failing_listener_returns_the_stats_it_accumulated() {
        use crate::grid::WorkloadSpec;
        use crate::methods::MethodOptions;
        use ct_isa::asm::assemble;
        use ct_sim::{MachineModel, RunConfig};
        use std::sync::atomic::AtomicUsize;

        /// Accepts `good` real connections, then fails like a listener
        /// whose descriptor went bad.
        struct FailingSource {
            listener: TcpListener,
            good: usize,
            taken: AtomicUsize,
        }
        impl AcceptSource for FailingSource {
            fn accept_stream(&self) -> std::io::Result<TcpStream> {
                if self.taken.fetch_add(1, Ordering::SeqCst) >= self.good {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        "injected listener failure",
                    ));
                }
                self.listener.accept().map(|(s, _)| s)
            }
        }

        let program = assemble(
            "k",
            ".func main\n movi r1, 2000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
        )
        .unwrap();
        let run_config = RunConfig::default();
        let workloads =
            [WorkloadSpec { name: "k", program: &program, run_config: &run_config }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(1);
        let wire = "{\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"k\",\"method\":\"classic\",\"runs\":1,\"seed\":3}\n";

        // The server object still owns a (never-used) real listener; the
        // injected source wraps its own.
        let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
        let source_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = source_listener.local_addr().unwrap();
        let source = FailingSource {
            listener: source_listener,
            good: 2,
            taken: AtomicUsize::new(0),
        };

        let result = std::thread::scope(|scope| {
            let serving =
                scope.spawn(|| server.serve_on_source(&source, &service, serve_connection));
            for c in 0..2 {
                let response = exchange(addr, wire).expect("exchange");
                assert!(!response.is_empty(), "connection {c} got its response");
            }
            serving.join().expect("server thread")
        });

        // The regression: the listener error used to discard the drained
        // connections' stats entirely.
        let failure = result.expect_err("the injected listener failure must surface");
        assert_eq!(failure.error.to_string(), "injected listener failure");
        assert_eq!(failure.stats.connections, 2, "drained work is not lost");
        assert_eq!(failure.stats.requests, 2);
        assert_eq!(failure.stats.responses, 2);
        assert_eq!(failure.stats.io_errors, 0);
        assert!(failure.to_string().contains("2 connections"));
    }

    #[test]
    fn accept_error_display_names_the_drained_work() {
        let err = AcceptError {
            error: std::io::Error::new(std::io::ErrorKind::Other, "boom"),
            stats: NetStats {
                connections: 3,
                responses: 7,
                ..NetStats::default()
            },
        };
        let text = err.to_string();
        assert!(text.contains("3 connections"), "{text}");
        assert!(text.contains("7 responses"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
