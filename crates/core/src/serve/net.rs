//! TCP network intake for the evaluation service.
//!
//! [`EvalServer`] is the socket front door of [`EvalService`]: it binds a
//! [`TcpListener`], accepts connections and drives each one through
//! [`EvalService::serve_pipelined`] on its own scoped worker thread —
//! the wire format over the socket is exactly the offline JSON-lines
//! format, so a connection's response stream is **byte-identical** to an
//! offline pipelined run over the same request lines (same catalogs,
//! same determinism contract; the shared [`crate::cache::ProfileCache`]
//! only changes how often references are rebuilt across connections).
//!
//! Operational guarantees:
//!
//! * **Connection cap** ([`NetOptions::max_connections`]): when the cap
//!   is reached, the server simply stops accepting until a slot frees —
//!   pending clients wait in the OS backlog instead of being dropped.
//! * **Graceful shutdown** ([`ServerHandle::shutdown`]): the accept loop
//!   stops taking new connections, every in-flight connection drains to
//!   completion, then [`EvalServer::serve`] returns its [`NetStats`].
//! * **Per-connection error isolation**: a connection that fails mid-I/O
//!   (client gone, socket reset) — or whose worker *panics* — is counted
//!   in [`NetStats::io_errors`] and logged to stderr; it never takes
//!   down the accept loop or any sibling connection, and its connection
//!   slot is always released (the `active` count is decremented by a
//!   drop guard, so even a panicking worker cannot permanently consume
//!   a slot of the [`NetOptions::max_connections`] cap). Malformed
//!   request lines are not errors at this layer at all — the pipeline
//!   answers them in-order, per its contract.
//!
//! # Examples
//!
//! Serve a catalog over loopback and drive one client connection
//! (networked and offline responses are byte-identical):
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::net::{EvalServer, NetOptions};
//! use countertrust::serve::{EvalService, PipelineOptions};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//! use std::io::{Read, Write};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let service = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let wire = "{\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"demo\",\"method\":\"classic\",\"runs\":1,\"seed\":7}\n";
//!
//! let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let served = std::thread::scope(|scope| {
//!     let serving = scope.spawn(|| server.serve(&service));
//!     let mut stream = std::net::TcpStream::connect(addr).unwrap();
//!     stream.write_all(wire.as_bytes()).unwrap();
//!     stream.shutdown(std::net::Shutdown::Write).unwrap();
//!     let mut response = String::new();
//!     stream.read_to_string(&mut response).unwrap();
//!     handle.shutdown();
//!     let stats = serving.join().unwrap().unwrap();
//!     assert_eq!(stats.connections, 1);
//!     response
//! });
//!
//! let offline = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let mut expected = Vec::new();
//! offline
//!     .serve_pipelined(wire.as_bytes(), &mut expected, &PipelineOptions::default())
//!     .unwrap();
//! assert_eq!(served.as_bytes(), expected.as_slice());
//! ```

use super::{EvalService, PipelineOptions};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the accept loop naps when there is nothing to accept (the
/// listener is non-blocking so shutdown is always observed promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Shape of a network-served evaluation tier.
#[derive(Debug, Clone, Copy)]
pub struct NetOptions {
    /// The pipeline every connection is driven through.
    pub pipeline: PipelineOptions,
    /// Maximum concurrently served connections (values below 1 are
    /// served as 1). The accept loop pauses at the cap; waiting clients
    /// queue in the OS listen backlog.
    pub max_connections: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        Self {
            pipeline: PipelineOptions::default(),
            max_connections: 8,
        }
    }
}

impl NetOptions {
    /// Default shape: default pipeline, at most 8 concurrent connections.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-connection pipeline shape.
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the concurrent-connection cap (clamped to at least 1 at
    /// use).
    #[must_use]
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }
}

/// Counters of one [`EvalServer::serve`] run. Connection-level I/O
/// failures land in [`NetStats::io_errors`]; request-level failures are
/// ordinary error responses inside their stream and are counted by the
/// service's [`super::ServeStats`] as usual.
///
/// The line/request/response counters cover **cleanly completed**
/// connections only: a connection that dies mid-stream contributes just
/// its `io_errors` tick here (its partially served work is still
/// visible in the service's cumulative [`super::ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Non-empty request lines consumed across cleanly completed
    /// connections.
    pub lines: u64,
    /// Lines that parsed into requests.
    pub requests: u64,
    /// Lines answered with parse-error responses.
    pub parse_errors: u64,
    /// Responses written across cleanly completed connections.
    pub responses: u64,
    /// Connections that ended in an I/O error (client disconnected
    /// mid-stream, socket reset); each was isolated to its own worker.
    pub io_errors: u64,
}

/// A handle that requests a graceful shutdown of a serving
/// [`EvalServer`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to stop accepting connections and drain. Safe to
    /// call from any thread, any number of times.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// A bound TCP evaluation server. [`EvalServer::listen`] binds the
/// socket; [`EvalServer::serve`] runs the accept loop against a service
/// until a [`ServerHandle::shutdown`].
pub struct EvalServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    options: NetOptions,
    stop: Arc<AtomicBool>,
    /// Connections accepted across this server's lifetime, observable
    /// while [`EvalServer::serve`] runs (the per-run [`NetStats`] is
    /// only available once it returns) — e.g. to shut down only after
    /// known traffic was taken in.
    accepted: AtomicU64,
}

impl EvalServer {
    /// Binds `addr` (use port `0` for an ephemeral port — the resolved
    /// address is [`EvalServer::local_addr`]) without serving yet.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration error when the address is
    /// unavailable.
    pub fn listen(addr: impl ToSocketAddrs, options: NetOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accepts keep the loop responsive to shutdown.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            options,
            stop: Arc::new(AtomicBool::new(false)),
            accepted: AtomicU64::new(0),
        })
    }

    /// Connections accepted so far (live — readable from other threads
    /// while the server runs).
    #[must_use]
    pub fn connections_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }

    /// The address the server actually bound (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle for this server, cloneable across threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: self.stop.clone(),
        }
    }

    /// Accepts connections and serves each through
    /// [`EvalService::serve_pipelined`] on its own scoped worker thread,
    /// until the [`ServerHandle`] asks for shutdown; in-flight
    /// connections drain before this returns.
    ///
    /// # Errors
    ///
    /// Returns the first *listener* error (a failing `accept` that is
    /// not just an empty backlog). Per-connection I/O errors never
    /// surface here — they are counted in [`NetStats::io_errors`].
    pub fn serve(&self, service: &EvalService<'_>) -> std::io::Result<NetStats> {
        self.serve_with(service, serve_connection)
    }

    /// [`EvalServer::serve`] with a custom per-connection handler — the
    /// seam for alternative wire protocols and for fault-injection
    /// tests (the panic-isolation regression drives a handler that
    /// panics on purpose).
    ///
    /// The contract the accept loop owes every handler: each connection
    /// runs on its own scoped worker; a handler returning `Err` counts
    /// one [`NetStats::io_errors`]; a handler that **panics** is caught,
    /// counted the same way, and its connection slot is released — the
    /// server keeps accepting either way.
    ///
    /// # Errors
    ///
    /// Exactly as [`EvalServer::serve`]: only listener-level errors.
    pub fn serve_with<H>(
        &self,
        service: &EvalService<'_>,
        handler: H,
    ) -> std::io::Result<NetStats>
    where
        H: Fn(&EvalService<'_>, &TcpStream, &PipelineOptions) -> std::io::Result<super::PipelineStats>
            + Sync,
    {
        let cap = self.options.max_connections.max(1);
        let pipeline = self.options.pipeline;
        let handler = &handler;
        let active = AtomicUsize::new(0);
        let connections = AtomicU64::new(0);
        let lines = AtomicU64::new(0);
        let requests = AtomicU64::new(0);
        let parse_errors = AtomicU64::new(0);
        let responses = AtomicU64::new(0);
        let io_errors = AtomicU64::new(0);
        let mut accept_error: Option<std::io::Error> = None;

        std::thread::scope(|scope| {
            while !self.stop.load(Ordering::Acquire) {
                if active.load(Ordering::Acquire) >= cap {
                    // At the cap: let in-flight connections drain before
                    // accepting more (backpressure via the OS backlog).
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                let stream = match self.listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        accept_error = Some(e);
                        break;
                    }
                };
                connections.fetch_add(1, Ordering::Relaxed);
                self.accepted.fetch_add(1, Ordering::Release);
                active.fetch_add(1, Ordering::AcqRel);
                let active = &active;
                let lines = &lines;
                let requests = &requests;
                let parse_errors = &parse_errors;
                let responses = &responses;
                let io_errors = &io_errors;
                scope.spawn(move || {
                    // The slot is released by a drop guard, not a
                    // trailing statement: a panicking handler would
                    // otherwise leak its slot forever (and, unwinding
                    // out of the thread scope, tear the whole server
                    // down with it).
                    struct SlotGuard<'a>(&'a AtomicUsize);
                    impl Drop for SlotGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                    let _slot = SlotGuard(active);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || handler(service, &stream, &pipeline),
                    ));
                    let _ = stream.shutdown(Shutdown::Both);
                    match outcome {
                        Ok(Ok(stats)) => {
                            lines.fetch_add(stats.lines, Ordering::Relaxed);
                            requests.fetch_add(stats.requests, Ordering::Relaxed);
                            parse_errors.fetch_add(stats.parse_errors, Ordering::Relaxed);
                            responses.fetch_add(stats.responses, Ordering::Relaxed);
                        }
                        Ok(Err(e)) => {
                            // Isolation: this connection's failure stays
                            // its own; the server keeps serving.
                            io_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("warning: connection failed: {e}");
                        }
                        Err(panic) => {
                            // A worker panic is a connection failure,
                            // never a server failure: count it, release
                            // the slot (the guard), keep accepting.
                            io_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "warning: connection worker panicked: {}",
                                panic_message(panic.as_ref())
                            );
                        }
                    }
                });
            }
            // Leaving the scope joins every connection worker: graceful
            // drain of all in-flight streams.
        });

        match accept_error {
            Some(e) => Err(e),
            None => Ok(NetStats {
                connections: connections.into_inner(),
                lines: lines.into_inner(),
                requests: requests.into_inner(),
                parse_errors: parse_errors.into_inner(),
                responses: responses.into_inner(),
                io_errors: io_errors.into_inner(),
            }),
        }
    }
}

/// Renders a caught panic payload for the warning log (panics carry
/// `&str` or `String` payloads from `panic!`; anything else is opaque).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Drives one accepted connection through the staged pipeline: requests
/// in, responses out, on the same socket.
fn serve_connection(
    service: &EvalService<'_>,
    stream: &TcpStream,
    pipeline: &PipelineOptions,
) -> std::io::Result<super::PipelineStats> {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; the pipeline wants plain blocking reads.
    stream.set_nonblocking(false)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let stats = service.serve_pipelined(reader, &mut writer, pipeline)?;
    writer.flush()?;
    // Half-close tells well-behaved clients the response stream is done
    // even if they keep their write side open.
    let _ = stream.shutdown(Shutdown::Write);
    Ok(stats)
}

/// Client-side convenience: sends a JSON-lines request stream over one
/// TCP connection and returns the full response stream. Used by the
/// bench/client tooling; servers never call this.
///
/// # Errors
///
/// Returns any connect/write/read error.
pub fn exchange(addr: impl ToSocketAddrs, wire: &str) -> std::io::Result<String> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(wire.as_bytes())?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_options_clamp_and_build() {
        let options = NetOptions::new()
            .max_connections(0)
            .pipeline(PipelineOptions::new().depth(3).chunk(5));
        assert_eq!(options.max_connections, 0, "stored raw, clamped at use");
        assert_eq!(options.pipeline.depth, 3);
        assert_eq!(options.pipeline.chunk, 5);
        assert_eq!(NetOptions::default().max_connections, 8);
    }

    #[test]
    fn listen_resolves_ephemeral_ports_and_shutdown_is_idempotent() {
        let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        let handle = server.handle();
        handle.shutdown();
        handle.shutdown();
        assert!(server.stop.load(Ordering::Acquire));
    }
}
