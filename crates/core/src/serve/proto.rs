//! Wire protocol v2: keep-alive, multiplexed framing for the TCP tier.
//!
//! Protocol v1 (the original wire format of [`super::net`]) is one
//! EOF-delimited JSON-lines stream per connection: the client half-closes
//! its write side to say "done", so a connection can never be reused and
//! every request burst pays a fresh TCP handshake. Protocol v2 keeps the
//! connection alive and multiplexes any number of logical **streams**
//! over it with length-prefixed frames.
//!
//! # Frame layout
//!
//! Every frame is a 9-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       1     kind      (1 = REQ, 2 = RESP, 3 = ERR, 4 = BYE)
//! 1       4     stream id (u32, little-endian)
//! 5       4     payload length (u32, little-endian, ≤ 1 MiB)
//! 9       len   payload bytes
//! ```
//!
//! * `REQ` (client → server): one request line for stream `id` — the
//!   same JSON object a v1 line carries, without the trailing newline.
//! * `RESP` (server → client): one response **line** (JSON + `\n`) for
//!   stream `id`. Concatenating a stream's `RESP` payloads in arrival
//!   order reproduces, byte for byte, the v1 response stream for the
//!   same request lines — that is the v2 determinism contract.
//! * `ERR` (server → client): a fatal protocol error (truncated frame,
//!   oversized length, unknown kind). Emitted **after** the responses
//!   to every frame that preceded the bad one, then the server closes
//!   the connection. Malformed *JSON* is not a protocol error — it gets
//!   an in-order parse-error `RESP` exactly like v1.
//! * `BYE` (client → server): clean end of session; the server flushes
//!   pending responses and closes.
//!
//! # Negotiation
//!
//! A v2 client opens the conversation with the 8-byte preamble
//! [`V2_PREAMBLE`] (`\0CTPv2\r\n`). The leading NUL byte can never
//! begin a v1 stream (v1 lines are JSON text), so the server reads
//! byte-at-a-time while the input matches the preamble: on a full match
//! it answers with [`V2_ACK`] and speaks frames; on the first mismatch
//! it replays the consumed bytes in front of the socket and serves the
//! connection as v1. v1 clients and the entire existing test surface
//! are untouched.
//!
//! # Ordering
//!
//! The server reads frames in bursts (everything already buffered, up
//! to the pipeline chunk size), evaluates a burst as one batch — so
//! requests complete internally in any order, on all cores — and then
//! answers **in frame-arrival order**, which preserves per-stream
//! order. A burst is answered before the next blocking read, so a
//! request/response client that sends one frame and waits never
//! deadlocks.
//!
//! # Examples
//!
//! Multiplex two streams over one keep-alive connection and verify each
//! against the offline pipeline:
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::net::{EvalServer, NetOptions};
//! use countertrust::serve::proto::exchange_v2;
//! use countertrust::serve::{EvalService, PipelineOptions};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let service = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let line = "{\"machine\":\"Ivy Bridge (Xeon E3-1265L)\",\"workload\":\"demo\",\"method\":\"classic\",\"runs\":1,\"seed\":7}\n";
//! let streams = [line.to_string(), line.to_string()];
//!
//! let server = EvalServer::listen("127.0.0.1:0", NetOptions::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let replies = std::thread::scope(|scope| {
//!     let serving = scope.spawn(|| server.serve(&service));
//!     let replies = exchange_v2(addr, &streams).unwrap();
//!     handle.shutdown();
//!     serving.join().unwrap().unwrap();
//!     replies
//! });
//!
//! let offline = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast());
//! let mut expected = Vec::new();
//! offline
//!     .serve_pipelined(line.as_bytes(), &mut expected, &PipelineOptions::default())
//!     .unwrap();
//! assert_eq!(replies[0].as_bytes(), expected.as_slice());
//! assert_eq!(replies[1].as_bytes(), expected.as_slice());
//! ```

use super::{EvalRequest, EvalResponse, EvalService, PipelineOptions, PipelineStats};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Client hello: the 8 bytes a v2 client writes before anything else.
/// Starts with NUL, which no v1 JSON-lines stream can begin with.
pub const V2_PREAMBLE: [u8; 8] = *b"\0CTPv2\r\n";

/// Server acknowledgement: the 8 bytes a server answers the preamble
/// with before the first frame.
pub const V2_ACK: [u8; 8] = *b"\0CTPv2OK";

/// Hard cap on a single frame's payload. A request line is a small JSON
/// object and a response line is bounded by the measurement shape, so
/// anything near this is a corrupt or hostile length field.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Bytes in a frame header: kind (1) + stream id (4) + payload len (4).
pub const FRAME_HEADER_LEN: usize = 9;

/// Frame discriminator — the first header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: one request line for a stream.
    Req = 1,
    /// Server → client: one response line for a stream.
    Resp = 2,
    /// Server → client: fatal protocol error; connection closes after.
    Err = 3,
    /// Client → server: clean end of session.
    Bye = 4,
}

impl FrameKind {
    /// Decodes a header byte; `None` for unknown discriminators.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Self::Req),
            2 => Some(Self::Resp),
            3 => Some(Self::Err),
            4 => Some(Self::Bye),
            _ => None,
        }
    }
}

/// One decoded v2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Logical stream the frame belongs to (0 for session-level `ERR`).
    pub stream: u32,
    /// Raw payload bytes (request line, response line, or error text).
    pub payload: Vec<u8>,
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Transport-level failure (connection reset, timeout, ...).
    Io(io::Error),
    /// The stream ended inside a header or payload.
    Truncated,
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized(len) => {
                write!(f, "oversized frame payload ({len} > {MAX_FRAME_PAYLOAD} bytes)")
            }
            Self::BadKind(b) => write!(f, "unknown frame kind {b:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame into `writer` (header + payload, no flush).
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds [`MAX_FRAME_PAYLOAD`];
/// otherwise any transport write error.
pub fn write_frame<W: Write>(
    writer: &mut W,
    kind: FrameKind,
    stream: u32,
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload too large: {} bytes", payload.len()),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&stream.to_le_bytes());
    #[allow(clippy::cast_possible_truncation)]
    let len = payload.len() as u32;
    header[5..9].copy_from_slice(&len.to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)
}

/// Decodes the next frame from `reader`. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF anywhere else is [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError`] for transport failures and malformed frames.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let kind = FrameKind::from_byte(header[0]).ok_or(FrameError::BadKind(header[0]))?;
    let stream = u32::from_le_bytes(header[1..5].try_into().expect("4 header bytes"));
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 header bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    match reader.read_exact(&mut payload) {
        Ok(()) => Ok(Some(Frame {
            kind,
            stream,
            payload,
        })),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// What [`negotiate_server`] decided a fresh connection speaks.
pub(crate) enum Negotiated {
    /// No (complete) preamble: serve as v1, replaying `consumed` in
    /// front of whatever is still in the socket.
    V1 { consumed: Vec<u8> },
    /// Full preamble seen: speak frames (the ack is not yet sent).
    V2,
}

/// Sniffs the first bytes of an accepted connection: reads while they
/// match [`V2_PREAMBLE`], stopping at the first divergence or at EOF.
pub(crate) fn negotiate_server(stream: &TcpStream) -> io::Result<Negotiated> {
    let mut consumed = Vec::with_capacity(V2_PREAMBLE.len());
    let mut reader = stream;
    while consumed.len() < V2_PREAMBLE.len() {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Ok(Negotiated::V1 { consumed }),
            Ok(_) => {
                consumed.push(byte[0]);
                if byte[0] != V2_PREAMBLE[consumed.len() - 1] {
                    return Ok(Negotiated::V1 { consumed });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Negotiated::V2)
}

/// How one accepted v2 request frame lands in the response sequence.
enum V2Item {
    /// A parsed request; answered by the batch response at its index.
    Request { stream: u32 },
    /// A line that failed to parse; answered with an in-order error
    /// response, exactly like the v1 pipeline.
    Bad { stream: u32, error: String },
    /// A blank line: consumes a line number, produces no response.
    Blank,
}

/// Serves an accepted connection that completed v2 negotiation: acks
/// the preamble, then answers framed request bursts until `BYE`, EOF or
/// a protocol error. Counters mirror the v1 pipeline's
/// [`PipelineStats`] so [`super::net::NetStats`] aggregates both
/// protocols uniformly.
pub(crate) fn serve_v2(
    service: &EvalService,
    stream: &TcpStream,
    options: &PipelineOptions,
) -> io::Result<PipelineStats> {
    let mut ack_writer = stream;
    ack_writer.write_all(&V2_ACK)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    let chunk_size = options.chunk.max(1);
    let mut stats = PipelineStats::default();
    // Reused across bursts: one JSON serialization buffer and one frame
    // accumulation buffer, so the steady-state emit path allocates
    // nothing and a burst of small RESP frames leaves in a single
    // socket write instead of two per frame.
    let mut json = String::new();
    let mut burst_out: Vec<u8> = Vec::new();
    // Per-stream line numbers, so a malformed payload is reported as
    // "parse error on line N" with N counting that stream's lines —
    // byte-identical to the same lines arriving over their own v1
    // connection.
    let mut line_numbers: HashMap<u32, u64> = HashMap::new();
    let mut session_done = false;
    let mut protocol_error: Option<FrameError> = None;

    while !session_done && protocol_error.is_none() {
        // Collect one burst: block for the first frame, then greedily
        // drain whatever the client already sent (bounded by the
        // pipeline chunk size) so independent requests evaluate as one
        // parallel batch.
        let mut burst: Vec<Frame> = Vec::new();
        loop {
            match read_frame(&mut reader) {
                Ok(None) => {
                    session_done = true;
                    break;
                }
                Ok(Some(frame)) => match frame.kind {
                    FrameKind::Req => {
                        burst.push(frame);
                        if burst.len() >= chunk_size || reader.buffer().is_empty() {
                            // Burst full, or nothing already buffered:
                            // answer what we have before blocking again
                            // (request/response clients wait on it).
                            break;
                        }
                    }
                    FrameKind::Bye => {
                        session_done = true;
                        break;
                    }
                    FrameKind::Resp | FrameKind::Err => {
                        protocol_error = Some(FrameError::BadKind(frame.kind as u8));
                        break;
                    }
                },
                Err(e) => {
                    protocol_error = Some(e);
                    break;
                }
            }
        }

        // Turn the burst into one batch, preserving frame-arrival order.
        let parsed_at = options.record_latency.then(Instant::now);
        let mut layout: Vec<V2Item> = Vec::with_capacity(burst.len());
        let mut requests: Vec<EvalRequest> = Vec::new();
        for frame in &burst {
            let line_no = line_numbers.entry(frame.stream).or_insert(0);
            *line_no += 1;
            let line = match std::str::from_utf8(&frame.payload) {
                Ok(text) => text,
                Err(e) => {
                    layout.push(V2Item::Bad {
                        stream: frame.stream,
                        error: format!("parse error on line {line_no}: invalid UTF-8: {e}"),
                    });
                    continue;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                layout.push(V2Item::Blank);
                continue;
            }
            match serde_json::from_str::<EvalRequest>(trimmed) {
                Ok(request) => {
                    layout.push(V2Item::Request {
                        stream: frame.stream,
                    });
                    requests.push(request);
                }
                Err(e) => layout.push(V2Item::Bad {
                    stream: frame.stream,
                    error: format!("parse error on line {line_no}: {e}"),
                }),
            }
        }

        if !layout.is_empty() {
            stats.chunks += 1;
            let mut batch = service.plan_batch(requests, parsed_at, options.fairness);
            service.attach_batch(&mut batch);
            let mut responses = service.evaluate_batch(batch).into_iter();
            burst_out.clear();
            for item in layout {
                stats.lines += 1;
                let (stream_id, response) = match item {
                    V2Item::Request { stream } => {
                        stats.requests += 1;
                        (stream, responses.next().expect("one response per request"))
                    }
                    V2Item::Bad { stream, error } => {
                        stats.parse_errors += 1;
                        service.errors.fetch_add(1, Ordering::Relaxed);
                        (stream, EvalResponse::parse_err(error))
                    }
                    V2Item::Blank => continue,
                };
                json.clear();
                serde_json::to_string_into(&response, &mut json)
                    .expect("responses always serialize");
                json.push('\n');
                write_frame(&mut burst_out, FrameKind::Resp, stream_id, json.as_bytes())?;
                stats.responses += 1;
            }
            // The whole burst — same frame bytes in the same order —
            // leaves in one write.
            writer.write_all(&burst_out)?;
            writer.flush()?;
        }
    }

    if let Some(e) = protocol_error {
        // The responses to everything before the bad frame are already
        // out (in order); now name the failure and hang up.
        stats.parse_errors += 1;
        service.errors.fetch_add(1, Ordering::Relaxed);
        let message = format!("protocol error: {e}");
        write_frame(&mut writer, FrameKind::Err, 0, message.as_bytes())?;
        writer.flush()?;
    }
    Ok(stats)
}

/// A keep-alive protocol v2 client connection.
///
/// Connect once, then interleave [`V2Client::send_line`] /
/// [`V2Client::recv`] freely: requests on any number of logical streams
/// share the socket, and each stream's responses arrive in its own
/// order. Drop the client (or call [`V2Client::bye`]) to end the
/// session.
pub struct V2Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl V2Client {
    /// Connects, sends the [`V2_PREAMBLE`] and verifies the server's
    /// [`V2_ACK`].
    ///
    /// # Errors
    ///
    /// Any connect/handshake I/O error; `InvalidData` when the peer is
    /// not a v2 server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let mut half = &stream;
        half.write_all(&V2_PREAMBLE)?;
        let mut ack = [0u8; 8];
        half.read_exact(&mut ack)?;
        if ack != V2_ACK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server did not acknowledge protocol v2",
            ));
        }
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Applies one read/write timeout to the underlying socket (`None`
    /// blocks forever — the default).
    ///
    /// # Errors
    ///
    /// The socket configuration error, if any.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Queues one request line on logical stream `stream` (any trailing
    /// newline is left off the wire; the server treats the payload as
    /// one line either way). Call [`V2Client::flush`] to push queued
    /// frames out.
    ///
    /// # Errors
    ///
    /// Any transport write error.
    pub fn send_line(&mut self, stream: u32, line: &str) -> io::Result<()> {
        let line = line.strip_suffix('\n').unwrap_or(line);
        write_frame(&mut self.writer, FrameKind::Req, stream, line.as_bytes())
    }

    /// Flushes queued request frames to the socket.
    ///
    /// # Errors
    ///
    /// Any transport write error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receives the next response: `Some((stream, response_line))`, or
    /// `None` once the server closed the session.
    ///
    /// # Errors
    ///
    /// Transport errors, malformed frames, and server `ERR` frames (as
    /// `InvalidData` carrying the server's message).
    pub fn recv(&mut self) -> io::Result<Option<(u32, String)>> {
        match read_frame(&mut self.reader) {
            Ok(None) => Ok(None),
            Ok(Some(frame)) => match frame.kind {
                FrameKind::Resp => {
                    let text = String::from_utf8(frame.payload).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    Ok(Some((frame.stream, text)))
                }
                FrameKind::Err => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "server protocol error: {}",
                        String::from_utf8_lossy(&frame.payload)
                    ),
                )),
                FrameKind::Req | FrameKind::Bye => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected client-direction frame from server",
                )),
            },
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Ends the session cleanly: sends `BYE` and flushes. The server
    /// flushes any pending responses and closes.
    ///
    /// # Errors
    ///
    /// Any transport write error.
    pub fn bye(mut self) -> io::Result<()> {
        write_frame(&mut self.writer, FrameKind::Bye, 0, &[])?;
        self.writer.flush()
    }
}

/// Client-side convenience mirroring [`super::net::exchange`] for v2:
/// multiplexes `streams` (each one v1-format JSON-lines text) over a
/// single keep-alive connection, interleaving their lines round-robin,
/// and returns each stream's concatenated response text — byte-identical
/// to sending that stream over its own v1 connection.
///
/// Requests are written from a helper thread while responses drain on
/// the calling thread, so arbitrarily large streams cannot deadlock on
/// full TCP buffers. Socket timeouts default to
/// [`super::net::DEFAULT_EXCHANGE_TIMEOUT`]; see [`exchange_v2_with`].
///
/// # Errors
///
/// Any connect/handshake/frame error, or the server's `ERR` frame.
pub fn exchange_v2(addr: impl ToSocketAddrs, streams: &[String]) -> io::Result<Vec<String>> {
    exchange_v2_with(addr, streams, Some(super::net::DEFAULT_EXCHANGE_TIMEOUT))
}

/// Request-writer coalescing threshold: at every round-robin round
/// boundary, [`send_streams`] ships the accumulated frames once they
/// exceed this many bytes. Small exchanges still leave as one write;
/// large ones leave in bounded installments, so a slowly-draining
/// server sees steady progress instead of one giant flush racing the
/// socket write timeout at `BYE`.
const SEND_COALESCE_BYTES: usize = 16 * 1024;

/// Writes every stream's lines round-robin as `REQ` frames followed by
/// one `BYE`, accumulating frames in a reusable buffer and shipping it
/// at round boundaries once it passes `coalesce` bytes (and always at
/// the end). The byte sequence on the wire is identical for every
/// `coalesce` value — only the write granularity changes.
fn send_streams<W: Write>(
    writer: &mut W,
    streams: &[String],
    coalesce: usize,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    let mut cursors: Vec<std::str::Lines<'_>> = streams.iter().map(|s| s.lines()).collect();
    // Round-robin across streams: one line from each stream per turn —
    // genuine interleaving on the wire.
    let mut remaining = cursors.len();
    while remaining > 0 {
        remaining = 0;
        for (id, cursor) in cursors.iter_mut().enumerate() {
            if let Some(line) = cursor.next() {
                #[allow(clippy::cast_possible_truncation)]
                write_frame(&mut buf, FrameKind::Req, id as u32, line.as_bytes())?;
                remaining += 1;
            }
        }
        if buf.len() >= coalesce {
            writer.write_all(&buf)?;
            writer.flush()?;
            buf.clear();
        }
    }
    write_frame(&mut buf, FrameKind::Bye, 0, &[])?;
    writer.write_all(&buf)?;
    writer.flush()
}

/// [`exchange_v2`] with an explicit socket timeout (`None` waits
/// forever).
///
/// # Errors
///
/// As [`exchange_v2`]; a timeout surfaces as the platform's
/// `WouldBlock`/`TimedOut` error.
pub fn exchange_v2_with(
    addr: impl ToSocketAddrs,
    streams: &[String],
    timeout: Option<Duration>,
) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut half = &stream;
    half.write_all(&V2_PREAMBLE)?;
    let mut ack = [0u8; 8];
    half.read_exact(&mut ack)?;
    if ack != V2_ACK {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "server did not acknowledge protocol v2",
        ));
    }

    // Expected responses per stream: one per non-blank line (blank
    // lines consume a line number but are never answered — v1 rules).
    let expected: usize = streams
        .iter()
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .sum();

    let write_half = stream.try_clone()?;
    let mut buffers: Vec<String> = vec![String::new(); streams.len()];
    std::thread::scope(|scope| -> io::Result<()> {
        let sender = scope.spawn(move || -> io::Result<()> {
            let mut writer = write_half;
            send_streams(&mut writer, streams, SEND_COALESCE_BYTES)
        });

        let mut reader = BufReader::new(&stream);
        let mut received = 0usize;
        while received < expected {
            match read_frame(&mut reader) {
                Ok(None) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("server closed after {received}/{expected} responses"),
                    ))
                }
                Ok(Some(frame)) => match frame.kind {
                    FrameKind::Resp => {
                        let id = frame.stream as usize;
                        if id >= buffers.len() {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("response for unknown stream {id}"),
                            ));
                        }
                        let text = std::str::from_utf8(&frame.payload).map_err(|e| {
                            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                        })?;
                        buffers[id].push_str(text);
                        received += 1;
                    }
                    FrameKind::Err => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "server protocol error: {}",
                                String::from_utf8_lossy(&frame.payload)
                            ),
                        ))
                    }
                    FrameKind::Req | FrameKind::Bye => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected client-direction frame from server",
                        ))
                    }
                },
                Err(FrameError::Io(e)) => return Err(e),
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                }
            }
        }
        sender.join().expect("sender thread never panics")
    })?;
    Ok(buffers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_all_kinds() {
        for kind in [FrameKind::Req, FrameKind::Resp, FrameKind::Err, FrameKind::Bye] {
            let payload = b"{\"x\":1}".to_vec();
            let mut wire = Vec::new();
            write_frame(&mut wire, kind, 0xDEAD_BEEF, &payload).unwrap();
            assert_eq!(wire.len(), FRAME_HEADER_LEN + payload.len());
            let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.stream, 0xDEAD_BEEF);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn empty_payload_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Bye, 0, &[]).unwrap();
        let mut cursor = wire.as_slice();
        let frame = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Bye);
        assert!(frame.payload.is_empty());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "EOF at boundary");
    }

    #[test]
    fn truncated_header_and_payload_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Req, 3, b"hello").unwrap();
        for cut in 1..wire.len() {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_and_bad_kind_are_rejected_without_reading_payload() {
        let mut wire = [0u8; FRAME_HEADER_LEN];
        wire[0] = FrameKind::Req as u8;
        wire[5..9].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::Oversized(_)
        ));
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Req, 0, b"x").unwrap();
        wire[0] = 0x7F;
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::BadKind(0x7F)
        ));
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        let payload = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        let err = write_frame(&mut Vec::new(), FrameKind::Req, 0, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn preamble_never_collides_with_v1_json() {
        assert_eq!(V2_PREAMBLE[0], 0, "v1 streams are JSON text, never NUL-led");
        assert_eq!(V2_PREAMBLE.len(), 8);
        assert_eq!(V2_ACK.len(), 8);
        assert_ne!(V2_PREAMBLE, V2_ACK);
    }

    /// Records every `write`/`flush` the sender issues, so tests can pin
    /// the coalescing cadence.
    struct RecordingWriter {
        writes: Vec<usize>,
        flushes: usize,
        bytes: Vec<u8>,
    }

    impl RecordingWriter {
        fn new() -> Self {
            Self {
                writes: Vec::new(),
                flushes: 0,
                bytes: Vec::new(),
            }
        }
    }

    impl Write for RecordingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes.push(buf.len());
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn sender_coalesces_at_round_boundaries() {
        // 3 streams × 40 lines of ~64 bytes: each round accumulates
        // ~220 bytes of frames, so a 1 KiB threshold ships roughly
        // every 5 rounds instead of once at BYE.
        let line = "x".repeat(64);
        let streams: Vec<String> = (0..3)
            .map(|_| format!("{}\n", vec![line.clone(); 40].join("\n")))
            .collect();
        let mut recorder = RecordingWriter::new();
        send_streams(&mut recorder, &streams, 1024).unwrap();
        assert!(
            recorder.writes.len() > 3,
            "a large exchange must leave in installments, got {} writes",
            recorder.writes.len()
        );
        assert_eq!(recorder.flushes, recorder.writes.len(), "one flush per installment");
        // Nothing stranded: every installment except the last already
        // passed the threshold when it shipped.
        for &w in &recorder.writes[..recorder.writes.len() - 1] {
            assert!(w >= 1024, "installment of {w} bytes shipped early");
        }
        // And the wire bytes are identical to a single-shot send.
        let mut single = RecordingWriter::new();
        send_streams(&mut single, &streams, usize::MAX).unwrap();
        assert_eq!(single.writes.len(), 1, "usize::MAX threshold means one write");
        assert_eq!(recorder.bytes, single.bytes, "coalescing never changes the bytes");
    }

    #[test]
    fn small_exchanges_still_leave_as_one_write() {
        let streams = vec!["{\"a\":1}\n".to_string(), "{\"b\":2}\n".to_string()];
        let mut recorder = RecordingWriter::new();
        send_streams(&mut recorder, &streams, SEND_COALESCE_BYTES).unwrap();
        assert_eq!(recorder.writes.len(), 1, "requests + BYE in one write");
        assert_eq!(recorder.flushes, 1);
    }

    #[test]
    fn never_reading_server_times_out_instead_of_hanging() {
        // A server that accepts and never reads: once the socket
        // buffers fill, the sender's bounded installments hit the write
        // timeout instead of blocking forever on one giant flush.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let hold = std::thread::spawn(move || {
            let (socket, _) = listener.accept().unwrap();
            // Keep the connection open, unread, until the client is done.
            let _ = done_rx.recv();
            drop(socket);
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_write_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        // ~8 MiB of frames: far beyond any default socket buffer.
        let big = format!("{}\n", vec!["y".repeat(1024); 8192].join("\n"));
        let streams = vec![big];
        let started = Instant::now();
        let err = send_streams(&mut stream, &streams, SEND_COALESCE_BYTES).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a write timeout, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "sender must fail fast, took {:?}",
            started.elapsed()
        );
        drop(stream);
        done_tx.send(()).unwrap();
        hold.join().unwrap();
    }
}
