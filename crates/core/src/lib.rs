//! `countertrust` — sampling-method accuracy evaluation.
//!
//! This crate is the reproduction of the paper's contribution:
//! *"Establishing a Base of Trust with Performance Counters for Enterprise
//! Workloads"* (Nowak, Yasin, Mendelson, Zwaenepoel — USENIX ATC 2015).
//! It evaluates how accurately Event-Based Sampling methods recover
//! per-basic-block instruction counts, cross-referencing each method
//! against exact instrumentation (`ct-instrument`, the Pin stand-in).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`methods`] — the method taxonomy of Table 3 (classic, precise,
//!   prime/randomized periods, PDIR + LBR IP+1 fix, full LBR);
//! * [`attrib`] — sample→basic-block attribution, including the LBR-based
//!   IP+1 offset correction of §6.2;
//! * [`lbrwalk`] — the LBR stack-walk reconstruction of §3.2 ("all basic
//!   blocks between `Ti` and `Si+1` are executed exactly once");
//! * [`metrics`] — the accuracy-error metric of §3.3;
//! * [`session`] — a perf-record-like driver wiring CPU + PMU + collectors;
//! * [`evaluate`] — the repeated-measurement harness behind Tables 1 and 2;
//! * [`grid`] — the parallel machine × workload × method evaluation
//!   engine, sharing one reference profile per (machine, workload) pair;
//! * [`cache`] — the bounded reference-profile cache ([`cache::PairParts`]
//!   + [`cache::ProfileCache`], with pluggable [`cache::AdmissionPolicy`])
//!   both the grid and serving layers build sessions from;
//! * [`serve`] — the evaluation service: ad-hoc [`serve::EvalRequest`]
//!   streams sharded by pair across a worker pool and satisfied through
//!   the cache, batched ([`serve::EvalService::serve`]) or as a staged
//!   intake pipeline ([`serve::EvalService::serve_pipelined`]), with
//!   byte-identical responses for any thread count;
//! * [`store`] — versioned, checksummed on-disk snapshots of
//!   [`cache::PairParts`] ([`store::SnapshotStore`]) so a restarted server
//!   warm-starts at full hit rate without re-running a single reference;
//! * [`report`] — table formatting and JSON export for the bench binaries.
//!
//! # Examples
//!
//! ```
//! use countertrust::{Session, methods::{MethodKind, MethodOptions}};
//! use ct_sim::MachineModel;
//! use ct_isa::asm::assemble;
//!
//! let program = assemble(
//!     "demo",
//!     r#"
//!     .func main
//!         movi r1, 20000
//!     top:
//!         addi r2, r2, 1
//!         subi r1, r1, 1
//!         brnz r1, top
//!         halt
//!     .endfunc
//!     "#,
//! )
//! .unwrap();
//! let machine = MachineModel::ivy_bridge();
//! let mut session = Session::new(&machine, &program);
//! let opts = MethodOptions::fast();
//! let run = session
//!     .run_method(&MethodKind::Lbr.instantiate(&machine, &opts).unwrap(), 1)
//!     .unwrap();
//! assert!(run.accuracy_error < 0.5);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod annotate;
pub mod attrib;
pub mod cache;
pub mod coverage;
pub mod diagnostics;
pub mod error;
pub mod evaluate;
pub mod grid;
pub mod lbrwalk;
pub mod methods;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod serve;
pub mod session;
pub mod store;
pub mod tripcount;

pub use cache::{AdmissionPolicy, CacheStats, PairKey, PairParts, ProfileCache};
pub use error::CoreError;
pub use evaluate::{evaluate_method, evaluate_method_with_seeds, ErrorStats, Evaluation};
pub use grid::{cell_seed, for_each_index, GridMethod, GridRunner, PairCtx, WorkloadSpec};
pub use methods::{Attribution, MethodInstance, MethodKind, MethodOptions};
pub use metrics::{accuracy_error, kendall_tau, top_n_exact_match};
pub use profile::EstimatedProfile;
pub use serve::{
    request_seed, EvalRequest, EvalResponse, EvalService, PipelineOptions, PipelineStats,
    ServeStats,
};
pub use session::{MethodRun, Session};
pub use store::{SnapshotReader, SnapshotStore, SnapshotWriter, StoreError};
