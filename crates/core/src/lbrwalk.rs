//! LBR stack-walk reconstruction of basic-block executions.
//!
//! §3.2: entries are source-target pairs `<Si, Ti>`; between a target `Ti`
//! and the next source `Si+1` no branch was taken, so every basic block in
//! `[Ti, Si+1]` executed exactly once. A full 16-entry stack therefore
//! witnesses 15 uninterrupted basic-block segments.

use ct_isa::{Addr, BlockId, Cfg};
use ct_pmu::LbrEntry;

/// One reconstructed straight-line segment: all blocks from the one
/// starting at `start` through the one ending at `end` (inclusive
/// instruction addresses) executed exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub start: Addr,
    pub end: Addr,
}

/// Extracts the straight-line segments witnessed by one frozen LBR stack
/// (entries oldest first, as produced by `LbrStack::snapshot`).
///
/// Segments with `target > next source` are discarded: they indicate the
/// stack does not describe consecutive control flow (e.g. the facility was
/// in call-stack mode, or entries were lost), exactly the corruption the
/// paper warns about when LBRs are shared with other collections.
#[must_use]
pub fn segments(lbr: &[LbrEntry]) -> Vec<Segment> {
    let mut out = Vec::with_capacity(lbr.len().saturating_sub(1));
    for pair in lbr.windows(2) {
        let t = pair[0].to;
        let s = pair[1].from;
        if t <= s {
            out.push(Segment { start: t, end: s });
        }
    }
    out
}

/// Credits `mass_per_insn` to every instruction of every block covered by
/// `seg`, accumulating into `bb_mass` (indexed by block id).
///
/// LBR targets are always block leaders (branch targets and return
/// addresses start blocks by construction), so segments cover whole
/// blocks.
pub fn credit_segment(seg: &Segment, cfg: &Cfg, mass_per_insn: f64, bb_mass: &mut [f64]) {
    let Some(first) = cfg.try_block_of(seg.start) else {
        return;
    };
    let Some(last) = cfg.try_block_of(seg.end) else {
        return;
    };
    let mut id: BlockId = first;
    loop {
        let b = cfg.block(id);
        // Clip to the segment (the first block may begin before `start` if
        // the target was mid-block — defensive; normally start == b.start).
        let lo = seg.start.max(b.start);
        let hi = (seg.end + 1).min(b.end);
        if hi > lo {
            bb_mass[id as usize] += f64::from(hi - lo) * mass_per_insn;
        }
        if id == last {
            break;
        }
        id += 1;
    }
}

/// Walks a whole stack: returns the per-sample instruction mass if the
/// stack yielded at least one valid segment.
///
/// `period` is the taken-branch sampling period; each captured stack
/// witnesses `segments` of the roughly `period` branch intervals between
/// PMIs, so every witnessed instruction carries `period / n_segments`
/// instructions of estimated mass (the estimator is mass-conserving in
/// expectation — see the property tests).
pub fn credit_stack(lbr: &[LbrEntry], cfg: &Cfg, period: u64, bb_mass: &mut [f64]) -> bool {
    let segs = segments(lbr);
    if segs.is_empty() {
        return false;
    }
    let mass = period as f64 / segs.len() as f64;
    for seg in &segs {
        credit_segment(seg, cfg, mass, bb_mass);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    fn entry(from: Addr, to: Addr) -> LbrEntry {
        LbrEntry { from, to }
    }

    #[test]
    fn segments_between_consecutive_entries() {
        // Branch at 5 -> 10; straight line 10..=20; branch at 20 -> 2;
        // straight line 2..=8; branch at 8 -> 30.
        let lbr = [entry(5, 10), entry(20, 2), entry(8, 30)];
        let segs = segments(&lbr);
        assert_eq!(
            segs,
            vec![Segment { start: 10, end: 20 }, Segment { start: 2, end: 8 }]
        );
    }

    #[test]
    fn inconsistent_pairs_are_dropped() {
        // Target 50 followed by a source at 10 cannot be straight-line.
        let lbr = [entry(5, 50), entry(10, 2), entry(2, 60)];
        let segs = segments(&lbr);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0], Segment { start: 2, end: 2 });
    }

    #[test]
    fn single_entry_yields_nothing() {
        assert!(segments(&[entry(1, 2)]).is_empty());
        assert!(segments(&[]).is_empty());
    }

    #[test]
    fn credit_covers_whole_blocks() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 3
            top:
                addi r2, r2, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let cfg = ct_isa::Cfg::build(&p);
        // Blocks: 0=[0,1), 1=[1,4), 2=[4,5).
        let mut mass = vec![0.0; cfg.num_blocks()];
        // Segment covering the loop body block exactly: target 1 .. source 3.
        credit_segment(&Segment { start: 1, end: 3 }, &cfg, 2.0, &mut mass);
        assert_eq!(mass, vec![0.0, 6.0, 0.0]);
    }

    #[test]
    fn credit_spans_multiple_blocks() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 3
            top:
                addi r2, r2, 1
                brz r3, skip
                addi r2, r2, 1
            skip:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let cfg = ct_isa::Cfg::build(&p);
        let n = cfg.num_blocks();
        let mut mass = vec![0.0; n];
        // One straight-line pass over the whole function 0..=6 (no branch
        // taken): every block gets its length.
        credit_segment(&Segment { start: 0, end: 6 }, &cfg, 1.0, &mut mass);
        let total: f64 = mass.iter().sum();
        assert_eq!(total, 7.0);
        for b in cfg.blocks() {
            assert_eq!(mass[b.id as usize], b.len() as f64, "block {}", b.id);
        }
    }

    #[test]
    fn credit_stack_scales_by_segment_count() {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 3
            top:
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let cfg = ct_isa::Cfg::build(&p);
        let mut mass = vec![0.0; cfg.num_blocks()];
        // Two self-loop entries -> one segment [1..=2].
        let lbr = [entry(2, 1), entry(2, 1)];
        assert!(credit_stack(&lbr, &cfg, 100, &mut mass));
        // Segment count 1 -> mass per insn = 100; block 1 has 2 insns.
        assert_eq!(mass[1], 200.0);
    }

    #[test]
    fn empty_stack_credits_nothing() {
        let p = assemble("t", ".func main\n halt\n.endfunc\n").unwrap();
        let cfg = ct_isa::Cfg::build(&p);
        let mut mass = vec![0.0; cfg.num_blocks()];
        assert!(!credit_stack(&[], &cfg, 100, &mut mass));
        assert_eq!(mass[0], 0.0);
    }
}
