//! Plain-text table rendering and JSON export for evaluation results.
//!
//! The bench binaries print tables shaped like the paper's Table 1/2;
//! this module owns the formatting so tests can golden-check it.

use crate::evaluate::Evaluation;
use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Self {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let line = |w: &[usize]| -> String {
            let mut s = String::from("+");
            for width in w {
                s.push_str(&"-".repeat(width + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{}", line(&widths));
        let mut head = String::from("|");
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(head, " {h:<w$} |");
        }
        let _ = writeln!(out, "{head}");
        let _ = writeln!(out, "{}", line(&widths));
        for row in &self.rows {
            let mut r = String::from("|");
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(r, " {c:<w$} |");
            }
            let _ = writeln!(out, "{r}");
        }
        let _ = writeln!(out, "{}", line(&widths));
        out
    }
}

/// Formats an accuracy error for table cells (percent of net instruction
/// count, the unit the paper reports).
#[must_use]
pub fn fmt_error(err: f64) -> String {
    format!("{:.1}%", err * 100.0)
}

/// Formats an error with its spread over repeats.
#[must_use]
pub fn fmt_error_pm(mean: f64, std_dev: f64) -> String {
    format!("{:.1}%±{:.1}", mean * 100.0, std_dev * 100.0)
}

/// Builds the per-workload evaluation table (one row per machine, one
/// column per method — the Table 1/2 layout).
#[must_use]
pub fn evaluation_table(workload: &str, evals: &[Evaluation], methods: &[&str]) -> Table {
    let mut header = vec!["machine".to_string()];
    header.extend(methods.iter().map(|s| (*s).to_string()));
    let mut t = Table::new(format!("workload: {workload}"), header);
    for e in evals.iter().filter(|e| e.workload == workload) {
        let mut row = vec![e.machine.clone()];
        for m in methods {
            let cell = e.methods.iter().find(|s| s.method == *m).map_or_else(
                || "n/a".to_string(),
                |s| fmt_error_pm(s.stats.mean, s.stats.std_dev),
            );
            row.push(cell);
        }
        t.push_row(row);
    }
    t
}

/// Serializes evaluations to pretty JSON (consumed by EXPERIMENTS.md
/// tooling and external analysis).
///
/// # Panics
///
/// Never panics in practice: the types serialize infallibly.
#[must_use]
pub fn to_json(evals: &[Evaluation]) -> String {
    serde_json::to_string_pretty(evals).expect("evaluation serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ErrorStats;
    use crate::metrics::Stats;

    fn eval(machine: &str, workload: &str, method: &str, mean: f64) -> Evaluation {
        Evaluation {
            machine: machine.into(),
            workload: workload.into(),
            methods: vec![ErrorStats {
                method: method.into(),
                stats: Stats::from_values(&[mean]),
                runs: vec![mean],
                mean_samples: 100.0,
                mean_skid: 1.0,
            }],
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", vec!["a".into(), "bb".into()]);
        t.push_row(vec!["x".into(), "yyyy".into()]);
        t.push_row(vec!["long".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("| x    | yyyy |"));
        assert!(s.contains("| long |      |"));
    }

    #[test]
    fn error_formatting() {
        assert_eq!(fmt_error(0.123), "12.3%");
        assert_eq!(fmt_error_pm(0.5, 0.01), "50.0%±1.0");
    }

    #[test]
    fn evaluation_table_fills_missing_with_na() {
        let evals = vec![eval("ivb", "k1", "classic", 0.4)];
        let t = evaluation_table("k1", &evals, &["classic", "lbr"]);
        let s = t.render();
        assert!(s.contains("40.0%"));
        assert!(s.contains("n/a"));
    }

    #[test]
    fn json_roundtrip() {
        let evals = vec![eval("wsm", "k", "lbr", 0.1)];
        let js = to_json(&evals);
        let back: Vec<Evaluation> = serde_json::from_str(&js).unwrap();
        assert_eq!(back[0].machine, "wsm");
        assert_eq!(back[0].methods[0].runs, vec![0.1]);
    }
}
