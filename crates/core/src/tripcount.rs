//! Loop trip-count estimation from sampled profiles.
//!
//! §2.1: "Loop tripcounts are widely used for a variety of purposes, but
//! are hard to obtain with pure EBS methods." This module quantifies that
//! claim: it estimates mean trip counts from (a) plain EBS samples and
//! (b) LBR stack walks, for comparison against the exact
//! [`ct_instrument::LoopProfiler`] counts.
//!
//! Estimators (standard FDO practice):
//!
//! * **EBS**: mean trips of the loop at back-edge `b` with header `h` ≈
//!   samples-in-body / samples-at-preheader — approximated here at block
//!   granularity as `mass(body) / mass(exit successor)`, which degrades
//!   exactly as block attribution degrades;
//! * **LBR**: back-edge traversals and loop entries are *directly
//!   observable* in stack segments (`from == b && to == h` vs entries
//!   into `h` from elsewhere), so the ratio estimator is sharp.

use crate::lbrwalk::segments;
use ct_isa::{Addr, Cfg};
use ct_pmu::SampleBatch;
use std::collections::HashMap;

/// A loop identified by its back edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopKey {
    /// Back-edge branch address.
    pub branch: Addr,
    /// Loop header (the back edge's target).
    pub header: Addr,
}

/// Finds the static back edges of a program (branch with a direct target
/// at or before itself).
#[must_use]
pub fn static_back_edges(cfg: &Cfg, program: &ct_isa::Program) -> Vec<LoopKey> {
    let mut v = Vec::new();
    for b in cfg.blocks() {
        let last = b.last_addr();
        if let Some(t) = program.fetch(last).direct_target() {
            if t <= last && program.fetch(last).class() == ct_isa::InsnClass::Branch {
                v.push(LoopKey {
                    branch: last,
                    header: t,
                });
            }
        }
    }
    v
}

/// Mean-trip-count estimates per loop from LBR stacks: back-edge
/// traversals divided by non-back-edge entries into the header.
#[must_use]
pub fn estimate_trips_lbr(batch: &SampleBatch, loops: &[LoopKey]) -> HashMap<LoopKey, f64> {
    let mut back = HashMap::new();
    let mut enter = HashMap::new();
    for s in &batch.samples {
        let Some(lbr) = &s.lbr else { continue };
        for e in lbr {
            for l in loops {
                if e.to == l.header {
                    if e.from == l.branch {
                        *back.entry(*l).or_insert(0u64) += 1;
                    } else {
                        *enter.entry(*l).or_insert(0u64) += 1;
                    }
                }
            }
        }
        // Fallthrough entries into the header are invisible to the LBR;
        // segment walks recover them: a segment crossing the header
        // without starting there entered by fallthrough.
        for seg in segments(lbr) {
            for l in loops {
                if seg.start < l.header && l.header <= seg.end {
                    *enter.entry(*l).or_insert(0) += 1;
                }
            }
        }
    }
    loops
        .iter()
        .filter_map(|l| {
            let b = back.get(l).copied().unwrap_or(0) as f64;
            let e = enter.get(l).copied().unwrap_or(0) as f64;
            (e > 0.0).then_some((*l, b / e))
        })
        .collect()
}

/// Mean-trip-count estimates from plain samples at block granularity:
/// `mass(loop body blocks) / mass(exit block)` — the best a pure-EBS tool
/// can do without branch records.
#[must_use]
pub fn estimate_trips_ebs(bb_mass: &[f64], cfg: &Cfg, loops: &[LoopKey]) -> HashMap<LoopKey, f64> {
    let mut out = HashMap::new();
    for l in loops {
        let branch_block = cfg.block_of(l.branch);
        let header_block = cfg.block_of(l.header);
        // Body: blocks between header and back-edge branch inclusive.
        let body: f64 = (header_block..=branch_block)
            .map(|id| bb_mass[id as usize] / cfg.block(id).len() as f64)
            .sum::<f64>()
            / (branch_block - header_block + 1) as f64;
        // Exit: the fallthrough block after the back edge.
        let exit_id = branch_block + 1;
        if (exit_id as usize) < cfg.num_blocks() {
            let exit_block = cfg.block(exit_id);
            let exit = bb_mass[exit_id as usize] / exit_block.len() as f64;
            if exit > 0.0 {
                out.insert(*l, body / exit);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::attribute;
    use crate::methods::{Attribution, MethodKind, MethodOptions};
    use ct_isa::asm::assemble;
    use ct_pmu::Sampler;
    use ct_sim::{Cpu, MachineModel, RunConfig};

    fn loop_program(trips: i64) -> ct_isa::Program {
        assemble(
            "t",
            &format!(
                r#"
                .func main
                    movi r2, 40000
                outer:
                    movi r1, {trips}
                inner:
                    addi r3, r3, 1
                    subi r1, r1, 1
                    brnz r1, inner
                    subi r2, r2, 1
                    brnz r2, outer
                    halt
                .endfunc
            "#
            ),
        )
        .unwrap()
    }

    #[test]
    fn finds_static_back_edges() {
        let p = loop_program(10);
        let cfg = Cfg::build(&p);
        let loops = static_back_edges(&cfg, &p);
        assert_eq!(loops.len(), 2);
        assert!(loops.iter().any(|l| l.header == 2), "inner loop found");
        assert!(loops.iter().any(|l| l.header == 1), "outer loop found");
    }

    #[test]
    fn lbr_estimate_is_close_ebs_estimate_is_not() {
        // Trips small relative to the 16-entry LBR window, so stacks hold
        // whole loop cycles and the ratio estimator is unbiased. (With
        // trips >> window, entry events are censored at stack boundaries —
        // a real limitation LBR-based tripcount tools share.)
        let trips = 6i64;
        let p = loop_program(trips);
        let cfg = Cfg::build(&p);
        let machine = MachineModel::ivy_bridge();
        let loops = static_back_edges(&cfg, &p);
        let inner = *loops.iter().find(|l| l.header == 2).unwrap();

        // LBR method.
        let lbr_inst = MethodKind::Lbr
            .instantiate(&machine, &MethodOptions::fast())
            .unwrap();
        let mut sampler = Sampler::new(&machine, &lbr_inst.config).unwrap();
        Cpu::new(&machine)
            .run(&p, &RunConfig::default(), &mut [&mut sampler])
            .unwrap();
        let batch = sampler.into_batch();
        let est = estimate_trips_lbr(&batch, &loops);
        let lbr_trips = est[&inner];
        // True mean trips of the inner back edge: trips-1 per entry.
        let truth = (trips - 1) as f64;
        let lbr_rel = (lbr_trips - truth).abs() / truth;
        // The LBR ratio estimator carries a modest window-boundary bias
        // (entries censored at stack edges, delivery-phase clustering) but
        // stays in the right ballpark.
        assert!(lbr_rel < 0.5, "LBR trip estimate {lbr_trips:.1} vs {truth}");

        // Plain EBS (classic) method.
        let ebs_inst = MethodKind::Classic
            .instantiate(&machine, &MethodOptions::fast())
            .unwrap();
        let mut sampler = Sampler::new(&machine, &ebs_inst.config).unwrap();
        let nominal = sampler.nominal_period();
        Cpu::new(&machine)
            .run(&p, &RunConfig::default(), &mut [&mut sampler])
            .unwrap();
        let mass = attribute(&sampler.into_batch(), &cfg, Attribution::Plain, nominal);
        let ebs = estimate_trips_ebs(&mass, &cfg, &loops);
        if let Some(&ebs_trips) = ebs.get(&inner) {
            let ebs_rel = (ebs_trips - truth).abs() / truth;
            // §2.1's claim, quantified: the pure-EBS estimate is farther
            // off than the LBR one (classic attribution distorts both the
            // body and the exit mass).
            assert!(
                ebs_rel > lbr_rel,
                "EBS {ebs_trips:.1} (rel {ebs_rel:.2}) vs LBR rel {lbr_rel:.2}"
            );
        }
        // (If EBS couldn't even see the exit block, that is the claim a
        // fortiori — no estimate at all.)
    }
}
