//! Error-factor decomposition: synchronization, skid and shadow.
//!
//! §3.1 (after Chen et al. and Levinthal) attributes sampling-distribution
//! error to three factors: (1) synchronization of the monitored code with
//! the sampling period, (2) skid between the overflow and the reported
//! address, and (3) the shadow of long-latency instructions. This module
//! measures each factor from a batch's simulation-only ground-truth
//! fields, giving the per-method diagnosis behind the Table 1/2 numbers.

use ct_isa::{Cfg, InsnClass, Program};
use ct_pmu::SampleBatch;
use serde::{Deserialize, Serialize};

/// Decomposed diagnosis of one sample batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Mean |reported − trigger| in retired instructions.
    pub mean_skid: f64,
    /// 95th-percentile skid.
    pub p95_skid: u64,
    /// Fraction of samples whose reported address landed in a different
    /// basic block than the trigger (the damage skid actually does to a
    /// block-level profile).
    pub cross_block_fraction: f64,
    /// Synchronization score in \[0,1\]: 1 − (distinct trigger phases /
    /// min(samples, phase space)) over the dominant loop. 0 means triggers
    /// rotate freely; 1 means every trigger hit the same phase (full
    /// resonance).
    pub synchronization: f64,
    /// Share of samples *reported* at long-latency instructions
    /// (div/fdiv/loads).
    pub reported_long_share: f64,
    /// Share of samples *triggered* at long-latency instructions.
    pub trigger_long_share: f64,
    /// Shadow excess: `reported_long_share - trigger_long_share`. Positive
    /// means long-latency instructions soak up samples beyond the share
    /// the counter actually assigned them — the §3.1 shadow effect.
    pub shadow_excess: f64,
    /// Number of samples diagnosed.
    pub samples: usize,
}

/// Computes the diagnosis of `batch` against `program`.
#[must_use]
pub fn diagnose(batch: &SampleBatch, program: &Program, cfg: &Cfg) -> Diagnosis {
    let n = batch.samples.len();
    if n == 0 {
        return Diagnosis {
            mean_skid: 0.0,
            p95_skid: 0,
            cross_block_fraction: 0.0,
            synchronization: 0.0,
            reported_long_share: 0.0,
            trigger_long_share: 0.0,
            shadow_excess: 0.0,
            samples: 0,
        };
    }
    let mut skids: Vec<u64> = batch
        .samples
        .iter()
        .map(|s| s.skid_instructions())
        .collect();
    skids.sort_unstable();
    let mean_skid = skids.iter().sum::<u64>() as f64 / n as f64;
    let p95_skid = skids[(n * 95 / 100).min(n - 1)];

    let cross = batch
        .samples
        .iter()
        .filter(|s| cfg.try_block_of(s.reported_ip) != cfg.try_block_of(s.trigger_ip))
        .count() as f64
        / n as f64;

    // Synchronization: how few distinct trigger addresses the batch has,
    // relative to how many it could have (bounded by the number of
    // distinct addresses that retire at all — approximated by program
    // length — and by the sample count).
    let distinct: std::collections::HashSet<u32> =
        batch.samples.iter().map(|s| s.trigger_ip).collect();
    let possible = n.min(program.len());
    let synchronization = if possible <= 1 {
        0.0
    } else {
        1.0 - (distinct.len() - 1) as f64 / (possible - 1) as f64
    };

    // Shadow bias: long-latency classes' share of reports vs triggers.
    let is_long = |addr: u32| {
        matches!(
            program.fetch(addr).class(),
            InsnClass::Div | InsnClass::FpDiv | InsnClass::Load
        )
    };
    let in_range = |addr: u32| (addr as usize) < program.len();
    let reported_long = batch
        .samples
        .iter()
        .filter(|s| in_range(s.reported_ip) && is_long(s.reported_ip))
        .count() as f64
        / n as f64;
    let trigger_long = batch
        .samples
        .iter()
        .filter(|s| in_range(s.trigger_ip) && is_long(s.trigger_ip))
        .count() as f64
        / n as f64;

    Diagnosis {
        mean_skid,
        p95_skid,
        cross_block_fraction: cross,
        synchronization,
        reported_long_share: reported_long,
        trigger_long_share: trigger_long,
        shadow_excess: reported_long - trigger_long,
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodKind, MethodOptions};
    use ct_pmu::Sampler;
    use ct_sim::{Cpu, MachineModel, RunConfig};

    fn diagnose_method(kind: MethodKind) -> Diagnosis {
        let program = ct_workloads::kernels::latency_biased(60_000);
        let cfg = Cfg::build(&program);
        let machine = MachineModel::ivy_bridge();
        let inst = kind.instantiate(&machine, &MethodOptions::fast()).unwrap();
        let mut sampler = Sampler::new(&machine, &inst.config).unwrap();
        Cpu::new(&machine)
            .run(&program, &RunConfig::default(), &mut [&mut sampler])
            .unwrap();
        diagnose(&sampler.into_batch(), &program, &cfg)
    }

    #[test]
    fn classic_shows_skid_and_shadow() {
        let d = diagnose_method(MethodKind::Classic);
        assert!(d.samples > 50);
        assert!(d.mean_skid > 20.0, "classic skid {}", d.mean_skid);
        assert!(d.cross_block_fraction > 0.3, "skid crosses blocks");
        // Shadow: the div soaks up reported samples far beyond the share
        // the counter actually assigned it.
        assert!(
            d.shadow_excess > 0.1,
            "long-latency soak expected, got excess {} (reported {} vs trigger {})",
            d.shadow_excess,
            d.reported_long_share,
            d.trigger_long_share
        );
        // Precise mechanisms do not exhibit the soak.
        let p = diagnose_method(MethodKind::PrecisePrime);
        assert!(p.shadow_excess.abs() < d.shadow_excess);
    }

    #[test]
    fn pdir_shows_resonance_instead() {
        // PDIR with a round period: skid is one instruction, but the
        // trigger phase locks (synchronization ≈ 1).
        let d = diagnose_method(MethodKind::Precise);
        assert!(d.mean_skid <= 3.0);
        assert!(
            d.synchronization > 0.9,
            "round period should resonate, got {}",
            d.synchronization
        );
        // And the prime period releases it.
        let dp = diagnose_method(MethodKind::PrecisePrime);
        assert!(
            dp.synchronization < 0.7,
            "prime period should rotate phases, got {}",
            dp.synchronization
        );
    }

    #[test]
    fn empty_batch_is_all_zeros() {
        let program = ct_workloads::kernels::g4box(100);
        let cfg = Cfg::build(&program);
        let d = diagnose(&SampleBatch::default(), &program, &cfg);
        assert_eq!(d.samples, 0);
        assert_eq!(d.mean_skid, 0.0);
    }
}
