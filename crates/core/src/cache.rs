//! The sharded reference-profile cache behind the serving layer.
//!
//! Building a pair's evaluation state — its CFG and, above all, its
//! instrumented [`ReferenceProfile`] — is the most expensive step of any
//! evaluation (one full extra execution of the workload). The grid engine
//! ([`crate::grid`]) amortizes it across a *static* grid; this module
//! amortizes it across *arbitrary request traffic*:
//!
//! * [`PairParts`] bundles the shareable per-pair state (CFG + reference)
//!   and is the one place sessions over a pair are constructed from —
//!   both [`crate::grid::PairCtx`] and the serving layer
//!   ([`crate::serve`]) go through it;
//! * [`ProfileCache`] is an LRU-bounded, thread-safe map from
//!   catalog-namespaced `(machine, workload)` pair keys ([`PairKey`]) to
//!   [`PairParts`], so a profile is built at most once per pair per cache
//!   residency — and every tenant of a multi-catalog service shares one
//!   cache (and one admission policy) without key collisions;
//! * [`AdmissionPolicy`] decides whether a freshly built pair may *enter*
//!   a full cache at all: plain LRU admits everything, while the
//!   frequency-aware variant rejects one-hit wonders so cold or zipfian
//!   request streams cannot thrash the hot working set out of a small
//!   cache.
//!
//! Cache contents are pure functions of the pair, so eviction, rebuild
//! and admission change *when* work happens, never *what* a response
//! contains — the determinism contract of the grid engine extends to any
//! cache capacity and any admission policy.

use crate::error::CoreError;
use crate::session::Session;
use ct_instrument::ReferenceProfile;
use ct_isa::{Cfg, Program};
use ct_sim::{MachineModel, RunConfig};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: a `(machine, workload)` pair *namespaced by its catalog*.
///
/// The serving layer resolves requests through a
/// [`crate::serve::CatalogRegistry`] holding several named catalogs, and
/// every tenant shares one [`ProfileCache`]. Two catalogs may bind the
/// same `(machine, workload)` indices to entirely different programs, so
/// the catalog index is part of the key — without it, tenant B would be
/// handed tenant A's reference profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// Index of the catalog in the owning registry (`0` for a
    /// single-catalog service).
    pub catalog: usize,
    /// Index of the machine in its catalog.
    pub machine: usize,
    /// Index of the workload in its catalog.
    pub workload: usize,
}

impl PairKey {
    /// A key for the `(machine, workload)` pair of one catalog.
    #[must_use]
    pub fn new(catalog: usize, machine: usize, workload: usize) -> Self {
        Self {
            catalog,
            machine,
            workload,
        }
    }
}

/// How a [`ProfileCache`] decides whether a freshly built entry may enter
/// a full cache.
///
/// Admission is a *residency* knob, never a correctness knob: a rejected
/// build is still returned to its caller, so responses are identical
/// under every policy — only build counts differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit every successful build, evicting the least recently used
    /// entry to make room (classic LRU — the default).
    #[default]
    Lru,
    /// Frequency-aware admission (TinyLFU-flavored): the cache keeps a
    /// small access-frequency sketch per key (aged by periodic halving),
    /// and a new entry displaces the LRU victim only when it has been
    /// requested at least as often. One-hit wonders in a cold or zipfian
    /// stream bounce off a full cache instead of evicting the hot set.
    Frequency,
}

impl AdmissionPolicy {
    /// Parses a CLI flag value (`lru` / `freq`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(Self::Lru),
            "freq" | "frequency" => Some(Self::Frequency),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::Frequency => "freq",
        }
    }
}

/// The shareable evaluation state of one `(machine, workload)` pair: the
/// workload's CFG plus the pair's instrumented reference profile.
///
/// Every consumer of a pair — grid cells, serve requests — builds its
/// [`Session`]s from one `PairParts` so the expensive state is collected
/// once and shared, never rebuilt per consumer.
#[derive(Debug, Clone)]
pub struct PairParts {
    /// The workload's control-flow graph.
    pub cfg: Arc<Cfg>,
    /// The pair's exact reference profile.
    pub reference: Arc<ReferenceProfile>,
}

impl PairParts {
    /// Collects the pair's reference profile (one instrumented execution)
    /// against a prebuilt CFG.
    pub fn collect(
        machine: &MachineModel,
        program: &Program,
        run_config: &RunConfig,
        cfg: Arc<Cfg>,
    ) -> Result<Self, CoreError> {
        let mut session = Session::with_shared_parts(
            machine,
            program,
            run_config.clone(),
            cfg.clone(),
            None,
        );
        let reference = session.shared_reference()?;
        Ok(Self { cfg, reference })
    }

    /// A session over the pair that shares this state (no instrumented
    /// re-execution, no CFG rebuild).
    #[must_use]
    pub fn session<'a>(
        &self,
        machine: &'a MachineModel,
        program: &'a Program,
        run_config: RunConfig,
    ) -> Session<'a> {
        Session::with_shared_parts(
            machine,
            program,
            run_config,
            self.cfg.clone(),
            Some(self.reference.clone()),
        )
    }
}

/// Cumulative [`ProfileCache`] counters.
///
/// One lookup is counted per [`ProfileCache::get_or_build`] call (the
/// serving layer performs one per request shard, not one per request —
/// see [`crate::serve::ServeStats`] for per-request accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident entry.
    pub hits: u64,
    /// Lookups that found no resident entry.
    pub misses: u64,
    /// Successful builds (≤ `misses`; failed builds are not counted).
    pub builds: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Successful builds denied residency by the admission policy (the
    /// build result was still handed to its caller).
    pub rejected: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// The cache's configured capacity (`0` = unbounded).
    pub capacity: usize,
    /// The cache's configured admission policy.
    pub policy: AdmissionPolicy,
}

impl CacheStats {
    /// One-line human summary of the residency knobs and their outcome —
    /// the shape every consumer (`serve_bench`, examples) prints, so the
    /// formatting lives here once.
    #[must_use]
    pub fn summary(&self) -> String {
        let capacity = if self.capacity == 0 {
            "unbounded".to_string()
        } else {
            self.capacity.to_string()
        };
        format!(
            "capacity {capacity} | policy {} | resident {} | evictions {} | rejected {}",
            self.policy.name(),
            self.resident,
            self.evictions,
            self.rejected
        )
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// A build in progress: waiters block on the condvar until the builder
/// publishes its result.
struct InFlight {
    result: Mutex<Option<Result<Arc<PairParts>, CoreError>>>,
    ready: Condvar,
}

/// Halve every frequency count after this many lookups, so stale
/// popularity fades instead of pinning an entry forever.
const FREQ_DECAY_INTERVAL: u64 = 1024;

struct CacheInner {
    /// `0` means unbounded.
    capacity: usize,
    policy: AdmissionPolicy,
    /// LRU order: front is least recently used, back is most recent.
    entries: Vec<(PairKey, Arc<PairParts>)>,
    /// Keys currently being built, so concurrent lookups of the same key
    /// share one build instead of each running an instrumented execution.
    in_flight: Vec<(PairKey, Arc<InFlight>)>,
    /// Access-frequency sketch ([`AdmissionPolicy::Frequency`] only):
    /// bumped on every lookup, aged by halving every
    /// [`FREQ_DECAY_INTERVAL`] lookups.
    freq: Vec<(PairKey, u64)>,
    lookups: u64,
    hits: u64,
    misses: u64,
    builds: u64,
    evictions: u64,
    rejected: u64,
}

impl CacheInner {
    /// Records one lookup of `key` in the frequency sketch (no-op under
    /// plain LRU, which never consults it).
    fn note_access(&mut self, key: PairKey) {
        if self.policy != AdmissionPolicy::Frequency {
            return;
        }
        self.lookups += 1;
        match self.freq.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = entry.1.saturating_add(1),
            None => self.freq.push((key, 1)),
        }
        if self.lookups % FREQ_DECAY_INTERVAL == 0 {
            for entry in &mut self.freq {
                entry.1 /= 2;
            }
            self.freq.retain(|(_, c)| *c > 0);
        }
    }

    /// The sketch frequency of `key` (`0` when never seen or decayed out).
    fn frequency(&self, key: PairKey) -> u64 {
        self.freq
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, c)| *c)
    }

    /// Whether a freshly built `key` may enter the cache right now.
    fn admits(&self, key: PairKey) -> bool {
        match self.policy {
            AdmissionPolicy::Lru => true,
            AdmissionPolicy::Frequency => {
                if self.capacity == 0 || self.entries.len() < self.capacity {
                    return true;
                }
                // Full cache: the candidate must be at least as popular
                // as the LRU victim it would displace (ties favor the
                // newcomer — recency breaks frequency ties).
                let victim = self.entries[0].0;
                self.frequency(key) >= self.frequency(victim)
            }
        }
    }
}

/// An LRU-bounded, thread-safe cache of [`PairParts`] keyed by
/// `(machine, workload)` pair.
///
/// The map lock is held only for bookkeeping — builds run outside it, so
/// distinct pairs build concurrently. Entries handed out are [`Arc`]s:
/// eviction never invalidates state a consumer is still using, it only
/// drops the cache's own reference.
pub struct ProfileCache {
    inner: Mutex<CacheInner>,
}

impl ProfileCache {
    /// A cache that never evicts: every pair is built at most once per
    /// cache lifetime.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::with_capacity(0)
    }

    /// A cache holding at most `capacity` pairs (LRU eviction, admit-all
    /// policy); `0` means unbounded.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, AdmissionPolicy::Lru)
    }

    /// A cache holding at most `capacity` pairs (`0` = unbounded) with
    /// the given [`AdmissionPolicy`] guarding entry into a full cache.
    #[must_use]
    pub fn with_policy(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                capacity,
                policy,
                entries: Vec::new(),
                in_flight: Vec::new(),
                freq: Vec::new(),
                lookups: 0,
                hits: 0,
                misses: 0,
                builds: 0,
                evictions: 0,
                rejected: 0,
            }),
        }
    }

    /// The configured capacity (`0` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// The configured admission policy.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.lock().policy
    }

    /// Returns the resident entry for `key`, marking it most recently
    /// used, or builds one with `build`, inserting it (and evicting the
    /// least recently used entry when over capacity) on success.
    ///
    /// The boolean is `true` on a hit. Concurrent calls for the same
    /// key share a single build: the first caller builds (outside the
    /// map lock, so distinct pairs still build concurrently) and every
    /// other caller blocks until the result is published, then counts as
    /// a hit — the "at most one build per pair per residency" guarantee
    /// holds even across concurrent batches on one cache. Build errors
    /// are returned to the builder *and* its waiters and cache nothing,
    /// so a later retry re-attempts the build.
    pub fn get_or_build<F>(
        &self,
        key: PairKey,
        build: F,
    ) -> Result<(Arc<PairParts>, bool), CoreError>
    where
        F: FnOnce() -> Result<PairParts, CoreError>,
    {
        let flight: Arc<InFlight> = {
            let mut inner = self.lock();
            inner.note_access(key);
            if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
                let entry = inner.entries.remove(pos);
                let parts = entry.1.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                return Ok((parts, true));
            }
            if let Some(flight) = inner
                .in_flight
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, f)| f.clone())
            {
                // Another thread is already building this key: share its
                // build (a hit — no additional instrumented execution).
                inner.hits += 1;
                drop(inner);
                let mut result = flight
                    .result
                    .lock()
                    .expect("in-flight lock never poisoned");
                while result.is_none() {
                    result = flight
                        .ready
                        .wait(result)
                        .expect("in-flight lock never poisoned");
                }
                return result
                    .clone()
                    .expect("signaled after publication")
                    .map(|parts| (parts, true));
            }
            inner.misses += 1;
            let flight = Arc::new(InFlight {
                result: Mutex::new(None),
                ready: Condvar::new(),
            });
            inner.in_flight.push((key, flight.clone()));
            flight
        };

        // Build outside the map lock so distinct pairs build concurrently;
        // the in-flight entry above keeps same-key callers waiting.
        let built = build().map(Arc::new);
        {
            let mut inner = self.lock();
            inner.in_flight.retain(|(k, _)| *k != key);
            if let Ok(parts) = &built {
                inner.builds += 1;
                if inner.admits(key) {
                    // No same-key insert can have raced us: they all waited.
                    inner.entries.push((key, parts.clone()));
                    if inner.capacity > 0 {
                        while inner.entries.len() > inner.capacity {
                            inner.entries.remove(0);
                            inner.evictions += 1;
                        }
                    }
                } else {
                    // Denied residency: the caller still gets the build,
                    // the hot set keeps its cache slots.
                    inner.rejected += 1;
                }
            }
        }
        let mut result = flight
            .result
            .lock()
            .expect("in-flight lock never poisoned");
        *result = Some(built.clone());
        flight.ready.notify_all();
        drop(result);
        built.map(|parts| (parts, false))
    }

    /// Whether `key` is currently resident (no LRU touch, no counters).
    #[must_use]
    pub fn contains(&self, key: PairKey) -> bool {
        self.lock().entries.iter().any(|(k, _)| *k == key)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident entry (counters are kept).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// A snapshot of the cumulative counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            builds: inner.builds,
            evictions: inner.evictions,
            rejected: inner.rejected,
            resident: inner.entries.len(),
            capacity: inner.capacity,
            policy: inner.policy,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().expect("cache lock never poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    /// Keys in the default catalog namespace, as a single-catalog service
    /// would produce them.
    fn key(machine: usize, workload: usize) -> PairKey {
        PairKey::new(0, machine, workload)
    }

    fn kernel() -> Program {
        assemble(
            "k",
            r#"
            .func main
                movi r1, 5000
            top:
                addi r2, r2, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap()
    }

    fn parts_for(program: &Program) -> PairParts {
        let machine = MachineModel::ivy_bridge();
        let cfg = Arc::new(Cfg::build(program));
        PairParts::collect(&machine, program, &RunConfig::default(), cfg).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let program = kernel();
        let cache = ProfileCache::with_capacity(2);
        let build = || Ok(parts_for(&program));
        cache.get_or_build(key(0, 0), build).unwrap();
        cache.get_or_build(key(0, 1), build).unwrap();
        // Touch (0,0): it becomes most recently used.
        let (_, hit) = cache.get_or_build(key(0, 0), build).unwrap();
        assert!(hit);
        // Inserting a third pair evicts (0,1), the LRU entry.
        cache.get_or_build(key(0, 2), build).unwrap();
        assert!(cache.contains(key(0, 0)));
        assert!(!cache.contains(key(0, 1)));
        assert!(cache.contains(key(0, 2)));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.builds, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 2);
    }

    #[test]
    fn capacity_one_thrashes_and_unbounded_does_not() {
        let program = kernel();
        let tiny = ProfileCache::with_capacity(1);
        let big = ProfileCache::unbounded();
        for cache in [&tiny, &big] {
            for key in [key(0, 0), key(0, 1), key(0, 0), key(0, 1)] {
                cache.get_or_build(key, || Ok(parts_for(&program))).unwrap();
            }
        }
        assert_eq!(tiny.stats().builds, 4, "capacity 1 rebuilds on every alternation");
        assert_eq!(big.stats().builds, 2, "unbounded builds once per pair");
        assert_eq!(big.stats().hits, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = ProfileCache::unbounded();
        let err = cache.get_or_build(key(0, 0), || {
            Err(CoreError::MethodUnavailable {
                method: "injected".to_string(),
                machine: "test".to_string(),
            })
        });
        assert!(err.is_err());
        assert!(!cache.contains(key(0, 0)));
        // A later successful build proceeds normally.
        let program = kernel();
        let (_, hit) = cache
            .get_or_build(key(0, 0), || Ok(parts_for(&program)))
            .unwrap();
        assert!(!hit);
        assert!(cache.contains(key(0, 0)));
    }

    #[test]
    fn concurrent_same_key_lookups_share_one_build() {
        let program = kernel();
        let cache = ProfileCache::unbounded();
        // The barrier keeps the second lookup arriving while the first
        // is still inside its build, exercising the in-flight wait path;
        // if scheduling is unlucky the second simply hits the inserted
        // entry — either way exactly one build must happen.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                cache.get_or_build(key(0, 0), || {
                    barrier.wait();
                    Ok(parts_for(&program))
                })
            });
            let b = scope.spawn(|| {
                barrier.wait();
                cache.get_or_build(key(0, 0), || Ok(parts_for(&program)))
            });
            let (parts_a, hit_a) = a.join().unwrap().unwrap();
            let (parts_b, hit_b) = b.join().unwrap().unwrap();
            assert!(Arc::ptr_eq(&parts_a.reference, &parts_b.reference));
            assert!(!hit_a, "the registering thread is the builder");
            assert!(hit_b, "the concurrent thread shares the build");
        });
        let s = cache.stats();
        assert_eq!(s.builds, 1, "one build despite concurrent lookups");
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn frequency_admission_protects_hot_entries_from_one_hit_wonders() {
        let program = kernel();
        let cache = ProfileCache::with_policy(1, AdmissionPolicy::Frequency);
        let build = || Ok(parts_for(&program));
        // A becomes hot: three lookups, frequency 3.
        for _ in 0..3 {
            cache.get_or_build(key(0, 0), build).unwrap();
        }
        // A cold scan over B: under LRU each build would evict A; under
        // frequency admission B bounces until it out-ranks A.
        let (_, hit) = cache.get_or_build(key(0, 1), build).unwrap();
        assert!(!hit, "B is built (the caller still gets its parts)");
        assert!(cache.contains(key(0, 0)), "hot entry survives the first scan");
        assert!(!cache.contains(key(0, 1)));
        cache.get_or_build(key(0, 1), build).unwrap();
        assert!(cache.contains(key(0, 0)), "freq(B)=2 < freq(A)=3 still bounces");
        // Third B lookup ties A's frequency — ties favor the newcomer.
        cache.get_or_build(key(0, 1), build).unwrap();
        assert!(cache.contains(key(0, 1)), "B earned its slot");
        assert!(!cache.contains(key(0, 0)));
        let s = cache.stats();
        assert_eq!(s.rejected, 2);
        assert_eq!(s.builds, 4, "one for A, three for B's climb");
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn lru_policy_never_rejects() {
        let program = kernel();
        let cache = ProfileCache::with_capacity(1);
        assert_eq!(cache.policy(), AdmissionPolicy::Lru);
        let build = || Ok(parts_for(&program));
        for key in [key(0, 0), key(0, 1), key(0, 2)] {
            cache.get_or_build(key, build).unwrap();
        }
        assert_eq!(cache.stats().rejected, 0);
        assert!(cache.contains(key(0, 2)), "LRU admits every build");
    }

    #[test]
    fn admission_policy_parses_flag_values() {
        assert_eq!(AdmissionPolicy::parse("lru"), Some(AdmissionPolicy::Lru));
        assert_eq!(AdmissionPolicy::parse("freq"), Some(AdmissionPolicy::Frequency));
        assert_eq!(
            AdmissionPolicy::parse("frequency"),
            Some(AdmissionPolicy::Frequency)
        );
        assert_eq!(AdmissionPolicy::parse("arc"), None);
        assert_eq!(AdmissionPolicy::Frequency.name(), "freq");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Lru);
    }

    #[test]
    fn frequency_admission_fills_an_unsaturated_cache() {
        let program = kernel();
        let cache = ProfileCache::with_policy(3, AdmissionPolicy::Frequency);
        let build = || Ok(parts_for(&program));
        for key in [key(0, 0), key(0, 1), key(0, 2)] {
            cache.get_or_build(key, build).unwrap();
        }
        // Below capacity nothing is ever rejected.
        assert_eq!(cache.stats().rejected, 0);
        assert_eq!(cache.len(), 3);
    }

    // The aging-boundary tests below drive `CacheInner` directly: the
    // sketch's interesting transitions sit at the decay interval and at
    // counter saturation, and reaching either through `get_or_build`
    // would cost thousands of instrumented executions.

    #[test]
    fn freq_sketch_halves_at_the_decay_interval_and_drops_zeroed_keys() {
        let cache = ProfileCache::with_policy(2, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        // 7 accesses for A, 1 for B, then pad lookups on A up to one
        // short of the interval: counts survive untouched until then.
        for _ in 0..7 {
            inner.note_access(key(0, 0));
        }
        inner.note_access(key(0, 1));
        while inner.lookups < FREQ_DECAY_INTERVAL - 1 {
            inner.note_access(key(0, 0));
        }
        // Every lookup so far except B's single one went to A.
        let a_before = inner.frequency(key(0, 0));
        assert_eq!(a_before, FREQ_DECAY_INTERVAL - 2);
        assert_eq!(inner.frequency(key(0, 1)), 1);

        // Lookup number FREQ_DECAY_INTERVAL triggers the halving: A's
        // count is (a_before + 1) / 2 rounded down, and B — halved from
        // 1 to 0 — is dropped from the sketch entirely (`retain`), so a
        // decayed-out key reads as frequency 0, not a stale 1.
        inner.note_access(key(0, 0));
        assert_eq!(inner.lookups, FREQ_DECAY_INTERVAL);
        assert_eq!(inner.frequency(key(0, 0)), (a_before + 1) / 2);
        assert_eq!(inner.frequency(key(0, 1)), 0);
        assert!(
            !inner.freq.iter().any(|(k, _)| *k == key(0, 1)),
            "a count halved to zero must leave the sketch"
        );
    }

    #[test]
    fn freq_sketch_counters_saturate_instead_of_wrapping() {
        let cache = ProfileCache::with_policy(2, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        inner.note_access(key(0, 0));
        // Force the counter to the brink; the next accesses must pin at
        // u64::MAX (saturating_add), never wrap to a tiny frequency that
        // would get the hottest key evicted.
        inner.freq[0].1 = u64::MAX - 1;
        inner.note_access(key(0, 0));
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX);
        inner.note_access(key(0, 0));
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX, "must saturate, not wrap");
        // And a saturated counter still ages: the next interval halving
        // brings it back into comparable range.
        while inner.lookups % FREQ_DECAY_INTERVAL != 0 {
            inner.note_access(key(0, 1));
        }
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX / 2);
    }

    #[test]
    fn freq_sketch_admission_flips_across_a_halving() {
        // A hot key that stops being requested fades: after one halving
        // its count can tie with a steadily climbing newcomer, which then
        // gets admitted (ties favor the newcomer).
        let cache = ProfileCache::with_policy(1, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        let program = kernel();
        inner.entries.push((key(0, 0), Arc::new(parts_for(&program))));
        for _ in 0..4 {
            inner.note_access(key(0, 0));
        }
        for _ in 0..3 {
            inner.note_access(key(0, 1));
        }
        assert!(!inner.admits(key(0, 1)), "freq 3 < 4 bounces pre-halving");
        while inner.lookups % FREQ_DECAY_INTERVAL != 0 {
            inner.note_access(key(0, 1));
        }
        // Post-halving, the resident key decayed with everything else
        // while the newcomer kept accumulating — admission flips.
        assert_eq!(inner.frequency(key(0, 0)), 2);
        assert!(inner.frequency(key(0, 1)) >= 2);
        assert!(inner.admits(key(0, 1)), "aged victim must lose its slot");
    }

    #[test]
    fn cache_stats_summary_reports_knobs_and_outcome() {
        let stats = CacheStats {
            capacity: 3,
            policy: AdmissionPolicy::Frequency,
            resident: 2,
            evictions: 4,
            rejected: 5,
            ..CacheStats::default()
        };
        assert_eq!(
            stats.summary(),
            "capacity 3 | policy freq | resident 2 | evictions 4 | rejected 5"
        );
        let unbounded = CacheStats::default();
        assert!(unbounded.summary().starts_with("capacity unbounded | policy lru"));
        assert_eq!(format!("{unbounded}"), unbounded.summary());
    }

    #[test]
    fn shared_sessions_reuse_the_reference() {
        let program = kernel();
        let machine = MachineModel::ivy_bridge();
        let cfg = Arc::new(Cfg::build(&program));
        let parts =
            PairParts::collect(&machine, &program, &RunConfig::default(), cfg).unwrap();
        let mut session = parts.session(&machine, &program, RunConfig::default());
        let total = session.reference().unwrap().total_instructions();
        assert_eq!(total, parts.reference.total_instructions());
    }
}
