//! The sharded reference-profile cache behind the serving layer.
//!
//! Building a pair's evaluation state — its CFG and, above all, its
//! instrumented [`ReferenceProfile`] — is the most expensive step of any
//! evaluation (one full extra execution of the workload). The grid engine
//! ([`crate::grid`]) amortizes it across a *static* grid; this module
//! amortizes it across *arbitrary request traffic*:
//!
//! * [`PairParts`] bundles the shareable per-pair state (CFG + reference)
//!   and is the one place sessions over a pair are constructed from —
//!   both [`crate::grid::PairCtx`] and the serving layer
//!   ([`crate::serve`]) go through it;
//! * [`ProfileCache`] is an LRU-bounded, thread-safe map from
//!   catalog-namespaced `(machine, workload)` pair keys ([`PairKey`]) to
//!   [`PairParts`], so a profile is built at most once per pair per cache
//!   residency — and every tenant of a multi-catalog service shares one
//!   cache (and one admission policy) without key collisions;
//! * [`AdmissionPolicy`] decides whether a freshly built pair may *enter*
//!   a full cache at all: plain LRU admits everything, while the
//!   frequency-aware variant rejects one-hit wonders so cold or zipfian
//!   request streams cannot thrash the hot working set out of a small
//!   cache;
//! * [`CacheQuotas`] makes the shared cache **tenant-fair**: a quota caps
//!   how many entries each catalog may keep resident, and once a catalog
//!   is at its quota, eviction and admission decisions are taken against
//!   that catalog's own LRU victim — so one hot tenant's churn can never
//!   flush another tenant's working set. Per-tenant
//!   hit/miss/eviction/rejection counters are surfaced through
//!   [`CacheStats::tenants`].
//!
//! Cache contents are pure functions of the pair, so eviction, rebuild,
//! admission and quotas change *when* work happens, never *what* a
//! response contains — the determinism contract of the grid engine
//! extends to any cache capacity, admission policy and quota
//! configuration.

use crate::error::CoreError;
use crate::session::Session;
use crate::store::SnapshotStore;
use ct_instrument::ReferenceProfile;
use ct_isa::{Cfg, Program};
use ct_sim::{MachineModel, RunConfig};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: a `(machine, workload)` pair *namespaced by its catalog*.
///
/// The serving layer resolves requests through a
/// [`crate::serve::CatalogRegistry`] holding several named catalogs, and
/// every tenant shares one [`ProfileCache`]. Two catalogs may bind the
/// same `(machine, workload)` indices to entirely different programs, so
/// the catalog index is part of the key — without it, tenant B would be
/// handed tenant A's reference profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// Index of the catalog in the owning registry (`0` for a
    /// single-catalog service).
    pub catalog: usize,
    /// Index of the machine in its catalog.
    pub machine: usize,
    /// Index of the workload in its catalog.
    pub workload: usize,
}

impl PairKey {
    /// A key for the `(machine, workload)` pair of one catalog.
    #[must_use]
    pub fn new(catalog: usize, machine: usize, workload: usize) -> Self {
        Self {
            catalog,
            machine,
            workload,
        }
    }
}

/// How a [`ProfileCache`] decides whether a freshly built entry may enter
/// a full cache.
///
/// Admission is a *residency* knob, never a correctness knob: a rejected
/// build is still returned to its caller, so responses are identical
/// under every policy — only build counts differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit every successful build, evicting the least recently used
    /// entry to make room (classic LRU — the default).
    #[default]
    Lru,
    /// Frequency-aware admission (TinyLFU-flavored): the cache keeps a
    /// small access-frequency sketch per key (aged by periodic halving),
    /// and a new entry displaces the LRU victim only when it has been
    /// requested at least as often. One-hit wonders in a cold or zipfian
    /// stream bounce off a full cache instead of evicting the hot set.
    Frequency,
}

impl AdmissionPolicy {
    /// Parses a CLI flag value (`lru` / `freq`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(Self::Lru),
            "freq" | "frequency" => Some(Self::Frequency),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::Frequency => "freq",
        }
    }
}

/// Per-catalog residency quotas for a shared [`ProfileCache`].
///
/// The default is **unlimited** (every catalog may use the whole cache —
/// exactly the pre-quota behavior, byte for byte). A quota bounds how
/// many entries one catalog may keep resident at once; when a catalog is
/// at its quota, inserting another of its entries evicts that catalog's
/// **own** least recently used entry instead of a global victim, and the
/// frequency admission policy compares the newcomer against that same
/// tenant-local victim. Quotas are a residency knob like capacity and
/// admission: they change build counts, never response bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheQuotas {
    /// Residency cap applied to every catalog without an override
    /// (`0` = unlimited).
    default_quota: usize,
    /// Per-catalog overrides `(catalog index, quota)`; a quota of `0`
    /// lifts the cap for that catalog.
    overrides: Vec<(usize, usize)>,
}

impl CacheQuotas {
    /// No quotas: every catalog competes for the whole cache (the
    /// default).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// The same residency cap for every catalog (`0` = unlimited).
    #[must_use]
    pub fn per_catalog(quota: usize) -> Self {
        Self {
            default_quota: quota,
            overrides: Vec::new(),
        }
    }

    /// Overrides the cap for one catalog (registry index); `0` lifts the
    /// cap for that catalog.
    #[must_use]
    pub fn with_override(mut self, catalog: usize, quota: usize) -> Self {
        match self.overrides.iter_mut().find(|(c, _)| *c == catalog) {
            Some(slot) => slot.1 = quota,
            None => self.overrides.push((catalog, quota)),
        }
        self
    }

    /// The residency cap for `catalog` (`0` = unlimited).
    #[must_use]
    pub fn quota_for(&self, catalog: usize) -> usize {
        self.overrides
            .iter()
            .find(|(c, _)| *c == catalog)
            .map_or(self.default_quota, |(_, q)| *q)
    }

    /// Whether no catalog is capped at all (the byte-preserving default).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.default_quota == 0 && self.overrides.iter().all(|(_, q)| *q == 0)
    }
}

/// The shareable evaluation state of one `(machine, workload)` pair: the
/// workload's CFG plus the pair's instrumented reference profile.
///
/// Every consumer of a pair — grid cells, serve requests — builds its
/// [`Session`]s from one `PairParts` so the expensive state is collected
/// once and shared, never rebuilt per consumer.
#[derive(Debug, Clone)]
pub struct PairParts {
    /// The workload's control-flow graph.
    pub cfg: Arc<Cfg>,
    /// The pair's exact reference profile.
    pub reference: Arc<ReferenceProfile>,
}

impl PairParts {
    /// Collects the pair's reference profile (one instrumented execution)
    /// against a prebuilt CFG.
    pub fn collect(
        machine: &MachineModel,
        program: &Program,
        run_config: &RunConfig,
        cfg: Arc<Cfg>,
    ) -> Result<Self, CoreError> {
        let mut session = Session::with_shared_parts(
            machine,
            program,
            run_config.clone(),
            cfg.clone(),
            None,
        );
        let reference = session.shared_reference()?;
        Ok(Self { cfg, reference })
    }

    /// A session over the pair that shares this state (no instrumented
    /// re-execution, no CFG rebuild).
    #[must_use]
    pub fn session<'a>(
        &self,
        machine: &'a MachineModel,
        program: &'a Program,
        run_config: RunConfig,
    ) -> Session<'a> {
        Session::with_shared_parts(
            machine,
            program,
            run_config,
            self.cfg.clone(),
            Some(self.reference.clone()),
        )
    }
}

/// Cumulative per-catalog (tenant) counters of a shared
/// [`ProfileCache`], one entry per catalog that ever touched the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// The catalog's registry index ([`PairKey::catalog`]).
    pub catalog: usize,
    /// This catalog's lookups satisfied by a resident entry.
    pub hits: u64,
    /// This catalog's lookups that found no resident entry.
    pub misses: u64,
    /// This catalog's entries evicted (by its own quota or the global
    /// capacity bound).
    pub evictions: u64,
    /// This catalog's builds denied residency by the admission policy.
    pub rejected: u64,
    /// This catalog's entries currently resident.
    pub resident: usize,
    /// This catalog's residency quota (`0` = unlimited).
    pub quota: usize,
}

impl TenantCacheStats {
    /// Fraction of this catalog's lookups served from residency.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Cumulative [`ProfileCache`] counters.
///
/// One lookup is counted per [`ProfileCache::get_or_build`] call (the
/// serving layer performs one per request shard, not one per request —
/// see [`crate::serve::ServeStats`] for per-request accounting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident entry.
    pub hits: u64,
    /// Lookups that found no resident entry.
    pub misses: u64,
    /// Successful builds (≤ `misses`; failed builds are not counted).
    pub builds: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Successful builds denied residency by the admission policy (the
    /// build result was still handed to its caller).
    pub rejected: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// The cache's configured capacity (`0` = unbounded).
    pub capacity: usize,
    /// The cache's configured admission policy.
    pub policy: AdmissionPolicy,
    /// The cache's configured per-catalog quotas.
    pub quotas: CacheQuotas,
    /// Per-catalog breakdown: dense over catalog indices `0..=highest`
    /// catalog that ever looked an entry up (a lower-indexed catalog
    /// that never did appears with all-zero counters), empty for an
    /// untouched cache.
    pub tenants: Vec<TenantCacheStats>,
    /// Whether a [`SnapshotStore`] backing directory is attached.
    pub snapshot_store: bool,
    /// Cold builds avoided by loading a validated snapshot from the
    /// backing store (each still counts in `builds`, preserving the
    /// "one build per miss" accounting — the saving shows up in the
    /// [`ct_instrument::CollectionAudit`] instead).
    pub snapshot_hits: u64,
    /// Snapshots present but rejected (corrupt, truncated, stale
    /// fingerprint, unreadable); each fell back to a cold build that
    /// then rewrote the snapshot.
    pub snapshot_rejects: u64,
}

impl CacheStats {
    /// One-line human summary of the residency knobs and their outcome —
    /// the shape every consumer (`serve_bench`, examples) prints, so the
    /// formatting lives here once.
    #[must_use]
    pub fn summary(&self) -> String {
        let capacity = if self.capacity == 0 {
            "unbounded".to_string()
        } else {
            self.capacity.to_string()
        };
        let mut line = format!(
            "capacity {capacity} | policy {} | resident {} | evictions {} | rejected {}",
            self.policy.name(),
            self.resident,
            self.evictions,
            self.rejected
        );
        if !self.quotas.is_unlimited() {
            let caps: Vec<String> = self
                .tenants
                .iter()
                .map(|t| format!("{}:{}/{}", t.catalog, t.resident, t.quota))
                .collect();
            line.push_str(&format!(" | quotas [{}]", caps.join(" ")));
        }
        if self.snapshot_store {
            line.push_str(&format!(
                " | snapshots {} hits / {} rejects",
                self.snapshot_hits, self.snapshot_rejects
            ));
        }
        line
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// A build in progress: waiters block on the condvar until the builder
/// publishes its result.
struct InFlight {
    result: Mutex<Option<Result<Arc<PairParts>, CoreError>>>,
    ready: Condvar,
}

/// Unwind protection around a registered in-flight build: if the
/// builder panics before publishing, the guard's drop removes the
/// in-flight entry and publishes [`CoreError::BuildPanicked`] — so
/// waiters sharing the doomed build wake with an error instead of
/// blocking forever on a result that will never arrive (and later
/// lookups of the key retry the build instead of queueing behind a
/// ghost). Disarmed on the normal path, where the builder publishes its
/// own result.
struct FlightGuard<'a> {
    cache: &'a ProfileCache,
    key: PairKey,
    flight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        {
            // This drop already runs during an unwind: tolerate a
            // poisoned map lock rather than double-panicking (which
            // would abort the process and defeat the isolation).
            let mut inner = self
                .cache
                .shard(self.key)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.in_flight.retain(|(k, _)| *k != self.key);
        }
        let mut result = self
            .flight
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *result = Some(Err(CoreError::BuildPanicked));
        self.flight.ready.notify_all();
    }
}

/// An attached [`SnapshotStore`] plus its outcome counters. Shared by
/// `Arc` so the serving layer can rebuild its cache (capacity/admission/
/// quota knobs) without losing the backing directory or its counters;
/// counters are atomics because loads and saves happen outside the map
/// lock, in the builder's flight-guarded region.
pub(crate) struct SnapshotBacking {
    pub(crate) store: SnapshotStore,
    hits: AtomicU64,
    rejects: AtomicU64,
}

/// Halve every frequency count after this many lookups, so stale
/// popularity fades instead of pinning an entry forever.
const FREQ_DECAY_INTERVAL: u64 = 1024;

/// Per-catalog tally of a shared cache (indexed by catalog, grown on
/// demand).
#[derive(Debug, Clone, Copy, Default)]
struct TenantTally {
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

struct CacheInner {
    /// `0` means unbounded.
    capacity: usize,
    policy: AdmissionPolicy,
    quotas: CacheQuotas,
    /// LRU order: front is least recently used, back is most recent.
    entries: Vec<(PairKey, Arc<PairParts>)>,
    /// Keys currently being built, so concurrent lookups of the same key
    /// share one build instead of each running an instrumented execution.
    in_flight: Vec<(PairKey, Arc<InFlight>)>,
    /// Access-frequency sketch ([`AdmissionPolicy::Frequency`] only):
    /// bumped on every lookup, aged by halving every
    /// [`FREQ_DECAY_INTERVAL`] lookups.
    freq: Vec<(PairKey, u64)>,
    lookups: u64,
    hits: u64,
    misses: u64,
    builds: u64,
    evictions: u64,
    rejected: u64,
    /// Per-catalog counters, indexed by [`PairKey::catalog`].
    tenants: Vec<TenantTally>,
}

impl CacheInner {
    /// Records one lookup of `key` in the frequency sketch (no-op under
    /// plain LRU, which never consults it).
    fn note_access(&mut self, key: PairKey) {
        if self.policy != AdmissionPolicy::Frequency {
            return;
        }
        self.lookups += 1;
        match self.freq.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = entry.1.saturating_add(1),
            None => self.freq.push((key, 1)),
        }
        if self.lookups % FREQ_DECAY_INTERVAL == 0 {
            for entry in &mut self.freq {
                entry.1 /= 2;
            }
            self.freq.retain(|(_, c)| *c > 0);
        }
    }

    /// The sketch frequency of `key` (`0` when never seen or decayed out).
    fn frequency(&self, key: PairKey) -> u64 {
        self.freq
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, c)| *c)
    }

    /// The per-catalog tally for `catalog`, grown on demand.
    fn tally(&mut self, catalog: usize) -> &mut TenantTally {
        if self.tenants.len() <= catalog {
            self.tenants.resize_with(catalog + 1, TenantTally::default);
        }
        &mut self.tenants[catalog]
    }

    /// Resident entries belonging to `catalog`.
    fn resident_of(&self, catalog: usize) -> usize {
        self.entries.iter().filter(|(k, _)| k.catalog == catalog).count()
    }

    /// The least recently used resident entry of `catalog`, if any.
    fn tenant_victim(&self, catalog: usize) -> Option<PairKey> {
        self.entries
            .iter()
            .map(|(k, _)| *k)
            .find(|k| k.catalog == catalog)
    }

    /// Whether a freshly built `key` may enter the cache right now.
    fn admits(&self, key: PairKey) -> bool {
        match self.policy {
            AdmissionPolicy::Lru => true,
            AdmissionPolicy::Frequency => {
                // A catalog at its quota competes against its OWN least
                // recently used entry — tenant-local admission, so a
                // popular newcomer from tenant A can never reason its
                // way into evicting tenant B's entry via quota pressure.
                let quota = self.quotas.quota_for(key.catalog);
                if quota > 0 && self.resident_of(key.catalog) >= quota {
                    let victim = self
                        .tenant_victim(key.catalog)
                        .expect("a catalog at quota has resident entries");
                    return self.frequency(key) >= self.frequency(victim);
                }
                if self.capacity == 0 || self.entries.len() < self.capacity {
                    return true;
                }
                // Full cache: the candidate must be at least as popular
                // as the LRU victim it would displace (ties favor the
                // newcomer — recency breaks frequency ties).
                let victim = self.entries[0].0;
                self.frequency(key) >= self.frequency(victim)
            }
        }
    }

    /// Evicts down to the quota/capacity bounds after inserting `key`:
    /// first the inserting catalog's own LRU entries while it is over
    /// its quota (tenant-local — other catalogs are untouched), then
    /// the global LRU while the cache is over capacity.
    fn evict_over_bounds(&mut self, key: PairKey) {
        let quota = self.quotas.quota_for(key.catalog);
        if quota > 0 {
            // One residency count up front; each eviction decrements it
            // (no full recount per loop iteration).
            let mut resident = self.resident_of(key.catalog);
            while resident > quota {
                let pos = self
                    .entries
                    .iter()
                    .position(|(k, _)| k.catalog == key.catalog)
                    .expect("over-quota catalog has resident entries");
                self.entries.remove(pos);
                resident -= 1;
                self.evictions += 1;
                self.tally(key.catalog).evictions += 1;
            }
        }
        if self.capacity > 0 {
            while self.entries.len() > self.capacity {
                let (evicted, _) = self.entries.remove(0);
                self.evictions += 1;
                self.tally(evicted.catalog).evictions += 1;
            }
        }
    }
}

/// An LRU-bounded, thread-safe cache of [`PairParts`] keyed by
/// `(machine, workload)` pair.
///
/// The map lock is held only for bookkeeping — builds run outside it, so
/// distinct pairs build concurrently. Entries handed out are [`Arc`]s:
/// eviction never invalidates state a consumer is still using, it only
/// drops the cache's own reference.
///
/// # Lock sharding
///
/// An **unbounded, unquoted** cache splits its map across several lock
/// shards ([`PairKey`]-hash partitioned), so lookups of distinct pairs
/// from different serving threads no longer serialize on one mutex. The
/// split is exact, not approximate: with no capacity bound and no quotas
/// the cache never evicts and admits every build, so hit/miss/build
/// counts per key are independent of which shard holds it — the
/// aggregated [`CacheStats`] are identical to the single-lock cache's,
/// and the "at most one build per pair" guarantee holds per shard
/// because a key always maps to the same shard. A bounded or quota'd
/// cache keeps **exactly one shard**: LRU victims, admission contests
/// and quota accounting must see the whole resident set to stay
/// deterministic.
pub struct ProfileCache {
    /// Lock shards; a key's shard is [`Self::shard`]. Bounded or
    /// quota'd configurations always have exactly one.
    shards: Box<[Mutex<CacheInner>]>,
    /// Capacity is unbounded and quotas unlimited: eviction, admission
    /// and the frequency sketch are provably inert, so hits skip the
    /// LRU reorder and sketch bookkeeping (and the map may shard).
    exact_unbounded: bool,
    /// Optional on-disk [`SnapshotStore`] backing: read-through on a
    /// miss, write-behind after a cold build. Interior-mutable so a
    /// served `&ProfileCache` can be given a directory after
    /// construction (see [`Self::attach_snapshot_store`]).
    snapshot: Mutex<Option<Arc<SnapshotBacking>>>,
}

impl ProfileCache {
    /// A cache that never evicts: every pair is built at most once per
    /// cache lifetime.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::with_capacity(0)
    }

    /// A cache holding at most `capacity` pairs (LRU eviction, admit-all
    /// policy); `0` means unbounded.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, AdmissionPolicy::Lru)
    }

    /// A cache holding at most `capacity` pairs (`0` = unbounded) with
    /// the given [`AdmissionPolicy`] guarding entry into a full cache
    /// and no per-catalog quotas.
    #[must_use]
    pub fn with_policy(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self::with_config(capacity, policy, CacheQuotas::unlimited())
    }

    /// The fully configured cache: capacity (`0` = unbounded), admission
    /// policy, and per-catalog residency quotas ([`CacheQuotas`]).
    ///
    /// An unbounded, unquoted configuration auto-shards its lock by the
    /// machine's available parallelism (see the type-level docs); any
    /// bound or quota pins the cache to a single shard.
    #[must_use]
    pub fn with_config(capacity: usize, policy: AdmissionPolicy, quotas: CacheQuotas) -> Self {
        let shards = if capacity == 0 && quotas.is_unlimited() {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(16)
        } else {
            1
        };
        Self::build(capacity, policy, quotas, shards)
    }

    /// Rebuilds this cache with `shards` lock shards (clamped to one
    /// unless the configuration is unbounded and unquoted — sharding a
    /// bounded cache would make LRU and quota decisions shard-local).
    ///
    /// A configuration knob for construction time: resident entries and
    /// counters of `self` are discarded, so call it before first use.
    #[must_use]
    pub fn with_shard_count(self, shards: usize) -> Self {
        let backing = self.snapshot_backing();
        let rebuilt = {
            let inner = self.lock();
            Self::build(inner.capacity, inner.policy, inner.quotas.clone(), shards)
        };
        rebuilt.set_snapshot_backing(backing);
        rebuilt
    }

    /// Number of lock shards (`1` for any bounded or quota'd cache).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn build(capacity: usize, policy: AdmissionPolicy, quotas: CacheQuotas, shards: usize) -> Self {
        let exact_unbounded = capacity == 0 && quotas.is_unlimited();
        let shards = if exact_unbounded { shards.max(1) } else { 1 };
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(CacheInner {
                    capacity,
                    policy,
                    quotas: quotas.clone(),
                    entries: Vec::new(),
                    in_flight: Vec::new(),
                    freq: Vec::new(),
                    lookups: 0,
                    hits: 0,
                    misses: 0,
                    builds: 0,
                    evictions: 0,
                    rejected: 0,
                    tenants: Vec::new(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            exact_unbounded,
            snapshot: Mutex::new(None),
        }
    }

    /// Attaches an on-disk [`SnapshotStore`] over `dir`: subsequent
    /// fingerprinted misses read through it before building, and cold
    /// builds write behind into it. Attaching resets the snapshot
    /// counters; the resident set and ordinary counters are untouched.
    /// Takes `&self` so a service already behind a shared reference
    /// (e.g. one being served over a socket) can still be given a store.
    pub fn attach_snapshot_store(&self, dir: impl Into<PathBuf>) {
        self.set_snapshot_backing(Some(Arc::new(SnapshotBacking {
            store: SnapshotStore::new(dir),
            hits: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
        })));
    }

    /// Whether a snapshot backing directory is attached.
    #[must_use]
    pub fn has_snapshot_store(&self) -> bool {
        self.snapshot_backing().is_some()
    }

    /// The attached backing directory, if any.
    #[must_use]
    pub fn snapshot_dir(&self) -> Option<PathBuf> {
        self.snapshot_backing().map(|b| b.store.dir().to_path_buf())
    }

    pub(crate) fn snapshot_backing(&self) -> Option<Arc<SnapshotBacking>> {
        self.snapshot.lock().expect("snapshot lock never poisoned").clone()
    }

    /// Carries an existing backing (with its counters) onto this cache —
    /// how the serving layer's cache-rebuilding builders preserve the
    /// store across capacity/admission/quota changes.
    pub(crate) fn set_snapshot_backing(&self, backing: Option<Arc<SnapshotBacking>>) {
        *self.snapshot.lock().expect("snapshot lock never poisoned") = backing;
    }

    /// The shard owning `key` (FNV-1a over the key's three indices; a
    /// key always maps to the same shard, so in-flight build sharing
    /// stays per-key correct).
    fn shard(&self, key: PairKey) -> &Mutex<CacheInner> {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [key.catalog as u64, key.machine as u64, key.workload as u64] {
            h ^= part;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// The configured capacity (`0` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// The configured admission policy.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.lock().policy
    }

    /// The configured per-catalog quotas.
    #[must_use]
    pub fn quotas(&self) -> CacheQuotas {
        self.lock().quotas.clone()
    }

    /// Returns the resident entry for `key`, marking it most recently
    /// used, or builds one with `build`, inserting it (and evicting the
    /// least recently used entry when over capacity) on success.
    ///
    /// The boolean is `true` on a hit. Concurrent calls for the same
    /// key share a single build: the first caller builds (outside the
    /// map lock, so distinct pairs still build concurrently) and every
    /// other caller blocks until the result is published, then counts as
    /// a hit — the "at most one build per pair per residency" guarantee
    /// holds even across concurrent batches on one cache. Build errors
    /// are returned to the builder *and* its waiters and cache nothing,
    /// so a later retry re-attempts the build.
    pub fn get_or_build<F>(
        &self,
        key: PairKey,
        build: F,
    ) -> Result<(Arc<PairParts>, bool), CoreError>
    where
        F: FnOnce() -> Result<PairParts, CoreError>,
    {
        self.get_or_build_with_fingerprint(key, None, build)
    }

    /// [`Self::get_or_build`] with an optional pair fingerprint
    /// ([`crate::store::pair_fingerprint`]) enabling the snapshot store.
    ///
    /// On a miss with a fingerprint and an attached store, the builder
    /// first tries to load `<fingerprint>.snap` from the backing
    /// directory: a validated snapshot substitutes for the build (a
    /// *snapshot hit* — no instrumented execution, though it still
    /// counts as a cache build so residency accounting is unchanged); a
    /// corrupt, truncated or stale snapshot is counted as a *snapshot
    /// reject* and the cold build proceeds exactly as without a store,
    /// rewriting the snapshot on success (write-behind, best-effort).
    /// `None` (or no attached store) is byte-for-byte the plain path.
    pub fn get_or_build_with_fingerprint<F>(
        &self,
        key: PairKey,
        fingerprint: Option<u64>,
        build: F,
    ) -> Result<(Arc<PairParts>, bool), CoreError>
    where
        F: FnOnce() -> Result<PairParts, CoreError>,
    {
        let flight: Arc<InFlight> = {
            let mut inner = self.lock_shard(key);
            if !self.exact_unbounded {
                inner.note_access(key);
            }
            if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
                let parts = if self.exact_unbounded {
                    // Nothing ever evicts: the LRU order is dead state,
                    // so a hit skips the O(n) reorder.
                    inner.entries[pos].1.clone()
                } else {
                    let entry = inner.entries.remove(pos);
                    let parts = entry.1.clone();
                    inner.entries.push(entry);
                    parts
                };
                inner.hits += 1;
                inner.tally(key.catalog).hits += 1;
                return Ok((parts, true));
            }
            if let Some(flight) = inner
                .in_flight
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, f)| f.clone())
            {
                // Another thread is already building this key: share its
                // build (a hit — no additional instrumented execution).
                inner.hits += 1;
                inner.tally(key.catalog).hits += 1;
                drop(inner);
                let mut result = flight
                    .result
                    .lock()
                    .expect("in-flight lock never poisoned");
                while result.is_none() {
                    result = flight
                        .ready
                        .wait(result)
                        .expect("in-flight lock never poisoned");
                }
                return result
                    .clone()
                    .expect("signaled after publication")
                    .map(|parts| (parts, true));
            }
            inner.misses += 1;
            inner.tally(key.catalog).misses += 1;
            let flight = Arc::new(InFlight {
                result: Mutex::new(None),
                ready: Condvar::new(),
            });
            inner.in_flight.push((key, flight.clone()));
            flight
        };

        // Build outside the map lock so distinct pairs build concurrently;
        // the in-flight entry above keeps same-key callers waiting. The
        // guard is armed only across the builder itself — the one place
        // caller code (and a panic) can run.
        let built = {
            let mut guard = FlightGuard {
                cache: self,
                key,
                flight: &flight,
                armed: true,
            };
            let built = self.load_or_build(fingerprint, build).map(Arc::new);
            guard.armed = false;
            built
        };
        {
            let mut inner = self.lock_shard(key);
            inner.in_flight.retain(|(k, _)| *k != key);
            if let Ok(parts) = &built {
                inner.builds += 1;
                if inner.admits(key) {
                    // No same-key insert can have raced us: they all waited.
                    inner.entries.push((key, parts.clone()));
                    inner.evict_over_bounds(key);
                } else {
                    // Denied residency: the caller still gets the build,
                    // the hot set keeps its cache slots.
                    inner.rejected += 1;
                    inner.tally(key.catalog).rejected += 1;
                }
            }
        }
        let mut result = flight
            .result
            .lock()
            .expect("in-flight lock never poisoned");
        *result = Some(built.clone());
        flight.ready.notify_all();
        drop(result);
        built.map(|parts| (parts, false))
    }

    /// The build step of a miss, routed through the snapshot store when
    /// one is attached and the caller supplied a fingerprint. Runs in
    /// the flight-guarded region, outside the map lock. Cache contents
    /// are pure functions of the pair and equal fingerprints name equal
    /// inputs, so a validated snapshot load is indistinguishable (byte
    /// for byte) from the build it replaces.
    fn load_or_build<F>(&self, fingerprint: Option<u64>, build: F) -> Result<PairParts, CoreError>
    where
        F: FnOnce() -> Result<PairParts, CoreError>,
    {
        let backing = match (fingerprint, self.snapshot_backing()) {
            (Some(fp), Some(backing)) => (fp, backing),
            _ => return build(),
        };
        let (fp, backing) = backing;
        match backing.store.load(fp) {
            Ok(Some(parts)) => {
                backing.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(parts);
            }
            // A cold store is the normal first run: neither hit nor reject.
            Ok(None) => {}
            // Typed rejection (corruption, staleness, I/O): count it and
            // fall back to the cold build, which repairs the file below.
            Err(_) => {
                backing.rejects.fetch_add(1, Ordering::Relaxed);
            }
        }
        let parts = build()?;
        // Write-behind is best-effort: a full disk must not fail the
        // request — the response is already in hand.
        let _ = backing.store.save(fp, &parts);
        Ok(parts)
    }

    /// Whether `key` is currently resident (no LRU touch, no counters).
    #[must_use]
    pub fn contains(&self, key: PairKey) -> bool {
        self.lock_shard(key).entries.iter().any(|(k, _)| *k == key)
    }

    /// Number of resident entries (summed across shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock_mutex(s).entries.len()).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident entry (counters are kept).
    pub fn clear(&self) {
        for shard in &*self.shards {
            Self::lock_mutex(shard).entries.clear();
        }
    }

    /// A snapshot of the cumulative counters, including the per-catalog
    /// breakdown ([`CacheStats::tenants`]) — aggregated across shards,
    /// so callers see one cache whatever the shard count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        if let Some(backing) = self.snapshot_backing() {
            stats.snapshot_store = true;
            stats.snapshot_hits = backing.hits.load(Ordering::Relaxed);
            stats.snapshot_rejects = backing.rejects.load(Ordering::Relaxed);
        }
        let mut tallies: Vec<TenantTally> = Vec::new();
        let mut resident: Vec<usize> = Vec::new();
        for shard in &*self.shards {
            let inner = Self::lock_mutex(shard);
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.builds += inner.builds;
            stats.evictions += inner.evictions;
            stats.rejected += inner.rejected;
            stats.resident += inner.entries.len();
            stats.capacity = inner.capacity;
            stats.policy = inner.policy;
            stats.quotas = inner.quotas.clone();
            if tallies.len() < inner.tenants.len() {
                tallies.resize_with(inner.tenants.len(), TenantTally::default);
            }
            for (catalog, tally) in inner.tenants.iter().enumerate() {
                tallies[catalog].hits += tally.hits;
                tallies[catalog].misses += tally.misses;
                tallies[catalog].evictions += tally.evictions;
                tallies[catalog].rejected += tally.rejected;
            }
            for (key, _) in &inner.entries {
                if resident.len() <= key.catalog {
                    resident.resize(key.catalog + 1, 0);
                }
                resident[key.catalog] += 1;
            }
        }
        stats.tenants = tallies
            .iter()
            .enumerate()
            .map(|(catalog, tally)| TenantCacheStats {
                catalog,
                hits: tally.hits,
                misses: tally.misses,
                evictions: tally.evictions,
                rejected: tally.rejected,
                resident: resident.get(catalog).copied().unwrap_or(0),
                quota: stats.quotas.quota_for(catalog),
            })
            .collect();
        stats
    }

    /// Locks the shard owning `key`.
    fn lock_shard(&self, key: PairKey) -> std::sync::MutexGuard<'_, CacheInner> {
        Self::lock_mutex(self.shard(key))
    }

    fn lock_mutex(shard: &Mutex<CacheInner>) -> std::sync::MutexGuard<'_, CacheInner> {
        shard.lock().expect("cache lock never poisoned")
    }

    /// Shard 0 — the whole cache for every bounded/quota'd
    /// configuration; configuration fields are replicated across shards,
    /// so config reads are valid on any shard. The sketch-boundary unit
    /// tests drive `CacheInner` through this.
    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        Self::lock_mutex(&self.shards[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    /// Keys in the default catalog namespace, as a single-catalog service
    /// would produce them.
    fn key(machine: usize, workload: usize) -> PairKey {
        PairKey::new(0, machine, workload)
    }

    fn kernel() -> Program {
        assemble(
            "k",
            r#"
            .func main
                movi r1, 5000
            top:
                addi r2, r2, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap()
    }

    fn parts_for(program: &Program) -> PairParts {
        let machine = MachineModel::ivy_bridge();
        let cfg = Arc::new(Cfg::build(program));
        PairParts::collect(&machine, program, &RunConfig::default(), cfg).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let program = kernel();
        let cache = ProfileCache::with_capacity(2);
        let build = || Ok(parts_for(&program));
        cache.get_or_build(key(0, 0), build).unwrap();
        cache.get_or_build(key(0, 1), build).unwrap();
        // Touch (0,0): it becomes most recently used.
        let (_, hit) = cache.get_or_build(key(0, 0), build).unwrap();
        assert!(hit);
        // Inserting a third pair evicts (0,1), the LRU entry.
        cache.get_or_build(key(0, 2), build).unwrap();
        assert!(cache.contains(key(0, 0)));
        assert!(!cache.contains(key(0, 1)));
        assert!(cache.contains(key(0, 2)));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.builds, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 2);
    }

    #[test]
    fn capacity_one_thrashes_and_unbounded_does_not() {
        let program = kernel();
        let tiny = ProfileCache::with_capacity(1);
        let big = ProfileCache::unbounded();
        for cache in [&tiny, &big] {
            for key in [key(0, 0), key(0, 1), key(0, 0), key(0, 1)] {
                cache.get_or_build(key, || Ok(parts_for(&program))).unwrap();
            }
        }
        assert_eq!(tiny.stats().builds, 4, "capacity 1 rebuilds on every alternation");
        assert_eq!(big.stats().builds, 2, "unbounded builds once per pair");
        assert_eq!(big.stats().hits, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = ProfileCache::unbounded();
        let err = cache.get_or_build(key(0, 0), || {
            Err(CoreError::MethodUnavailable {
                method: "injected".to_string(),
                machine: "test".to_string(),
            })
        });
        assert!(err.is_err());
        assert!(!cache.contains(key(0, 0)));
        // A later successful build proceeds normally.
        let program = kernel();
        let (_, hit) = cache
            .get_or_build(key(0, 0), || Ok(parts_for(&program)))
            .unwrap();
        assert!(!hit);
        assert!(cache.contains(key(0, 0)));
    }

    #[test]
    fn concurrent_same_key_lookups_share_one_build() {
        let program = kernel();
        let cache = ProfileCache::unbounded();
        // The barrier keeps the second lookup arriving while the first
        // is still inside its build, exercising the in-flight wait path;
        // if scheduling is unlucky the second simply hits the inserted
        // entry — either way exactly one build must happen.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                cache.get_or_build(key(0, 0), || {
                    barrier.wait();
                    Ok(parts_for(&program))
                })
            });
            let b = scope.spawn(|| {
                barrier.wait();
                cache.get_or_build(key(0, 0), || Ok(parts_for(&program)))
            });
            let (parts_a, hit_a) = a.join().unwrap().unwrap();
            let (parts_b, hit_b) = b.join().unwrap().unwrap();
            assert!(Arc::ptr_eq(&parts_a.reference, &parts_b.reference));
            assert!(!hit_a, "the registering thread is the builder");
            assert!(hit_b, "the concurrent thread shares the build");
        });
        let s = cache.stats();
        assert_eq!(s.builds, 1, "one build despite concurrent lookups");
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn frequency_admission_protects_hot_entries_from_one_hit_wonders() {
        let program = kernel();
        let cache = ProfileCache::with_policy(1, AdmissionPolicy::Frequency);
        let build = || Ok(parts_for(&program));
        // A becomes hot: three lookups, frequency 3.
        for _ in 0..3 {
            cache.get_or_build(key(0, 0), build).unwrap();
        }
        // A cold scan over B: under LRU each build would evict A; under
        // frequency admission B bounces until it out-ranks A.
        let (_, hit) = cache.get_or_build(key(0, 1), build).unwrap();
        assert!(!hit, "B is built (the caller still gets its parts)");
        assert!(cache.contains(key(0, 0)), "hot entry survives the first scan");
        assert!(!cache.contains(key(0, 1)));
        cache.get_or_build(key(0, 1), build).unwrap();
        assert!(cache.contains(key(0, 0)), "freq(B)=2 < freq(A)=3 still bounces");
        // Third B lookup ties A's frequency — ties favor the newcomer.
        cache.get_or_build(key(0, 1), build).unwrap();
        assert!(cache.contains(key(0, 1)), "B earned its slot");
        assert!(!cache.contains(key(0, 0)));
        let s = cache.stats();
        assert_eq!(s.rejected, 2);
        assert_eq!(s.builds, 4, "one for A, three for B's climb");
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn lru_policy_never_rejects() {
        let program = kernel();
        let cache = ProfileCache::with_capacity(1);
        assert_eq!(cache.policy(), AdmissionPolicy::Lru);
        let build = || Ok(parts_for(&program));
        for key in [key(0, 0), key(0, 1), key(0, 2)] {
            cache.get_or_build(key, build).unwrap();
        }
        assert_eq!(cache.stats().rejected, 0);
        assert!(cache.contains(key(0, 2)), "LRU admits every build");
    }

    #[test]
    fn admission_policy_parses_flag_values() {
        assert_eq!(AdmissionPolicy::parse("lru"), Some(AdmissionPolicy::Lru));
        assert_eq!(AdmissionPolicy::parse("freq"), Some(AdmissionPolicy::Frequency));
        assert_eq!(
            AdmissionPolicy::parse("frequency"),
            Some(AdmissionPolicy::Frequency)
        );
        assert_eq!(AdmissionPolicy::parse("arc"), None);
        assert_eq!(AdmissionPolicy::Frequency.name(), "freq");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Lru);
    }

    #[test]
    fn frequency_admission_fills_an_unsaturated_cache() {
        let program = kernel();
        let cache = ProfileCache::with_policy(3, AdmissionPolicy::Frequency);
        let build = || Ok(parts_for(&program));
        for key in [key(0, 0), key(0, 1), key(0, 2)] {
            cache.get_or_build(key, build).unwrap();
        }
        // Below capacity nothing is ever rejected.
        assert_eq!(cache.stats().rejected, 0);
        assert_eq!(cache.len(), 3);
    }

    // The aging-boundary tests below drive `CacheInner` directly: the
    // sketch's interesting transitions sit at the decay interval and at
    // counter saturation, and reaching either through `get_or_build`
    // would cost thousands of instrumented executions.

    #[test]
    fn freq_sketch_halves_at_the_decay_interval_and_drops_zeroed_keys() {
        let cache = ProfileCache::with_policy(2, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        // 7 accesses for A, 1 for B, then pad lookups on A up to one
        // short of the interval: counts survive untouched until then.
        for _ in 0..7 {
            inner.note_access(key(0, 0));
        }
        inner.note_access(key(0, 1));
        while inner.lookups < FREQ_DECAY_INTERVAL - 1 {
            inner.note_access(key(0, 0));
        }
        // Every lookup so far except B's single one went to A.
        let a_before = inner.frequency(key(0, 0));
        assert_eq!(a_before, FREQ_DECAY_INTERVAL - 2);
        assert_eq!(inner.frequency(key(0, 1)), 1);

        // Lookup number FREQ_DECAY_INTERVAL triggers the halving: A's
        // count is (a_before + 1) / 2 rounded down, and B — halved from
        // 1 to 0 — is dropped from the sketch entirely (`retain`), so a
        // decayed-out key reads as frequency 0, not a stale 1.
        inner.note_access(key(0, 0));
        assert_eq!(inner.lookups, FREQ_DECAY_INTERVAL);
        assert_eq!(inner.frequency(key(0, 0)), (a_before + 1) / 2);
        assert_eq!(inner.frequency(key(0, 1)), 0);
        assert!(
            !inner.freq.iter().any(|(k, _)| *k == key(0, 1)),
            "a count halved to zero must leave the sketch"
        );
    }

    #[test]
    fn freq_sketch_counters_saturate_instead_of_wrapping() {
        let cache = ProfileCache::with_policy(2, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        inner.note_access(key(0, 0));
        // Force the counter to the brink; the next accesses must pin at
        // u64::MAX (saturating_add), never wrap to a tiny frequency that
        // would get the hottest key evicted.
        inner.freq[0].1 = u64::MAX - 1;
        inner.note_access(key(0, 0));
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX);
        inner.note_access(key(0, 0));
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX, "must saturate, not wrap");
        // And a saturated counter still ages: the next interval halving
        // brings it back into comparable range.
        while inner.lookups % FREQ_DECAY_INTERVAL != 0 {
            inner.note_access(key(0, 1));
        }
        assert_eq!(inner.frequency(key(0, 0)), u64::MAX / 2);
    }

    #[test]
    fn freq_sketch_admission_flips_across_a_halving() {
        // A hot key that stops being requested fades: after one halving
        // its count can tie with a steadily climbing newcomer, which then
        // gets admitted (ties favor the newcomer).
        let cache = ProfileCache::with_policy(1, AdmissionPolicy::Frequency);
        let mut inner = cache.lock();
        let program = kernel();
        inner.entries.push((key(0, 0), Arc::new(parts_for(&program))));
        for _ in 0..4 {
            inner.note_access(key(0, 0));
        }
        for _ in 0..3 {
            inner.note_access(key(0, 1));
        }
        assert!(!inner.admits(key(0, 1)), "freq 3 < 4 bounces pre-halving");
        while inner.lookups % FREQ_DECAY_INTERVAL != 0 {
            inner.note_access(key(0, 1));
        }
        // Post-halving, the resident key decayed with everything else
        // while the newcomer kept accumulating — admission flips.
        assert_eq!(inner.frequency(key(0, 0)), 2);
        assert!(inner.frequency(key(0, 1)) >= 2);
        assert!(inner.admits(key(0, 1)), "aged victim must lose its slot");
    }

    #[test]
    fn cache_stats_summary_reports_knobs_and_outcome() {
        let stats = CacheStats {
            capacity: 3,
            policy: AdmissionPolicy::Frequency,
            resident: 2,
            evictions: 4,
            rejected: 5,
            ..CacheStats::default()
        };
        assert_eq!(
            stats.summary(),
            "capacity 3 | policy freq | resident 2 | evictions 4 | rejected 5"
        );
        let unbounded = CacheStats::default();
        assert!(unbounded.summary().starts_with("capacity unbounded | policy lru"));
        assert_eq!(format!("{unbounded}"), unbounded.summary());
    }

    #[test]
    fn a_panicking_build_wakes_its_waiters_and_leaves_the_key_rebuildable() {
        let program = kernel();
        let cache = ProfileCache::unbounded();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            // Thread A registers the in-flight build, lets B join the
            // wait queue, then panics mid-build.
            let a = scope.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_build(key(0, 0), || -> Result<PairParts, CoreError> {
                        barrier.wait();
                        // Give B time to find the in-flight entry and
                        // block on it (worst case it misses the window
                        // and simply builds fresh — also correct).
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("injected build panic");
                    })
                }))
            });
            let b = scope.spawn(|| {
                barrier.wait();
                cache.get_or_build(key(0, 0), || Ok(parts_for(&program)))
            });
            assert!(a.join().unwrap().is_err(), "the panic propagates to its caller");
            // The waiter must come back — with the doomed build's error
            // or (if it raced past the cleanup) its own fresh build —
            // never hang on a publication that cannot arrive.
            match b.join().unwrap() {
                Err(e) => assert_eq!(e, CoreError::BuildPanicked),
                Ok((_, hit)) => assert!(hit || cache.contains(key(0, 0))),
            }
        });
        // No ghost in-flight entry survives: a later lookup rebuilds.
        let (_, _) = cache
            .get_or_build(key(0, 0), || Ok(parts_for(&program)))
            .expect("the key is rebuildable after the panic");
        assert!(cache.contains(key(0, 0)));
    }

    #[test]
    fn cache_quotas_resolve_defaults_and_overrides() {
        let quotas = CacheQuotas::per_catalog(3).with_override(1, 5).with_override(1, 2);
        assert_eq!(quotas.quota_for(0), 3);
        assert_eq!(quotas.quota_for(1), 2, "re-override replaces in place");
        assert_eq!(quotas.quota_for(7), 3);
        assert!(!quotas.is_unlimited());
        assert!(CacheQuotas::unlimited().is_unlimited());
        assert!(CacheQuotas::default().is_unlimited());
        assert_eq!(CacheQuotas::per_catalog(0), CacheQuotas::unlimited());
        let lifted = CacheQuotas::per_catalog(3).with_override(2, 0);
        assert_eq!(lifted.quota_for(2), 0, "a zero override lifts the cap");
        assert!(!lifted.is_unlimited(), "other catalogs stay capped");
    }

    #[test]
    fn quota_eviction_is_tenant_local() {
        let program = kernel();
        // Room for four entries globally, but each catalog may keep only
        // two resident: a churning tenant cycles within its own slots.
        let cache = ProfileCache::with_config(
            4,
            AdmissionPolicy::Lru,
            CacheQuotas::per_catalog(2),
        );
        let build = || Ok(parts_for(&program));
        // Cold tenant (catalog 1) settles two entries first.
        cache.get_or_build(PairKey::new(1, 0, 0), build).unwrap();
        cache.get_or_build(PairKey::new(1, 0, 1), build).unwrap();
        // Hot tenant (catalog 0) churns through three distinct pairs:
        // its third insert evicts ITS OWN oldest entry, never the cold
        // tenant's (under plain capacity-4 LRU it would have evicted
        // cold's (1,0,0)).
        for w in 0..3 {
            cache.get_or_build(PairKey::new(0, 0, w), build).unwrap();
        }
        assert!(!cache.contains(PairKey::new(0, 0, 0)), "hot's own LRU evicted");
        assert!(cache.contains(PairKey::new(0, 0, 1)));
        assert!(cache.contains(PairKey::new(0, 0, 2)));
        assert!(cache.contains(PairKey::new(1, 0, 0)), "cold tenant untouched");
        assert!(cache.contains(PairKey::new(1, 0, 1)));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.tenants[0].evictions, 1);
        assert_eq!(stats.tenants[1].evictions, 0);
        assert_eq!(stats.tenants[0].resident, 2);
        assert_eq!(stats.tenants[1].resident, 2);
        assert_eq!(stats.tenants[0].quota, 2);
    }

    #[test]
    fn frequency_admission_at_quota_competes_against_the_tenant_victim() {
        let program = kernel();
        // Global capacity would still admit (4 slots, 3 entries), but
        // catalog 0 is at its quota of 1 — the newcomer must out-rank
        // catalog 0's own resident, not the global LRU victim (which
        // belongs to catalog 1).
        let cache = ProfileCache::with_config(
            4,
            AdmissionPolicy::Frequency,
            CacheQuotas::per_catalog(1),
        );
        let build = || Ok(parts_for(&program));
        for _ in 0..3 {
            cache.get_or_build(PairKey::new(0, 0, 0), build).unwrap();
        }
        cache.get_or_build(PairKey::new(1, 0, 0), build).unwrap();
        // freq(candidate)=1 < freq(tenant victim)=3: bounced, counted
        // against catalog 0 only.
        cache.get_or_build(PairKey::new(0, 0, 1), build).unwrap();
        assert!(cache.contains(PairKey::new(0, 0, 0)), "hot resident survives");
        assert!(!cache.contains(PairKey::new(0, 0, 1)));
        assert!(cache.contains(PairKey::new(1, 0, 0)), "other tenant untouched");
        let stats = cache.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.tenants[0].rejected, 1);
        assert_eq!(stats.tenants[1].rejected, 0);
        // A second and third lookup of the candidate earn the slot (tie
        // admits), evicting the hot entry — still tenant-local.
        cache.get_or_build(PairKey::new(0, 0, 1), build).unwrap();
        cache.get_or_build(PairKey::new(0, 0, 1), build).unwrap();
        assert!(cache.contains(PairKey::new(0, 0, 1)), "earned its own tenant's slot");
        assert!(!cache.contains(PairKey::new(0, 0, 0)));
        assert!(cache.contains(PairKey::new(1, 0, 0)));
    }

    #[test]
    fn per_tenant_hits_and_misses_are_attributed_to_their_catalog() {
        let program = kernel();
        let cache = ProfileCache::unbounded();
        let build = || Ok(parts_for(&program));
        cache.get_or_build(PairKey::new(0, 0, 0), build).unwrap();
        cache.get_or_build(PairKey::new(0, 0, 0), build).unwrap();
        cache.get_or_build(PairKey::new(2, 0, 0), build).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.tenants.len(), 3, "indexed through the highest catalog");
        assert_eq!((stats.tenants[0].hits, stats.tenants[0].misses), (1, 1));
        assert_eq!((stats.tenants[1].hits, stats.tenants[1].misses), (0, 0));
        assert_eq!((stats.tenants[2].hits, stats.tenants[2].misses), (0, 1));
        assert!(stats.tenants[0].hit_rate() > 0.49);
        assert_eq!(stats.tenants[1].hit_rate(), 0.0);
        assert_eq!(stats.hits, 1, "global counters still aggregate");
        // The summary mentions quotas only when one is configured.
        assert!(!stats.summary().contains("quotas"));
        let quoted = ProfileCache::with_config(
            0,
            AdmissionPolicy::Lru,
            CacheQuotas::per_catalog(4),
        );
        quoted.get_or_build(PairKey::new(0, 0, 0), build).unwrap();
        assert!(quoted.stats().summary().contains("quotas [0:1/4]"));
    }

    #[test]
    fn bounded_or_quotad_caches_refuse_to_shard() {
        // Sharding is exact only when eviction/admission are inert, so
        // any bound or quota pins the cache to one shard — whatever the
        // caller asks for.
        assert_eq!(ProfileCache::with_capacity(2).with_shard_count(8).shard_count(), 1);
        let quoted = ProfileCache::with_config(
            0,
            AdmissionPolicy::Lru,
            CacheQuotas::per_catalog(2),
        );
        assert_eq!(quoted.shard_count(), 1);
        assert_eq!(quoted.with_shard_count(8).shard_count(), 1);
        assert_eq!(ProfileCache::unbounded().with_shard_count(4).shard_count(), 4);
        assert!(ProfileCache::unbounded().shard_count() >= 1, "auto-sharding picks >= 1");
        assert_eq!(
            ProfileCache::unbounded().with_shard_count(0).shard_count(),
            1,
            "zero clamps to one shard"
        );
    }

    #[test]
    fn sharded_cache_counters_aggregate_exactly_across_shards() {
        let program = kernel();
        let cache = ProfileCache::unbounded().with_shard_count(4);
        let build = || Ok(parts_for(&program));
        // Six distinct pairs across two catalogs, each looked up twice:
        // the keys land on different shards, yet the aggregated stats
        // must read exactly like the single-lock cache's.
        let keys = [
            PairKey::new(0, 0, 0),
            PairKey::new(0, 0, 1),
            PairKey::new(0, 1, 0),
            PairKey::new(1, 0, 0),
            PairKey::new(1, 0, 1),
            PairKey::new(1, 2, 2),
        ];
        for _ in 0..2 {
            for key in keys {
                cache.get_or_build(key, build).unwrap();
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.builds, 6, "one build per distinct pair");
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.resident, 6);
        assert_eq!(cache.len(), 6);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.rejected, 0);
        for key in keys {
            assert!(cache.contains(key));
        }
        // Tenant attribution survives the shard split.
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!((stats.tenants[0].hits, stats.tenants[0].misses), (3, 3));
        assert_eq!((stats.tenants[1].hits, stats.tenants[1].misses), (3, 3));
        assert_eq!(stats.tenants[0].resident, 3);
        assert_eq!(stats.tenants[1].resident, 3);
        cache.clear();
        assert!(cache.is_empty(), "clear drains every shard");
        assert_eq!(cache.stats().hits, 6, "counters survive a clear");
    }

    #[test]
    fn sharded_cache_survives_a_multithread_hammer() {
        let program = kernel();
        let cache = ProfileCache::unbounded().with_shard_count(4);
        // 8 threads × 2 rounds over 4 shared pairs + 3 thread-private
        // pairs each: 28 distinct pairs, 112 lookups. Unbounded never
        // evicts and always admits, so the aggregated counters are
        // EXACT even under contention: one miss (and one build) per
        // distinct pair — concurrent same-key lookups share the
        // in-flight build and count as hits — and everything else hits.
        const THREADS: usize = 8;
        const ROUNDS: usize = 2;
        let shared: Vec<PairKey> = (0..4).map(|w| key(0, w)).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let shared = &shared;
                let program = &program;
                let cache = &cache;
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        for key in shared {
                            cache.get_or_build(*key, || Ok(parts_for(program))).unwrap();
                        }
                        for w in 0..3 {
                            let private = PairKey::new(1, t, w);
                            cache.get_or_build(private, || Ok(parts_for(program))).unwrap();
                        }
                    }
                });
            }
        });
        let distinct = 4 + THREADS * 3;
        let lookups = (THREADS * ROUNDS * 7) as u64;
        let stats = cache.stats();
        assert_eq!(stats.builds, distinct as u64, "at most one build per pair");
        assert_eq!(stats.misses, distinct as u64);
        assert_eq!(stats.hits, lookups - distinct as u64);
        assert_eq!(stats.resident, distinct);
        assert_eq!(cache.len(), distinct);
        for key in &shared {
            assert!(cache.contains(*key));
        }
        for t in 0..THREADS {
            for w in 0..3 {
                assert!(cache.contains(PairKey::new(1, t, w)));
            }
        }
    }

    #[test]
    fn a_panicking_build_on_the_sharded_path_wakes_waiters() {
        let program = kernel();
        let cache = ProfileCache::unbounded().with_shard_count(4);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_build(key(0, 0), || -> Result<PairParts, CoreError> {
                        barrier.wait();
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("injected build panic");
                    })
                }))
            });
            let b = scope.spawn(|| {
                barrier.wait();
                cache.get_or_build(key(0, 0), || Ok(parts_for(&program)))
            });
            assert!(a.join().unwrap().is_err());
            // The FlightGuard must clean the in-flight entry out of the
            // KEY'S OWN shard — a stale entry (or one cleaned from the
            // wrong shard) would leave B blocked forever.
            match b.join().unwrap() {
                Err(e) => assert_eq!(e, CoreError::BuildPanicked),
                Ok((_, hit)) => assert!(hit || cache.contains(key(0, 0))),
            }
        });
        let (_, _) = cache
            .get_or_build(key(0, 0), || Ok(parts_for(&program)))
            .expect("the key is rebuildable after the panic");
        assert!(cache.contains(key(0, 0)));
    }

    #[test]
    fn shared_sessions_reuse_the_reference() {
        let program = kernel();
        let machine = MachineModel::ivy_bridge();
        let cfg = Arc::new(Cfg::build(&program));
        let parts =
            PairParts::collect(&machine, &program, &RunConfig::default(), cfg).unwrap();
        let mut session = parts.session(&machine, &program, RunConfig::default());
        let total = session.reference().unwrap().total_instructions();
        assert_eq!(total, parts.reference.total_instructions());
    }
}
