//! Sampled code coverage and FDO-input quality.
//!
//! §6.1: LBR-based methods "could serve as input to PGO, code coverage or
//! other sensitive optimization techniques" (cf. THeME \[33\], which tests
//! by hardware monitoring). This module evaluates two consumers:
//!
//! * **coverage** — which basic blocks does a sampled profile believe
//!   executed? Precision/recall against the instrumented truth;
//! * **hot-edge recovery** — can the profile name the hottest call edges
//!   (the input an inliner needs)? Measured as the overlap of the top-k
//!   estimated call targets with the true top-k.

use crate::profile::EstimatedProfile;
use ct_instrument::ReferenceProfile;
use serde::{Deserialize, Serialize};

/// Precision/recall of block-level coverage from a sampled profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Blocks the profile claims executed that really executed / claimed.
    pub precision: f64,
    /// Truly executed blocks the profile found / truly executed.
    pub recall: f64,
    pub claimed: usize,
    pub executed: usize,
}

/// Computes block coverage of `estimate` against the reference.
///
/// A block "claims" execution when its estimated mass is positive.
///
/// # Panics
///
/// Panics if the profiles index different CFGs (length mismatch).
#[must_use]
pub fn block_coverage(estimate: &EstimatedProfile, reference: &ReferenceProfile) -> Coverage {
    assert_eq!(estimate.bb_mass.len(), reference.bb_instructions.len());
    let mut tp = 0usize;
    let mut claimed = 0usize;
    let mut executed = 0usize;
    for (&est, &exact) in estimate.bb_mass.iter().zip(&reference.bb_instructions) {
        let c = est > 0.0;
        let e = exact > 0;
        claimed += usize::from(c);
        executed += usize::from(e);
        tp += usize::from(c && e);
    }
    Coverage {
        precision: if claimed == 0 {
            1.0
        } else {
            tp as f64 / claimed as f64
        },
        recall: if executed == 0 {
            1.0
        } else {
            tp as f64 / executed as f64
        },
        claimed,
        executed,
    }
}

/// Overlap of the top-`k` functions by estimated mass with the true
/// top-`k` (order-insensitive; the inliner cares about membership).
#[must_use]
pub fn hot_function_overlap(
    estimate: &EstimatedProfile,
    reference: &ReferenceProfile,
    k: usize,
) -> f64 {
    let est: std::collections::HashSet<String> = estimate.top_functions(k).into_iter().collect();
    let truth: Vec<String> = reference
        .function_ranking()
        .into_iter()
        .take(k)
        .map(|(n, _)| n)
        .collect();
    if truth.is_empty() {
        return 1.0;
    }
    truth.iter().filter(|n| est.contains(*n)).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodKind, MethodOptions};
    use crate::Session;
    use ct_sim::MachineModel;

    #[test]
    fn lbr_coverage_beats_classic_recall() {
        // Sparse sampling sees few of g4box's many short blocks; each LBR
        // stack witnesses dozens, so its recall must be far higher at the
        // same sample budget.
        let program = ct_workloads::kernels::g4box(60_000);
        let machine = MachineModel::ivy_bridge();
        let opts = MethodOptions::default(); // sparse: ~100 samples
        let mut session = Session::new(&machine, &program);
        let reference = session.reference().unwrap().clone();
        let classic = session
            .run_method(
                &MethodKind::Classic.instantiate(&machine, &opts).unwrap(),
                13,
            )
            .unwrap();
        let lbr = session
            .run_method(&MethodKind::Lbr.instantiate(&machine, &opts).unwrap(), 13)
            .unwrap();
        let c = block_coverage(&classic.profile, &reference);
        let l = block_coverage(&lbr.profile, &reference);
        assert!(
            l.recall > c.recall,
            "LBR recall {:.2} vs classic {:.2}",
            l.recall,
            c.recall
        );
        assert!(
            l.recall > 0.9,
            "LBR should see nearly all blocks: {:.2}",
            l.recall
        );
        // Neither method claims blocks that never ran (precision stays
        // high; skid can leak into an unexecuted block at worst rarely).
        assert!(c.precision > 0.8);
        assert!(l.precision > 0.95);
    }

    #[test]
    fn hot_function_overlap_is_high_for_good_methods() {
        let apps = ct_workloads::applications(0.05);
        let w = apps.iter().find(|w| w.name == "fullcms").unwrap();
        let machine = MachineModel::ivy_bridge();
        let mut session = Session::with_run_config(&machine, &w.program, w.run_config.clone());
        let reference = session.reference().unwrap().clone();
        let opts = MethodOptions::fast();
        let lbr = session
            .run_method(&MethodKind::Lbr.instantiate(&machine, &opts).unwrap(), 8)
            .unwrap();
        let overlap = hot_function_overlap(&lbr.profile, &reference, 10);
        // Membership is recoverable even though exact order is not (§5.2).
        assert!(overlap >= 0.8, "top-10 membership overlap {overlap}");
    }

    #[test]
    fn coverage_edge_cases() {
        let est = EstimatedProfile {
            bb_mass: vec![1.0, 0.0, 2.0],
            function_mass: vec![],
            function_names: vec![],
        };
        let reference = ReferenceProfile {
            bb_instructions: vec![5, 0, 0],
            bb_entries: vec![1, 0, 0],
            function_instructions: vec![],
            function_names: vec![],
            total_instructions: 5,
            taken_branches: 0,
            cycles: 1,
        };
        let c = block_coverage(&est, &reference);
        assert_eq!(c.claimed, 2);
        assert_eq!(c.executed, 1);
        assert!((c.precision - 0.5).abs() < 1e-9);
        assert!((c.recall - 1.0).abs() < 1e-9);
    }
}
