//! The parallel grid-evaluation engine behind the table harness.
//!
//! The paper's Tables 1 and 2 are a machine × workload × method × repeats
//! grid. Evaluating it serially wastes both dimensions of hardware
//! parallelism *and* re-drives the most expensive step — the instrumented
//! reference execution — once per consumer. This module fixes both:
//!
//! * a [`GridRunner`] fans independent cells across
//!   [`std::thread::scope`] workers pulling from a shared work queue;
//! * each `(machine, workload)` pair's [`ReferenceProfile`] is collected
//!   exactly once (phase 1, itself parallel) and shared via [`Arc`] with
//!   every method evaluation of that pair (phase 2) through
//!   [`Session::with_reference`];
//! * per-run seeds derive from the cell coordinates via [`cell_seed`], so
//!   results are a pure function of the grid shape and base seed — output
//!   is byte-identical no matter how many threads run or how the queue
//!   interleaves;
//! * per-cell progress is reported on stderr when enabled, keeping stdout
//!   (tables, JSON) deterministic.
//!
//! # Examples
//!
//! ```
//! use countertrust::grid::{GridRunner, WorkloadSpec};
//! use countertrust::methods::MethodOptions;
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec {
//!     name: "demo",
//!     program: &program,
//!     run_config: &run_config,
//! }];
//! let machines = [MachineModel::ivy_bridge()];
//! let evals = GridRunner::new().threads(2).run_standard(
//!     &machines,
//!     &workloads,
//!     &MethodOptions::fast(),
//!     2,
//!     1_000,
//! );
//! assert_eq!(evals.len(), 1);
//! assert!(!evals[0].methods.is_empty());
//! ```

use crate::cache::PairParts;
use crate::error::CoreError;
use crate::evaluate::{evaluate_method_with_seeds, ErrorStats, Evaluation};
use crate::methods::{MethodInstance, MethodKind, MethodOptions};
use crate::session::Session;
use ct_instrument::ReferenceProfile;
use ct_isa::{Cfg, Program};
use ct_sim::{MachineModel, RunConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A borrowed workload: everything the engine needs to run one
/// `(machine, workload)` pair.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec<'a> {
    /// Name used in [`Evaluation`] rows and progress lines.
    pub name: &'a str,
    /// The program to execute.
    pub program: &'a Program,
    /// Its run configuration (fuel, arguments).
    pub run_config: &'a RunConfig,
}

/// A labeled, machine-resolved method — one column of the grid.
///
/// The label defaults to the method family's table label but ablations
/// override it to describe the concrete configuration (e.g.
/// `"prime randomized @4001"`), since they evaluate several variants of
/// the same family side by side.
#[derive(Debug, Clone)]
pub struct GridMethod {
    /// Result label, stored into [`ErrorStats::method`].
    pub label: String,
    /// The resolved sampler configuration and attribution rule.
    pub instance: MethodInstance,
}

impl GridMethod {
    /// The standard table columns: every family of [`MethodKind::ALL`]
    /// the machine supports, labeled by family.
    #[must_use]
    pub fn standard(machine: &MachineModel, opts: &MethodOptions) -> Vec<GridMethod> {
        MethodKind::ALL
            .iter()
            .filter_map(|kind| {
                kind.instantiate(machine, opts).map(|instance| GridMethod {
                    label: kind.label().to_string(),
                    instance,
                })
            })
            .collect()
    }
}

/// Context handed to [`GridRunner::map_pairs`] closures: one
/// `(machine, workload)` pair plus its shared CFG and reference profile.
pub struct PairCtx<'a> {
    /// The machine under test.
    pub machine: &'a MachineModel,
    /// Index of the machine in the `machines` slice.
    pub machine_index: usize,
    /// The workload under test.
    pub workload: WorkloadSpec<'a>,
    /// Index of the workload in the `workloads` slice.
    pub workload_index: usize,
    /// The workload's control-flow graph, built once and shared.
    pub cfg: Arc<Cfg>,
    /// The pair's reference profile, collected once and shared.
    pub reference: Arc<ReferenceProfile>,
}

impl<'a> PairCtx<'a> {
    /// Builds a context from the pair's shared [`PairParts`] — the one
    /// construction path for both the grid and serving layers.
    #[must_use]
    pub fn from_parts(
        machine: &'a MachineModel,
        machine_index: usize,
        workload: WorkloadSpec<'a>,
        workload_index: usize,
        parts: &PairParts,
    ) -> Self {
        Self {
            machine,
            machine_index,
            workload,
            workload_index,
            cfg: parts.cfg.clone(),
            reference: parts.reference.clone(),
        }
    }

    /// The pair's shared parts (CFG + reference profile).
    #[must_use]
    pub fn parts(&self) -> PairParts {
        PairParts {
            cfg: self.cfg.clone(),
            reference: self.reference.clone(),
        }
    }

    /// A session over this pair that reuses the shared CFG and reference
    /// profile (no instrumented re-execution, no CFG rebuild).
    #[must_use]
    pub fn session(&self) -> Session<'a> {
        self.parts().session(
            self.machine,
            self.workload.program,
            self.workload.run_config.clone(),
        )
    }
}

/// Derives the seed of one sampling run from its grid coordinates.
///
/// Seeds are a pure function of `(base_seed, machine, workload, method,
/// repeat)` — never of scheduling order — which is what makes parallel
/// grid output byte-identical to serial output.
#[must_use]
pub fn cell_seed(
    base_seed: u64,
    machine: usize,
    workload: usize,
    method: usize,
    repeat: usize,
) -> u64 {
    let mut h = base_seed ^ 0xD6E8_FEB8_6659_FD93;
    for v in [
        machine as u64,
        workload as u64,
        method as u64,
        repeat as u64,
    ] {
        h ^= v;
        h = mix64(h);
    }
    h
}

/// One CFG per workload, shared by every session over that workload
/// (the CFG depends only on the program, not the machine or method).
fn workload_cfgs(workloads: &[WorkloadSpec<'_>]) -> Vec<Arc<Cfg>> {
    workloads
        .iter()
        .map(|w| Arc::new(Cfg::build(w.program)))
        .collect()
}

/// splitmix64 finalizer.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The parallel grid evaluator. Construct, configure with the builder
/// methods, then call [`GridRunner::run_standard`], [`GridRunner::run`]
/// or [`GridRunner::map_pairs`].
#[derive(Debug, Clone)]
pub struct GridRunner {
    threads: usize,
    progress: bool,
}

impl Default for GridRunner {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            progress: false,
        }
    }
}

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..total)` across `workers` scoped threads pulling indices
/// from a shared atomic queue — the work-distribution primitive behind
/// both the grid engine and the serving layer ([`crate::serve`]), and
/// the hook for new parallel consumers that don't fit the grid shape.
///
/// Serial when one worker (or one task) suffices — no thread is ever
/// spawned in that case, keeping single-threaded runs a true serial
/// baseline. Every index in `0..total` is visited exactly once; nothing
/// is guaranteed about ordering, so keep outputs index-addressed.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let sum = AtomicUsize::new(0);
/// countertrust::grid::for_each_index(4, 10, |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 45);
/// ```
pub fn for_each_index<F: Fn(usize) + Sync>(workers: usize, total: usize, f: F) {
    let workers = workers.min(total);
    if workers <= 1 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                f(i);
            });
        }
    });
}

impl GridRunner {
    /// A runner using all available hardware parallelism, progress off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count; `0` restores the default (available
    /// hardware parallelism).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { default_threads() } else { n };
        self
    }

    /// Enables or disables per-cell progress reporting on stderr.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Phase 1: collects every `(machine, workload)` pair's reference
    /// profile in parallel, machine-major (`pair = machine * W + workload`).
    ///
    /// Failures are reported once here, on stderr; downstream consumers
    /// skip failed pairs silently.
    pub fn collect_references(
        &self,
        machines: &[MachineModel],
        workloads: &[WorkloadSpec<'_>],
    ) -> Vec<Result<Arc<ReferenceProfile>, CoreError>> {
        self.collect_pair_parts(machines, workloads, &workload_cfgs(workloads))
            .into_iter()
            .map(|r| r.map(|parts| parts.reference))
            .collect()
    }

    /// Phase 1 internals: one [`PairParts`] per pair, machine-major. The
    /// serving layer amortizes the same construction through its cache
    /// instead of a one-shot vector.
    fn collect_pair_parts(
        &self,
        machines: &[MachineModel],
        workloads: &[WorkloadSpec<'_>],
        cfgs: &[Arc<Cfg>],
    ) -> Vec<Result<PairParts, CoreError>> {
        let total = machines.len() * workloads.len();
        let slots: Vec<Mutex<Option<Result<PairParts, CoreError>>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let done = AtomicUsize::new(0);
        self.for_each_index(total, |i| {
            let (m, w) = (i / workloads.len(), i % workloads.len());
            let machine = &machines[m];
            let workload = &workloads[w];
            let result = PairParts::collect(
                machine,
                workload.program,
                workload.run_config,
                cfgs[w].clone(),
            );
            if let Err(e) = &result {
                eprintln!(
                    "warning: {} / {}: reference collection failed: {e}",
                    machine.name, workload.name
                );
            }
            *slots[i].lock().expect("no poisoned slots") = Some(result);
            if self.progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [ref {d}/{total}] {} / {}",
                    machine.name, workload.name
                );
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("no poisoned slots")
                    .expect("every index visited")
            })
            .collect()
    }

    /// Runs the full grid with the standard method columns
    /// ([`GridMethod::standard`]) — the Table 1/2 workhorse.
    #[must_use]
    pub fn run_standard(
        &self,
        machines: &[MachineModel],
        workloads: &[WorkloadSpec<'_>],
        opts: &MethodOptions,
        repeats: usize,
        base_seed: u64,
    ) -> Vec<Evaluation> {
        self.run(machines, workloads, |m| GridMethod::standard(m, opts), repeats, base_seed)
    }

    /// Runs the full grid with custom method columns per machine.
    ///
    /// `resolve_methods` is called once per machine on the calling thread
    /// (its output order defines the method order of every
    /// [`Evaluation`]); the resulting `(machine, workload, method)` cells
    /// are then evaluated in parallel. Methods whose evaluation fails are
    /// skipped with a warning on stderr, matching the holes in the
    /// paper's tables. Results come back machine-major, workload-minor —
    /// independent of thread count and scheduling.
    #[must_use]
    pub fn run<F>(
        &self,
        machines: &[MachineModel],
        workloads: &[WorkloadSpec<'_>],
        resolve_methods: F,
        repeats: usize,
        base_seed: u64,
    ) -> Vec<Evaluation>
    where
        F: Fn(&MachineModel) -> Vec<GridMethod>,
    {
        let methods: Vec<Vec<GridMethod>> = machines.iter().map(resolve_methods).collect();
        let cfgs = workload_cfgs(workloads);
        let pairs = self.collect_pair_parts(machines, workloads, &cfgs);

        // One task per (machine, workload, method) cell, in output order.
        let mut tasks = Vec::new();
        for m in 0..machines.len() {
            for w in 0..workloads.len() {
                for k in 0..methods[m].len() {
                    tasks.push((m, w, k));
                }
            }
        }
        let total = tasks.len();
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ErrorStats>>> =
            (0..total).map(|_| Mutex::new(None)).collect();

        self.for_each_index(total, |t| {
            let (m, w, k) = tasks[t];
            let machine = &machines[m];
            let workload = &workloads[w];
            let grid_method = &methods[m][k];
            // Reference failures were already reported by phase 1; the
            // pair's cells are simply skipped.
            if let Ok(parts) = &pairs[m * workloads.len() + w] {
                let mut session =
                    parts.session(machine, workload.program, workload.run_config.clone());
                let seeds: Vec<u64> = (0..repeats)
                    .map(|r| cell_seed(base_seed, m, w, k, r))
                    .collect();
                match evaluate_method_with_seeds(
                    &mut session,
                    &grid_method.instance,
                    &grid_method.label,
                    &seeds,
                ) {
                    Ok(stats) => {
                        *slots[t].lock().expect("no poisoned slots") = Some(stats);
                    }
                    Err(e) => eprintln!(
                        "warning: {} / {} / {}: {e}",
                        machine.name, workload.name, grid_method.label
                    ),
                }
            }
            if self.progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{d}/{total}] {} / {} / {}",
                    machine.name, workload.name, grid_method.label
                );
            }
        });

        // Reassemble in deterministic machine-major order.
        let mut slot_iter = slots.into_iter();
        let mut out = Vec::with_capacity(machines.len() * workloads.len());
        for (m, machine) in machines.iter().enumerate() {
            for workload in workloads {
                let methods = methods[m]
                    .iter()
                    .filter_map(|_| {
                        slot_iter
                            .next()
                            .expect("one slot per task")
                            .into_inner()
                            .expect("no poisoned slots")
                    })
                    .collect();
                out.push(Evaluation {
                    machine: machine.name.clone(),
                    workload: workload.name.to_string(),
                    methods,
                });
            }
        }
        out
    }

    /// Parallel map over `(machine, workload)` pairs with the reference
    /// profile pre-collected and shared — for experiments that need more
    /// than [`ErrorStats`] per cell (e.g. function rankings).
    ///
    /// Returns one entry per pair, machine-major; `None` marks pairs whose
    /// reference collection failed (warned on stderr).
    #[must_use]
    pub fn map_pairs<R, F>(
        &self,
        machines: &[MachineModel],
        workloads: &[WorkloadSpec<'_>],
        f: F,
    ) -> Vec<Option<R>>
    where
        F: Fn(PairCtx<'_>) -> R + Sync,
        R: Send,
    {
        let cfgs = workload_cfgs(workloads);
        let pairs = self.collect_pair_parts(machines, workloads, &cfgs);
        let total = machines.len() * workloads.len();
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        self.for_each_index(total, |i| {
            let (m, w) = (i / workloads.len(), i % workloads.len());
            let machine = &machines[m];
            let workload = workloads[w];
            // Reference failures were already reported by phase 1.
            if let Ok(parts) = &pairs[i] {
                let result = f(PairCtx::from_parts(machine, m, workload, w, parts));
                *slots[i].lock().expect("no poisoned slots") = Some(result);
            }
            if self.progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{d}/{total}] {} / {}",
                    machine.name, workload.name
                );
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("no poisoned slots"))
            .collect()
    }

    /// Runs `f(0..total)` across the configured worker threads — see
    /// [`for_each_index`].
    fn for_each_index<F: Fn(usize) + Sync>(&self, total: usize, f: F) {
        for_each_index(self.threads, total, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    fn kernel() -> Program {
        assemble(
            "k",
            r#"
            .func main
                movi r1, 30000
            top:
                addi r2, r2, 1
                addi r3, r3, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap()
    }

    fn specs<'a>(program: &'a Program, run_config: &'a RunConfig) -> Vec<WorkloadSpec<'a>> {
        vec![WorkloadSpec {
            name: "k",
            program,
            run_config,
        }]
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let program = kernel();
        let run_config = RunConfig::default();
        let workloads = specs(&program, &run_config);
        let machines = [MachineModel::ivy_bridge(), MachineModel::westmere()];
        let opts = MethodOptions::fast();
        let serial =
            GridRunner::new()
                .threads(1)
                .run_standard(&machines, &workloads, &opts, 3, 42);
        let parallel =
            GridRunner::new()
                .threads(8)
                .run_standard(&machines, &workloads, &opts, 3, 42);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.methods.len(), b.methods.len());
            for (x, y) in a.methods.iter().zip(&b.methods) {
                assert_eq!(x.method, y.method);
                assert_eq!(x.runs, y.runs);
                assert_eq!(x.mean_samples, y.mean_samples);
            }
        }
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for m in 0..3 {
            for w in 0..4 {
                for k in 0..7 {
                    for r in 0..5 {
                        assert!(seen.insert(cell_seed(1_000, m, w, k, r)));
                    }
                }
            }
        }
        assert_eq!(cell_seed(1, 2, 3, 4, 5), cell_seed(1, 2, 3, 4, 5));
        assert_ne!(cell_seed(1, 2, 3, 4, 5), cell_seed(2, 2, 3, 4, 5));
    }

    // NOTE: the "reference collected exactly once per pair" guarantee is
    // asserted via ct_instrument::collection_count() in
    // tests/integration_grid.rs, which owns its whole test binary — the
    // counter is process-global, so asserting exact deltas here would
    // race against sibling unit tests collecting references in parallel.

    #[test]
    fn map_pairs_with_no_machines_is_empty() {
        let program = kernel();
        let run_config = RunConfig::default();
        let workloads = specs(&program, &run_config);
        let results =
            GridRunner::new()
                .threads(4)
                .map_pairs(&[], &workloads, |ctx| ctx.machine_index);
        assert!(results.is_empty());
    }

    #[test]
    fn map_pairs_with_no_workloads_is_empty() {
        let machines = [MachineModel::ivy_bridge()];
        let results = GridRunner::new()
            .threads(4)
            .map_pairs(&machines, &[], |ctx| ctx.workload_index);
        assert!(results.is_empty());
    }

    #[test]
    fn map_pairs_single_pair_runs_serially_and_in_place() {
        let program = kernel();
        let run_config = RunConfig::default();
        let workloads = specs(&program, &run_config);
        let machines = [MachineModel::westmere()];
        // One pair with many threads: the engine must not spawn more
        // workers than tasks, and indices must be (0, 0).
        let results = GridRunner::new().threads(16).map_pairs(
            &machines,
            &workloads,
            |ctx| {
                (
                    ctx.machine_index,
                    ctx.workload_index,
                    ctx.reference.total_instructions(),
                )
            },
        );
        assert_eq!(results.len(), 1);
        let (m, w, total) = results[0].expect("single pair collects");
        assert_eq!((m, w), (0, 0));
        assert!(total > 0);
    }

    #[test]
    fn map_pairs_shares_references_and_keeps_order() {
        let program = kernel();
        let run_config = RunConfig::default();
        let workloads = specs(&program, &run_config);
        let machines = [MachineModel::ivy_bridge(), MachineModel::magny_cours()];
        let results = GridRunner::new().threads(3).map_pairs(
            &machines,
            &workloads,
            |ctx| {
                (
                    ctx.machine.name.clone(),
                    ctx.reference.total_instructions(),
                )
            },
        );
        assert_eq!(results.len(), 2);
        let (name0, total0) = results[0].as_ref().unwrap();
        assert_eq!(name0, &machines[0].name);
        assert!(*total0 > 0);
        let (name1, _) = results[1].as_ref().unwrap();
        assert_eq!(name1, &machines[1].name);
    }
}
