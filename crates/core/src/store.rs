//! Persistent, versioned snapshots of [`PairParts`] — the warm-start
//! store behind [`crate::cache::ProfileCache`]'s optional snapshot
//! directory.
//!
//! A reference profile is the expensive artifact of this system: every
//! [`PairParts::collect`] is one full instrumented execution. This
//! module gives that artifact a deterministic on-disk form so a
//! restarted (or freshly spawned) server reloads its references instead
//! of re-executing them — and, because a mis-decoded profile would
//! silently corrupt every response sharing it, the format is strict:
//! wrong magic, unknown versions, fingerprint mismatches, truncation
//! and checksum failures are all rejected with a typed [`StoreError`],
//! never a panic and never a silently wrong profile.
//!
//! # Snapshot layout (version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  "CTSNAP\r\n"              (SNAPSHOT_MAGIC)
//!      8     4  format version, u32 LE           (SNAPSHOT_VERSION)
//!     12     8  pair fingerprint, u64 LE         (pair_fingerprint)
//!     20     8  CFG section length, u64 LE
//!     28     …  CFG section (canonical JSON of ct_isa::Cfg)
//!      …     8  profile section length, u64 LE
//!      …     …  profile section (canonical JSON of ReferenceProfile)
//!    end     8  FNV-1a checksum of ALL preceding bytes, u64 LE
//! ```
//!
//! Sections carry the vendored-serde JSON of the structures; `Value`
//! maps preserve insertion order, so encoding is byte-deterministic —
//! encoding the same parts twice yields identical bytes, which is what
//! makes the trailing checksum and golden-file pinning sound.
//!
//! # Validation order
//!
//! [`SnapshotReader::open`] checks magic, then version, then the
//! trailing checksum; [`SnapshotReader::decode`] additionally compares
//! the header fingerprint against the caller's expectation before
//! touching either section. The precedence is deliberate and pinned by
//! the corruption-matrix tests:
//!
//! * a flipped magic byte is [`StoreError::BadMagic`];
//! * a flipped version byte is [`StoreError::UnsupportedVersion`];
//! * a flip anywhere else — fingerprint field, either section, or the
//!   checksum trailer itself — is [`StoreError::ChecksumMismatch`];
//! * [`StoreError::FingerprintMismatch`] therefore means exactly one
//!   thing: an *intact* snapshot of the wrong catalog generation (the
//!   machine model, program, run config or method options changed), the
//!   invalidation rule that keeps a stale store from ever serving.
//!
//! # Example
//!
//! ```
//! use countertrust::cache::PairParts;
//! use countertrust::store::{SnapshotReader, SnapshotWriter};
//! use ct_isa::{asm::assemble, Cfg};
//! use ct_sim::{MachineModel, RunConfig};
//! use std::sync::Arc;
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 200\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let cfg = Arc::new(Cfg::build(&program));
//! let machine = MachineModel::ivy_bridge();
//! let parts =
//!     PairParts::collect(&machine, &program, &RunConfig::default(), cfg).unwrap();
//!
//! let bytes = SnapshotWriter::encode(0xFEED, &parts);
//! assert_eq!(bytes, SnapshotWriter::encode(0xFEED, &parts), "deterministic");
//! let back = SnapshotReader::decode(&bytes, 0xFEED).unwrap();
//! assert_eq!(back.reference.total_instructions, parts.reference.total_instructions);
//! assert!(SnapshotReader::decode(&bytes, 0xBEEF).is_err(), "stale fingerprint");
//! ```

use crate::cache::PairParts;
use crate::methods::MethodOptions;
use ct_instrument::ReferenceProfile;
use ct_isa::{Cfg, Program};
use ct_sim::{MachineModel, RunConfig};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The 8-byte magic opening every snapshot. `\r\n` catches text-mode
/// newline mangling the same way PNG's magic does.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CTSNAP\r\n";

/// The current snapshot format version. Readers reject anything else —
/// format evolution means a bump here plus an explicit migration, never
/// a guess.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header size: magic + version + fingerprint.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Trailer size: the u64 checksum.
const TRAILER_LEN: usize = 8;

/// Every way reading or writing a snapshot can fail. Corrupt or stale
/// snapshots are *expected* inputs (a crashed writer, a changed
/// catalog): each failure is typed so the cache can count and fall back
/// to a cold build, and none of them ever panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The snapshot is intact but was written for a different pair
    /// generation (catalog name, machine, program, run config or method
    /// options changed) — the staleness-invalidation rejection.
    FingerprintMismatch {
        /// The fingerprint the caller derived from the live catalog.
        expected: u64,
        /// The fingerprint recorded in the snapshot header.
        found: u64,
    },
    /// Fewer bytes than the structure demands (header, trailer or a
    /// section running past the end).
    Truncated {
        /// Bytes the current parse step needed.
        needed: usize,
        /// Bytes actually available to it.
        available: usize,
    },
    /// The trailing FNV-1a checksum does not match the preceding bytes —
    /// a bit flip or partial overwrite anywhere in the body.
    ChecksumMismatch {
        /// The checksum stored in the trailer.
        stored: u64,
        /// The checksum recomputed over the body.
        computed: u64,
    },
    /// A section passed the checksum but its JSON did not decode into
    /// the expected structure (or trailing garbage followed the last
    /// section).
    Decode(String),
    /// Filesystem failure reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a snapshot (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match the live catalog \
                 ({expected:#018x}) — stale snapshot"
            ),
            Self::Truncated { needed, available } => {
                write!(f, "snapshot truncated (needed {needed} bytes, have {available})")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            Self::Decode(e) => write!(f, "snapshot section did not decode: {e}"),
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// 64-bit FNV-1a — the snapshot checksum (and fingerprint) hash.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fingerprint naming one pair *generation*: a hash of everything a
/// reference profile is a pure function of — the catalog name, the
/// machine model, the program, the run configuration and the method
/// options. Equal fingerprints mean the deterministic pipeline would
/// rebuild byte-identical parts, so a snapshot carrying this
/// fingerprint may substitute for the build; any change to any input
/// moves the fingerprint and invalidates every old snapshot.
#[must_use]
pub fn pair_fingerprint(
    catalog: &str,
    machine: &MachineModel,
    program: &Program,
    run_config: &RunConfig,
    opts: &MethodOptions,
) -> u64 {
    let mut text = String::new();
    text.push_str(catalog);
    text.push('\0');
    text.push_str(&serde_json::to_string(machine).expect("machine model serializes"));
    text.push('\0');
    text.push_str(&serde_json::to_string(program).expect("program serializes"));
    text.push('\0');
    text.push_str(&serde_json::to_string(opts).expect("method options serialize"));
    text.push('\0');
    let mut bytes = text.into_bytes();
    // RunConfig carries no serde impl; its three fields are hashed
    // directly (little-endian, length-prefixed args) so any change to
    // the run shape moves the fingerprint too.
    bytes.extend_from_slice(&run_config.max_insns.to_le_bytes());
    bytes.extend_from_slice(&(run_config.args.len() as u64).to_le_bytes());
    for arg in &run_config.args {
        bytes.extend_from_slice(&arg.to_le_bytes());
    }
    bytes.extend_from_slice(&(run_config.call_stack_limit as u64).to_le_bytes());
    checksum(&bytes)
}

/// Builds snapshot bytes: header, length-prefixed sections, checksum
/// trailer. The writer is deterministic — same fingerprint and sections,
/// same bytes — which the property suite pins.
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot for one pair generation (header only).
    #[must_use]
    pub fn new(fingerprint: u64) -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN + TRAILER_LEN);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        Self { buf }
    }

    /// Appends one length-prefixed section.
    pub fn section(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the snapshot with the checksum trailer.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    /// Encodes a [`PairParts`] as one snapshot: CFG section, then
    /// reference-profile section.
    #[must_use]
    pub fn encode(fingerprint: u64, parts: &PairParts) -> Vec<u8> {
        let mut w = Self::new(fingerprint);
        w.section(serde_json::to_string(&*parts.cfg).expect("CFG serializes").as_bytes());
        w.section(
            serde_json::to_string(&*parts.reference)
                .expect("reference profile serializes")
                .as_bytes(),
        );
        w.finish()
    }
}

/// Validates and walks snapshot bytes. [`SnapshotReader::open`] performs
/// the structural checks (magic, version, checksum); section reads then
/// iterate the body.
pub struct SnapshotReader<'a> {
    /// The section region: everything between header and trailer.
    body: &'a [u8],
    /// Read cursor into `body`.
    pos: usize,
    fingerprint: u64,
}

impl<'a> SnapshotReader<'a> {
    /// Opens snapshot bytes, rejecting bad magic, unknown versions,
    /// truncation and checksum failure (in that order — see the module
    /// docs for why the precedence matters).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`], [`StoreError::BadMagic`],
    /// [`StoreError::UnsupportedVersion`] or
    /// [`StoreError::ChecksumMismatch`].
    pub fn open(bytes: &'a [u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Truncated { needed: 8, available: bytes.len() });
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes.len() < 12 {
            return Err(StoreError::Truncated { needed: 12, available: bytes.len() });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN + TRAILER_LEN,
                available: bytes.len(),
            });
        }
        let body_end = bytes.len() - TRAILER_LEN;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let computed = checksum(&bytes[..body_end]);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        let fingerprint =
            u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
        Ok(Self {
            body: &bytes[HEADER_LEN..body_end],
            pos: 0,
            fingerprint,
        })
    }

    /// The pair fingerprint recorded in the header.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Rejects a snapshot of the wrong pair generation.
    ///
    /// # Errors
    ///
    /// [`StoreError::FingerprintMismatch`] when the header fingerprint
    /// differs from `expected`.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<(), StoreError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(StoreError::FingerprintMismatch { expected, found: self.fingerprint })
        }
    }

    /// Reads the next length-prefixed section.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the length prefix or the section
    /// body runs past the checksummed region.
    pub fn section(&mut self) -> Result<&'a [u8], StoreError> {
        let remaining = self.body.len() - self.pos;
        if remaining < 8 {
            return Err(StoreError::Truncated { needed: 8, available: remaining });
        }
        let len = u64::from_le_bytes(
            self.body[self.pos..self.pos + 8].try_into().expect("8 bytes"),
        );
        self.pos += 8;
        let remaining = self.body.len() - self.pos;
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Truncated { needed: usize::MAX, available: remaining })?;
        if remaining < len {
            return Err(StoreError::Truncated { needed: len, available: remaining });
        }
        let section = &self.body[self.pos..self.pos + len];
        self.pos += len;
        Ok(section)
    }

    /// Bytes left after the sections read so far (`0` after a complete
    /// decode — anything else is trailing garbage).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    /// Decodes a full [`PairParts`] snapshot, validating structure,
    /// checksum and fingerprint.
    ///
    /// # Errors
    ///
    /// Everything [`SnapshotReader::open`] rejects, plus
    /// [`StoreError::FingerprintMismatch`] for stale snapshots and
    /// [`StoreError::Decode`] for sections that are not the expected
    /// JSON structures.
    pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<PairParts, StoreError> {
        let mut reader = SnapshotReader::open(bytes)?;
        reader.expect_fingerprint(expected_fingerprint)?;
        let cfg_text = std::str::from_utf8(reader.section()?)
            .map_err(|e| StoreError::Decode(format!("CFG section is not UTF-8: {e}")))?;
        let cfg: Cfg = serde_json::from_str(cfg_text)
            .map_err(|e| StoreError::Decode(format!("CFG section: {e}")))?;
        let profile_text = std::str::from_utf8(reader.section()?)
            .map_err(|e| StoreError::Decode(format!("profile section is not UTF-8: {e}")))?;
        let reference: ReferenceProfile = serde_json::from_str(profile_text)
            .map_err(|e| StoreError::Decode(format!("profile section: {e}")))?;
        if reader.remaining() != 0 {
            return Err(StoreError::Decode(format!(
                "{} trailing bytes after the profile section",
                reader.remaining()
            )));
        }
        Ok(PairParts {
            cfg: Arc::new(cfg),
            reference: Arc::new(reference),
        })
    }
}

/// A directory of snapshots, one file per pair generation, named by
/// fingerprint (`<fingerprint:016x>.snap`). Equal fingerprints mean
/// byte-identical deterministic builds, so the name alone is
/// collision-safe; the header fingerprint check still guards against
/// renamed or hand-edited files.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// A store over `dir`. The directory is created on first save, not
    /// here — construction never touches the filesystem.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot file path for one fingerprint.
    #[must_use]
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.snap"))
    }

    /// Loads and validates the snapshot for `fingerprint`. A missing
    /// file is `Ok(None)` — a cold store is not an error; every other
    /// failure (I/O, corruption, staleness) is the typed rejection the
    /// cache counts before falling back to a build.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for unreadable files, otherwise whatever
    /// [`SnapshotReader::decode`] rejects.
    pub fn load(&self, fingerprint: u64) -> Result<Option<PairParts>, StoreError> {
        let path = self.path_for(fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
        };
        SnapshotReader::decode(&bytes, fingerprint).map(Some)
    }

    /// Writes the snapshot for `fingerprint` (write-behind after a cold
    /// build). The write goes to a temporary sibling first and renames
    /// into place, so a concurrent reader never observes a half-written
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or file cannot be written.
    pub fn save(&self, fingerprint: u64, parts: &PairParts) -> Result<(), StoreError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.dir.display())))?;
        let bytes = SnapshotWriter::encode(fingerprint, parts);
        let path = self.path_for(fingerprint);
        let tmp = self
            .dir
            .join(format!("{fingerprint:016x}.snap.tmp{}", std::process::id()));
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            StoreError::Io(format!("{}: {e}", path.display()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    fn demo_parts() -> PairParts {
        let program = assemble(
            "demo",
            ".func main\n movi r1, 300\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
        )
        .expect("demo program assembles");
        let cfg = Arc::new(Cfg::build(&program));
        PairParts::collect(
            &MachineModel::ivy_bridge(),
            &program,
            &RunConfig::default(),
            cfg,
        )
        .expect("demo reference collects")
    }

    #[test]
    fn roundtrip_preserves_structure_and_is_deterministic() {
        let parts = demo_parts();
        let bytes = SnapshotWriter::encode(42, &parts);
        assert_eq!(bytes, SnapshotWriter::encode(42, &parts));
        let back = SnapshotReader::decode(&bytes, 42).expect("decodes");
        assert_eq!(*back.cfg, *parts.cfg);
        assert_eq!(
            serde_json::to_string(&*back.reference).unwrap(),
            serde_json::to_string(&*parts.reference).unwrap()
        );
        // Re-encoding the decoded parts is canonical too.
        assert_eq!(bytes, SnapshotWriter::encode(42, &back));
    }

    #[test]
    fn open_rejects_the_documented_precedence() {
        let parts = demo_parts();
        let bytes = SnapshotWriter::encode(7, &parts);

        let mut magic = bytes.clone();
        magic[0] ^= 0x01;
        assert_eq!(SnapshotReader::open(&magic).err(), Some(StoreError::BadMagic));

        let mut version = bytes.clone();
        version[8] = 0xEE;
        assert!(matches!(
            SnapshotReader::open(&version).err(),
            Some(StoreError::UnsupportedVersion(_))
        ));

        let mut body = bytes.clone();
        body[HEADER_LEN + 9] ^= 0x10;
        assert!(matches!(
            SnapshotReader::open(&body).err(),
            Some(StoreError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            SnapshotReader::open(&bytes[..10]).err(),
            Some(StoreError::Truncated { .. })
        ));

        assert_eq!(
            SnapshotReader::decode(&bytes, 8).err(),
            Some(StoreError::FingerprintMismatch { expected: 8, found: 7 })
        );
    }

    #[test]
    fn fingerprint_moves_with_every_input() {
        let program = assemble(
            "demo",
            ".func main\n movi r1, 10\ntop:\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
        )
        .unwrap();
        let other = assemble(
            "demo2",
            ".func main\n movi r1, 11\ntop:\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
        )
        .unwrap();
        let machine = MachineModel::ivy_bridge();
        let opts = MethodOptions::fast();
        let base = pair_fingerprint("default", &machine, &program, &RunConfig::default(), &opts);
        assert_eq!(
            base,
            pair_fingerprint("default", &machine, &program, &RunConfig::default(), &opts),
            "fingerprints are deterministic"
        );
        assert_ne!(
            base,
            pair_fingerprint("tenant-b", &machine, &program, &RunConfig::default(), &opts)
        );
        assert_ne!(
            base,
            pair_fingerprint("default", &MachineModel::westmere(), &program, &RunConfig::default(), &opts)
        );
        assert_ne!(
            base,
            pair_fingerprint("default", &machine, &other, &RunConfig::default(), &opts)
        );
        let mut config = RunConfig::default();
        config.args.push(9);
        assert_ne!(
            base,
            pair_fingerprint("default", &machine, &program, &config, &opts)
        );
        assert_ne!(
            base,
            pair_fingerprint("default", &machine, &program, &RunConfig::default(), &MethodOptions::default())
        );
    }

    #[test]
    fn store_load_is_none_when_cold_and_some_after_save() {
        let dir = std::env::temp_dir().join(format!("ctstore_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir);
        assert!(store.load(1).unwrap().is_none(), "cold store is not an error");
        let parts = demo_parts();
        store.save(1, &parts).expect("save succeeds");
        let back = store.load(1).expect("load succeeds").expect("snapshot present");
        assert_eq!(*back.cfg, *parts.cfg);
        // Corrupt the file: load must reject, not panic.
        let path = store.path_for(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
