//! The repeated-measurement harness behind Tables 1 and 2.
//!
//! §4.1: "Each of our kernels ... is measured five times." This module
//! runs a method `repeats` times with distinct seeds and reports the error
//! statistics.

use crate::error::CoreError;
use crate::methods::MethodInstance;
use crate::metrics::Stats;
use crate::session::Session;
use serde::{Deserialize, Serialize};

/// Error statistics of one method over repeated runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorStats {
    pub method: String,
    pub stats: Stats,
    /// Individual per-run accuracy errors.
    pub runs: Vec<f64>,
    /// Mean samples per run.
    pub mean_samples: f64,
    /// Mean skid (instructions) per run.
    pub mean_skid: f64,
}

/// A full evaluation cell: method × workload × machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    pub machine: String,
    pub workload: String,
    pub methods: Vec<ErrorStats>,
}

/// Runs `method` `repeats` times (seeds `base_seed..base_seed+repeats`)
/// and aggregates the accuracy errors.
pub fn evaluate_method(
    session: &mut Session<'_>,
    method: &MethodInstance,
    repeats: usize,
    base_seed: u64,
) -> Result<ErrorStats, CoreError> {
    let seeds: Vec<u64> = (0..repeats as u64).map(|i| base_seed + i).collect();
    evaluate_method_with_seeds(session, method, method.kind.label(), &seeds)
}

/// Runs `method` once per seed in `seeds` and aggregates the accuracy
/// errors under an explicit result label.
///
/// This is the primitive behind [`evaluate_method`] and the grid engine
/// ([`crate::grid`]), which derives each cell's seeds from its grid
/// coordinates so results do not depend on scheduling order, and labels
/// ablation cells by their configuration rather than the method family.
pub fn evaluate_method_with_seeds(
    session: &mut Session<'_>,
    method: &MethodInstance,
    label: &str,
    seeds: &[u64],
) -> Result<ErrorStats, CoreError> {
    let mut runs = Vec::with_capacity(seeds.len());
    let mut samples = 0usize;
    let mut skid = 0.0;
    for &seed in seeds {
        let r = session.run_method(method, seed)?;
        runs.push(r.accuracy_error);
        samples += r.samples;
        skid += r.mean_skid;
    }
    let n = seeds.len().max(1) as f64;
    Ok(ErrorStats {
        method: label.to_string(),
        stats: Stats::from_values(&runs),
        runs,
        mean_samples: samples as f64 / n,
        mean_skid: skid / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodKind, MethodOptions};
    use ct_isa::asm::assemble;
    use ct_sim::MachineModel;

    #[test]
    fn five_repeats_produce_five_runs() {
        let m = MachineModel::ivy_bridge();
        let p = assemble(
            "k",
            r#"
            .func main
                movi r1, 20000
            top:
                addi r2, r2, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        let mut s = Session::new(&m, &p);
        let method = MethodKind::PrecisePrime
            .instantiate(&m, &MethodOptions::fast())
            .unwrap();
        let stats = evaluate_method(&mut s, &method, 5, 100).unwrap();
        assert_eq!(stats.runs.len(), 5);
        assert_eq!(stats.stats.n, 5);
        assert!(stats.mean_samples > 0.0);
        assert!(stats.stats.mean >= 0.0);
        assert!(stats.stats.min <= stats.stats.max);
    }
}
