//! Sample → basic-block attribution.
//!
//! Converts a [`ct_pmu::SampleBatch`] into estimated per-block instruction
//! counts (`BB_x[i]` in the paper's §3.3 notation), under one of the three
//! attribution rules of [`crate::methods::Attribution`].

use crate::lbrwalk;
use crate::methods::Attribution;
use ct_isa::{Addr, Cfg};
use ct_pmu::{Sample, SampleBatch};

/// Estimated per-block instruction mass from one batch of samples.
///
/// * `Plain`: every sample carries `period` instructions of mass, credited
///   to the block containing the reported IP.
/// * `IpFix`: the reported IP is first corrected for the precise-mechanism
///   IP+1 artifact using the frozen LBR top entry: if the reported address
///   is the target of the most recent taken branch, the true location is
///   that branch's source block; otherwise it is the previous address.
/// * `LbrWalk`: the reported IP is ignored; the frozen stack's segments are
///   credited (`period / n_segments` per witnessed instruction).
#[must_use]
pub fn attribute(
    batch: &SampleBatch,
    cfg: &Cfg,
    attribution: Attribution,
    nominal_period: u64,
) -> Vec<f64> {
    let mut bb_mass = vec![0.0; cfg.num_blocks()];
    let period = nominal_period as f64;
    for sample in &batch.samples {
        match attribution {
            Attribution::Plain => {
                credit_ip(sample.reported_ip, cfg, period, &mut bb_mass);
            }
            Attribution::IpFix => {
                let ip = corrected_ip(sample);
                credit_ip(ip, cfg, period, &mut bb_mass);
            }
            Attribution::LbrWalk => {
                if let Some(lbr) = &sample.lbr {
                    lbrwalk::credit_stack(lbr, cfg, nominal_period, &mut bb_mass);
                }
            }
        }
    }
    bb_mass
}

/// Applies the LBR-based IP+1 offset correction (§6.2) to one sample.
///
/// The precise mechanisms report the address of the instruction *after*
/// the captured one. Two cases:
///
/// * the reported address is the target of the newest LBR entry — the
///   captured instruction was that branch, so the corrected address is the
///   branch source (this repairs the cross-block misattribution that makes
///   plain precise sampling inflate branch-target blocks);
/// * otherwise the captured instruction is simply the sequentially
///   preceding address.
#[must_use]
pub fn corrected_ip(sample: &Sample) -> Addr {
    if let Some(lbr) = &sample.lbr {
        if let Some(top) = lbr.last() {
            if top.to == sample.reported_ip {
                return top.from;
            }
        }
    }
    sample.reported_ip.saturating_sub(1)
}

fn credit_ip(ip: Addr, cfg: &Cfg, mass: f64, bb_mass: &mut [f64]) {
    if let Some(id) = cfg.try_block_of(ip) {
        bb_mass[id as usize] += mass;
    }
    // Samples pointing outside the program (possible after deep skid at
    // the end of execution) are dropped, as a real tool drops samples it
    // cannot symbolize.
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;
    use ct_pmu::LbrEntry;

    fn sample(reported: Addr, lbr: Option<Vec<LbrEntry>>) -> Sample {
        Sample {
            reported_ip: reported,
            trigger_ip: 0,
            trigger_seq: 0,
            reported_seq: 0,
            cycle: 0,
            lbr,
        }
    }

    fn demo_cfg() -> ct_isa::Cfg {
        let p = assemble(
            "t",
            r#"
            .func main
                movi r1, 3
            top:
                addi r2, r2, 1
                subi r1, r1, 1
                brnz r1, top
                halt
            .endfunc
        "#,
        )
        .unwrap();
        ct_isa::Cfg::build(&p)
        // Blocks: 0=[0,1), 1=[1,4), 2=[4,5).
    }

    #[test]
    fn plain_attribution_credits_reported_block() {
        let cfg = demo_cfg();
        let batch = SampleBatch {
            samples: vec![sample(1, None), sample(2, None), sample(4, None)],
            ..SampleBatch::default()
        };
        let mass = attribute(&batch, &cfg, Attribution::Plain, 100);
        assert_eq!(mass, vec![0.0, 200.0, 100.0]);
    }

    #[test]
    fn out_of_range_samples_are_dropped() {
        let cfg = demo_cfg();
        let batch = SampleBatch {
            samples: vec![sample(999, None)],
            ..SampleBatch::default()
        };
        let mass = attribute(&batch, &cfg, Attribution::Plain, 100);
        assert!(mass.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn ip_fix_uses_lbr_top_for_branch_targets() {
        let cfg = demo_cfg();
        // Reported IP 1 (block 1 start, target of the back edge at 3).
        // LBR top says 3 -> 1, so the true trigger was the branch at 3.
        let s = sample(1, Some(vec![LbrEntry { from: 3, to: 1 }]));
        assert_eq!(corrected_ip(&s), 3);
        let batch = SampleBatch {
            samples: vec![s],
            ..SampleBatch::default()
        };
        let mass = attribute(&batch, &cfg, Attribution::IpFix, 100);
        // Credited to block 1 (which contains address 3), not block 0.
        assert_eq!(mass[1], 100.0);
    }

    #[test]
    fn ip_fix_falls_back_to_minus_one() {
        // Reported IP 2 not an LBR target: corrected to 1.
        let s = sample(2, Some(vec![LbrEntry { from: 3, to: 1 }]));
        assert_eq!(corrected_ip(&s), 1);
        // Reported IP 0 saturates.
        let s0 = sample(0, None);
        assert_eq!(corrected_ip(&s0), 0);
    }

    #[test]
    fn lbr_walk_ignores_reported_ip() {
        let cfg = demo_cfg();
        // Stack with two back-edge entries: one segment over block 1.
        let s = sample(
            4, // reported IP in block 2 — must be ignored
            Some(vec![
                LbrEntry { from: 3, to: 1 },
                LbrEntry { from: 3, to: 1 },
            ]),
        );
        let batch = SampleBatch {
            samples: vec![s],
            ..SampleBatch::default()
        };
        let mass = attribute(&batch, &cfg, Attribution::LbrWalk, 90);
        assert_eq!(mass[2], 0.0, "reported IP not credited");
        assert_eq!(mass[1], 270.0, "3 insns x period 90 / 1 segment");
    }

    #[test]
    fn mass_is_conserved_for_plain() {
        let cfg = demo_cfg();
        let batch = SampleBatch {
            samples: (0..10).map(|i| sample(1 + (i % 3), None)).collect(),
            ..SampleBatch::default()
        };
        let mass = attribute(&batch, &cfg, Attribution::Plain, 50);
        let total: f64 = mass.iter().sum();
        assert_eq!(total, 10.0 * 50.0);
    }
}
