//! Estimated profiles: block-level mass plus function-level aggregation.

use ct_isa::{Cfg, Program};
use serde::{Deserialize, Serialize};

/// An estimated profile produced by one sampling method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatedProfile {
    /// Estimated instruction mass per basic block (block-id indexed).
    pub bb_mass: Vec<f64>,
    /// Estimated instruction mass per function (symbol-table indexed).
    pub function_mass: Vec<f64>,
    /// Function names parallel to `function_mass`.
    pub function_names: Vec<String>,
}

impl EstimatedProfile {
    /// Aggregates block mass into function mass using the program's symbol
    /// table.
    #[must_use]
    pub fn from_bb_mass(bb_mass: Vec<f64>, program: &Program, cfg: &Cfg) -> Self {
        let funcs = program.symbols.functions();
        let mut function_mass = vec![0.0; funcs.len()];
        for b in cfg.blocks() {
            if let Some(fi) = program.symbols.index_containing(b.start) {
                function_mass[fi] += bb_mass[b.id as usize];
            }
        }
        Self {
            bb_mass,
            function_mass,
            function_names: funcs.iter().map(|f| f.name.clone()).collect(),
        }
    }

    /// Total estimated mass.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.bb_mass.iter().sum()
    }

    /// Functions ranked by estimated mass, descending: `(name, mass)`.
    #[must_use]
    pub fn function_ranking(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .function_names
            .iter()
            .cloned()
            .zip(self.function_mass.iter().copied())
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    /// Names of the top-`n` functions by estimated mass.
    #[must_use]
    pub fn top_functions(&self, n: usize) -> Vec<String> {
        self.function_ranking()
            .into_iter()
            .take(n)
            .map(|(name, _)| name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;

    #[test]
    fn function_aggregation() {
        let p = assemble(
            "t",
            r#"
            .func main
                call f
                halt
            .endfunc
            .func f
                addi r1, r1, 1
                ret
            .endfunc
        "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        // Blocks: [0,1) call, [1,2) halt, [2,3) addi... actually addi+ret
        // form one block [2,4).
        let mut bb = vec![0.0; cfg.num_blocks()];
        for b in cfg.blocks() {
            bb[b.id as usize] = b.len() as f64 * 10.0;
        }
        let prof = EstimatedProfile::from_bb_mass(bb, &p, &cfg);
        let main_i = prof
            .function_names
            .iter()
            .position(|n| n == "main")
            .unwrap();
        let f_i = prof.function_names.iter().position(|n| n == "f").unwrap();
        assert_eq!(prof.function_mass[main_i], 20.0);
        assert_eq!(prof.function_mass[f_i], 20.0);
        assert_eq!(prof.total(), 40.0);
    }

    #[test]
    fn ranking_and_top_n() {
        let prof = EstimatedProfile {
            bb_mass: vec![],
            function_mass: vec![5.0, 20.0, 10.0],
            function_names: vec!["a".into(), "b".into(), "c".into()],
        };
        assert_eq!(
            prof.top_functions(2),
            vec!["b".to_string(), "c".to_string()]
        );
    }
}
