//! The sampling-method taxonomy of Table 3.
//!
//! Each [`MethodKind`] describes a *method family*; instantiating it
//! against a machine resolves the concrete event, precision mechanism and
//! period policy — or reports that the machine cannot run it (the paper's
//! tables have exactly such holes: no PDIR on Westmere, no LBR on
//! Magny-Cours).

use ct_isa::prime::next_prime;
use ct_pmu::{PeriodSpec, PmuEvent, Precision, Randomization, SamplerConfig};
use ct_sim::{MachineModel, Vendor};
use serde::{Deserialize, Serialize};

/// How collected samples are turned into basic-block counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attribution {
    /// Attribute each sample to the block containing the reported IP.
    Plain,
    /// Correct the reported IP with the LBR top entry first (the IP+1
    /// offset fix of §6.2), then attribute.
    IpFix,
    /// Ignore the reported IP entirely; walk the frozen LBR stack and
    /// credit every block in its segments (§3.2).
    LbrWalk,
}

/// The method families evaluated in the paper (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// Default round period, no randomization, imprecise counter — "used
    /// by default in many tools" (perf's default setup).
    Classic,
    /// Precise mechanism (PEBS on Intel, IBS on AMD), round period.
    Precise,
    /// Precise + software-randomized round period (AMD: built-in 4-LSB
    /// hardware randomization, the only kind available there).
    PreciseRand,
    /// Precise + prime period.
    PrecisePrime,
    /// Precise + randomized prime period.
    PrecisePrimeRand,
    /// Best precisely-distributed event available + the LBR IP+1 offset
    /// fix, prime period (PDIR on Ivy Bridge; plain PEBS on Westmere,
    /// which is why the paper sees no PDIR boost there).
    PreciseFix,
    /// Full LBR basic-block accounting on the taken-branches event.
    Lbr,
}

impl MethodKind {
    /// All families, in the left-to-right order of the paper's tables.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::Classic,
        MethodKind::Precise,
        MethodKind::PreciseRand,
        MethodKind::PrecisePrime,
        MethodKind::PrecisePrimeRand,
        MethodKind::PreciseFix,
        MethodKind::Lbr,
    ];

    /// Short column label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Classic => "classic",
            MethodKind::Precise => "precise",
            MethodKind::PreciseRand => "precise+rand",
            MethodKind::PrecisePrime => "precise+prime",
            MethodKind::PrecisePrimeRand => "precise+prime+rand",
            MethodKind::PreciseFix => "precise+fix",
            MethodKind::Lbr => "lbr",
        }
    }

    /// Looks a method family up by its table label — the inverse of
    /// [`MethodKind::label`], used by the serving layer to resolve the
    /// `method` field of a request.
    #[must_use]
    pub fn from_label(label: &str) -> Option<MethodKind> {
        MethodKind::ALL.iter().copied().find(|k| k.label() == label)
    }

    /// Long description (Table 3 "comments" column).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            MethodKind::Classic => {
                "Used by default in many tools; fixed round period on an imprecise counter"
            }
            MethodKind::Precise => {
                "Precise mechanism captures the event location (IP+1); distribution not guaranteed"
            }
            MethodKind::PreciseRand => "Randomized sampling period avoids synchronization risk",
            MethodKind::PrecisePrime => "Prime period reduces resonance, improving accuracy",
            MethodKind::PrecisePrimeRand => {
                "Randomization applied on the prime period further improves accuracy"
            }
            MethodKind::PreciseFix => {
                "Precisely distributed event; LBR top address fixes IP+1 and skid"
            }
            MethodKind::Lbr => "Full LBR-based basic block execution count accounting",
        }
    }

    /// Builds the concrete configuration of this method on `machine`, or
    /// `None` when the machine lacks the required hardware.
    #[must_use]
    pub fn instantiate(
        self,
        machine: &MachineModel,
        opts: &MethodOptions,
    ) -> Option<MethodInstance> {
        let round = opts.inst_period;
        let prime = next_prime(round);
        let branch_prime = next_prime(opts.branch_period);
        let soft_rand = Randomization::Software {
            bits: opts.rand_bits,
        };
        // AMD has no software period randomization in this perf version;
        // only the built-in 4-LSB hardware randomization exists (§4.2).
        let amd_rand = Randomization::HardwareLsb {
            bits: machine.pmu.hw_period_randomization_bits.max(1),
        };

        let intel = machine.vendor == Vendor::Intel;
        let (event_imprecise, event_precise, precise_mech) = if intel {
            (
                PmuEvent::InstRetiredAny,
                PmuEvent::InstRetiredAll,
                Precision::Pebs,
            )
        } else {
            (
                PmuEvent::AmdRetiredInstructions,
                PmuEvent::IbsOp,
                Precision::Ibs,
            )
        };

        let spec = |nominal, randomization| PeriodSpec {
            nominal,
            randomization,
        };

        let (config, attribution) = match self {
            MethodKind::Classic => (
                SamplerConfig::new(
                    event_imprecise,
                    Precision::Imprecise,
                    spec(round, Randomization::None),
                ),
                Attribution::Plain,
            ),
            MethodKind::Precise => {
                if intel && !machine.pmu.pebs {
                    return None;
                }
                if !intel && !machine.pmu.ibs {
                    return None;
                }
                (
                    SamplerConfig::new(
                        event_precise,
                        precise_mech,
                        spec(round, Randomization::None),
                    ),
                    Attribution::Plain,
                )
            }
            MethodKind::PreciseRand => (
                SamplerConfig::new(
                    event_precise,
                    precise_mech,
                    spec(round, if intel { soft_rand } else { amd_rand }),
                ),
                Attribution::Plain,
            ),
            MethodKind::PrecisePrime => (
                SamplerConfig::new(
                    event_precise,
                    precise_mech,
                    spec(prime, Randomization::None),
                ),
                Attribution::Plain,
            ),
            MethodKind::PrecisePrimeRand => (
                SamplerConfig::new(
                    event_precise,
                    precise_mech,
                    spec(prime, if intel { soft_rand } else { amd_rand }),
                ),
                Attribution::Plain,
            ),
            MethodKind::PreciseFix => {
                // Needs an LBR for the IP offset fix.
                if machine.pmu.lbr_depth == 0 {
                    return None;
                }
                let (event, mech) = if machine.pmu.pdir {
                    (PmuEvent::InstRetiredPrecDist, Precision::Pdir)
                } else if machine.pmu.pebs {
                    (PmuEvent::InstRetiredAll, Precision::Pebs)
                } else {
                    return None;
                };
                (
                    // Prime period, no randomization: Table 3 lists the
                    // fix row's randomization as "Yes/No"; the fixed
                    // prime variant is the stronger configuration in this
                    // sampling regime.
                    SamplerConfig::new(event, mech, spec(prime, Randomization::None)).with_lbr(),
                    Attribution::IpFix,
                )
            }
            MethodKind::Lbr => {
                if machine.pmu.lbr_depth == 0 {
                    return None;
                }
                let event = if machine.pmu.pdir {
                    // Ivy Bridge: BR_INST_RETIRED.NEAR_TAKEN.
                    PmuEvent::BrInstRetiredNearTaken
                } else {
                    // Westmere: BR_INST_EXEC.TAKEN.
                    PmuEvent::BrInstExecTaken
                };
                (
                    SamplerConfig::new(
                        event,
                        Precision::Imprecise,
                        spec(branch_prime, Randomization::None),
                    )
                    .with_lbr(),
                    Attribution::LbrWalk,
                )
            }
        };
        Some(MethodInstance {
            kind: self,
            config,
            attribution,
        })
    }
}

/// Knobs shared by all methods: base periods and randomization width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodOptions {
    /// Round period for instruction events (the paper uses 2,000,000 on
    /// multi-minute runs; the simulated runs are shorter, so this scales
    /// down while keeping the round/prime structure).
    pub inst_period: u64,
    /// Period for taken-branch events (LBR method). Branches are roughly
    /// one sixth of instructions in enterprise code (§2.3), so this is
    /// proportionally smaller.
    pub branch_period: u64,
    /// Software randomization window, in bits.
    pub rand_bits: u32,
}

impl Default for MethodOptions {
    fn default() -> Self {
        // The paper samples every 2,000,000 instructions over multi-minute
        // runs (>=10^5 samples). The simulated runs retire ~10^7
        // instructions, so the period scales down proportionally to keep
        // the sample population large enough that synchronization — not
        // shot noise — dominates the error, as in the paper. 4,000 is
        // divisible by the kernels' loop-body lengths (the resonance the
        // prime 4,001 period breaks).
        Self {
            inst_period: 4_000,
            branch_period: 640,
            rand_bits: 8,
        }
    }
}

impl MethodOptions {
    /// Smaller periods for quick tests (more samples from short runs).
    #[must_use]
    pub fn fast() -> Self {
        Self {
            inst_period: 2_000,
            branch_period: 250,
            rand_bits: 7,
        }
    }

    /// Scales both periods by `factor` (used by the period-sweep ablation).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            inst_period: ((self.inst_period as f64 * factor) as u64).max(2),
            branch_period: ((self.branch_period as f64 * factor) as u64).max(2),
            rand_bits: self.rand_bits,
        }
    }
}

/// A method resolved against a machine: ready-to-run sampler configuration
/// plus the attribution rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodInstance {
    pub kind: MethodKind,
    pub config: SamplerConfig,
    pub attribution: Attribution,
}

impl MethodInstance {
    /// Human-readable name including the event, for table headers.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "{} [{}]",
            self.kind.label(),
            self.config.event.vendor_name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_supports_all_methods() {
        let m = MachineModel::ivy_bridge();
        let opts = MethodOptions::default();
        for kind in MethodKind::ALL {
            assert!(kind.instantiate(&m, &opts).is_some(), "{kind:?} on IVB");
        }
    }

    #[test]
    fn westmere_fix_falls_back_to_pebs() {
        let m = MachineModel::westmere();
        let inst = MethodKind::PreciseFix
            .instantiate(&m, &MethodOptions::default())
            .unwrap();
        assert_eq!(inst.config.event, PmuEvent::InstRetiredAll);
        assert_eq!(inst.config.precision, Precision::Pebs);
        let ivb = MethodKind::PreciseFix
            .instantiate(&MachineModel::ivy_bridge(), &MethodOptions::default())
            .unwrap();
        assert_eq!(ivb.config.event, PmuEvent::InstRetiredPrecDist);
        assert_eq!(ivb.config.precision, Precision::Pdir);
    }

    #[test]
    fn amd_has_no_lbr_methods() {
        let m = MachineModel::magny_cours();
        let opts = MethodOptions::default();
        assert!(MethodKind::PreciseFix.instantiate(&m, &opts).is_none());
        assert!(MethodKind::Lbr.instantiate(&m, &opts).is_none());
        // But IBS-based precise methods exist.
        let p = MethodKind::Precise.instantiate(&m, &opts).unwrap();
        assert_eq!(p.config.precision, Precision::Ibs);
        assert_eq!(p.config.event, PmuEvent::IbsOp);
    }

    #[test]
    fn amd_randomization_is_hardware_lsb() {
        let m = MachineModel::magny_cours();
        let inst = MethodKind::PreciseRand
            .instantiate(&m, &MethodOptions::default())
            .unwrap();
        assert!(matches!(
            inst.config.period.randomization,
            Randomization::HardwareLsb { bits: 4 }
        ));
    }

    #[test]
    fn prime_methods_use_prime_periods() {
        let m = MachineModel::ivy_bridge();
        let opts = MethodOptions::default();
        let p = MethodKind::PrecisePrime.instantiate(&m, &opts).unwrap();
        assert!(ct_isa::prime::is_prime(p.config.period.nominal));
        let c = MethodKind::Classic.instantiate(&m, &opts).unwrap();
        assert_eq!(c.config.period.nominal, opts.inst_period);
    }

    #[test]
    fn lbr_method_uses_vendor_specific_event() {
        let opts = MethodOptions::default();
        let wsm = MethodKind::Lbr
            .instantiate(&MachineModel::westmere(), &opts)
            .unwrap();
        assert_eq!(wsm.config.event, PmuEvent::BrInstExecTaken);
        let ivb = MethodKind::Lbr
            .instantiate(&MachineModel::ivy_bridge(), &opts)
            .unwrap();
        assert_eq!(ivb.config.event, PmuEvent::BrInstRetiredNearTaken);
        assert!(ivb.config.collect_lbr);
        assert_eq!(ivb.attribution, Attribution::LbrWalk);
    }

    #[test]
    fn all_instances_validate_on_their_machine() {
        let opts = MethodOptions::default();
        for m in MachineModel::paper_machines() {
            for kind in MethodKind::ALL {
                if let Some(inst) = kind.instantiate(&m, &opts) {
                    inst.config.validate(&m).unwrap_or_else(|e| {
                        panic!("{kind:?} on {}: {e}", m.name);
                    });
                }
            }
        }
    }
}
