//! Error type unifying the lower layers.

use std::fmt;

/// Errors from running a profiling session.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The PMU rejected the sampler configuration (capability mismatch).
    Pmu(ct_pmu::PmuError),
    /// The simulated execution failed.
    Sim(ct_sim::SimError),
    /// A method is not available on the target machine (e.g. the LBR
    /// method on Magny-Cours, which has no LBR facility).
    MethodUnavailable { method: String, machine: String },
    /// A shared reference build panicked before publishing its result.
    /// Callers that were waiting on that build receive this error (and
    /// may retry — nothing was cached); the panic itself propagates on
    /// the thread that ran the builder.
    BuildPanicked,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pmu(e) => write!(f, "PMU: {e}"),
            CoreError::Sim(e) => write!(f, "simulation: {e}"),
            CoreError::MethodUnavailable { method, machine } => {
                write!(f, "method `{method}` unavailable on {machine}")
            }
            CoreError::BuildPanicked => {
                write!(f, "shared reference build panicked before completion")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Pmu(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::MethodUnavailable { .. } | CoreError::BuildPanicked => None,
        }
    }
}

impl From<ct_pmu::PmuError> for CoreError {
    fn from(e: ct_pmu::PmuError) -> Self {
        CoreError::Pmu(e)
    }
}

impl From<ct_sim::SimError> for CoreError {
    fn from(e: ct_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}
