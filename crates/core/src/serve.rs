//! The batched evaluation service: request-driven traffic on top of the
//! grid machinery.
//!
//! The grid engine ([`crate::grid`]) evaluates a *static*
//! machine × workload table. This module serves *ad-hoc* evaluation
//! traffic: a stream of [`EvalRequest`]s naming a machine, workload and
//! method by name. Each batch handed to [`EvalService::serve`] is
//!
//! 1. **resolved** against the service's catalog (unknown names become
//!    per-request error responses, never panics);
//! 2. **sharded** by `(machine, workload)` pair, so every request touching
//!    a pair rides on the same expensive state;
//! 3. fanned across a worker pool (the same scoped-thread queue the grid
//!    uses) in two waves: shards first *attach* to their pair state
//!    through the LRU-bounded [`ProfileCache`] (one task per shard — a
//!    reference profile and CFG are built **at most once per pair per
//!    cache residency**, and at most once per pair per batch regardless
//!    of cache capacity, because the batch holds the attached parts for
//!    its whole lifetime), then every request *evaluates* as its own
//!    task, so even a fully skewed batch — all requests on one hot
//!    pair — spreads across every worker;
//! 4. answered **in request order**, with per-run seeds derived from the
//!    request itself ([`request_seed`]), never from scheduling.
//!
//! # Determinism contract
//!
//! Identical request streams yield byte-identical responses for any
//! worker-thread count and any cache capacity: cache contents are pure
//! functions of the pair, so eviction and rebuild change *when* work
//! happens, never *what* a response contains. Timing-dependent numbers
//! (hit rates, latency) live in [`ServeStats`] and the cache counters,
//! outside the response stream.
//!
//! # Examples
//!
//! A request round-trips through JSON (the service's wire format is
//! JSON lines, one request or response per line):
//!
//! ```
//! use countertrust::serve::EvalRequest;
//!
//! let request = EvalRequest {
//!     machine: "Ivy Bridge (Xeon E3-1265L)".to_string(),
//!     workload: "demo".to_string(),
//!     method: "lbr".to_string(),
//!     runs: 2,
//!     seed: 7,
//! };
//! let json = serde_json::to_string(&request).unwrap();
//! let back: EvalRequest = serde_json::from_str(&json).unwrap();
//! assert_eq!(request, back);
//! ```
//!
//! End to end — identical streams are byte-identical no matter how many
//! threads serve them:
//!
//! ```
//! use countertrust::grid::WorkloadSpec;
//! use countertrust::methods::MethodOptions;
//! use countertrust::serve::{EvalRequest, EvalService};
//! use ct_isa::asm::assemble;
//! use ct_sim::{MachineModel, RunConfig};
//!
//! let program = assemble(
//!     "demo",
//!     ".func main\n movi r1, 20000\ntop:\n addi r2, r2, 1\n subi r1, r1, 1\n brnz r1, top\n halt\n.endfunc",
//! )
//! .unwrap();
//! let run_config = RunConfig::default();
//! let workloads = [WorkloadSpec { name: "demo", program: &program, run_config: &run_config }];
//! let machines = [MachineModel::ivy_bridge()];
//! let requests = vec![
//!     EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "demo", "classic", 1, 1),
//!     EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "demo", "lbr", 1, 2),
//! ];
//!
//! let serial = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast())
//!     .threads(1);
//! let parallel = EvalService::new(&machines, &workloads)
//!     .method_options(MethodOptions::fast())
//!     .threads(8);
//! assert_eq!(
//!     serial.serve_jsonl(&requests),
//!     parallel.serve_jsonl(&requests),
//! );
//! assert_eq!(serial.stats().cache_hits, 1); // second request shared the build
//! ```

use crate::cache::{CacheStats, PairKey, PairParts, ProfileCache};
use crate::evaluate::{evaluate_method_with_seeds, ErrorStats};
use crate::grid::{default_threads, for_each_index, mix64, WorkloadSpec};
use crate::methods::{MethodInstance, MethodKind, MethodOptions};
use ct_isa::Cfg;
use ct_sim::MachineModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One evaluation request: machine, workload and method by name, plus the
/// measurement shape (`runs` repeats from base `seed`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalRequest {
    /// Machine name, matched exactly against the catalog.
    pub machine: String,
    /// Workload name, matched exactly against the catalog.
    pub workload: String,
    /// Method label as in [`MethodKind::label`] (e.g. `"lbr"`).
    pub method: String,
    /// Number of repeated measurements (`0` is served as `1`).
    pub runs: usize,
    /// Base seed; per-run seeds derive from it via [`request_seed`].
    pub seed: u64,
}

impl EvalRequest {
    /// Convenience constructor.
    #[must_use]
    pub fn new(machine: &str, workload: &str, method: &str, runs: usize, seed: u64) -> Self {
        Self {
            machine: machine.to_string(),
            workload: workload.to_string(),
            method: method.to_string(),
            runs,
            seed,
        }
    }

    /// The number of measurement runs actually performed (`runs`, with
    /// `0` clamped to one run).
    #[must_use]
    pub fn effective_runs(&self) -> usize {
        self.runs.max(1)
    }
}

/// One evaluation response: the request echoed back plus either its error
/// statistics or a failure description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResponse {
    /// The request this response answers.
    pub request: EvalRequest,
    /// The evaluation result; `None` when the request failed.
    pub stats: Option<ErrorStats>,
    /// The failure description; `None` when the request succeeded.
    pub error: Option<String>,
}

impl EvalResponse {
    fn ok(request: EvalRequest, stats: ErrorStats) -> Self {
        Self {
            request,
            stats: Some(stats),
            error: None,
        }
    }

    fn err(request: EvalRequest, error: String) -> Self {
        Self {
            request,
            stats: None,
            error: Some(error),
        }
    }

    /// Whether the request succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.stats.is_some()
    }
}

/// Derives the seed of one measurement run from a request's base seed.
///
/// Seeds are a pure function of `(base_seed, run)` — never of the
/// catalog, the batch composition or scheduling — so the same request
/// always produces the same response, on any service.
#[must_use]
pub fn request_seed(base_seed: u64, run: usize) -> u64 {
    let mut h = mix64(base_seed ^ 0xA24B_AED4_963E_E407);
    h ^= run as u64;
    mix64(h)
}

/// Cumulative per-request counters of an [`EvalService`].
///
/// Unlike [`CacheStats`] (one lookup per shard), these count *requests*:
/// a request is a cache hit when the pair state it rode on already
/// existed — resident in the cache, or built moments earlier by another
/// request of the same batch shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests received.
    pub requests: u64,
    /// Requests that reused existing pair state.
    pub cache_hits: u64,
    /// Requests whose pair state had to be built (one instrumented
    /// reference execution each).
    pub builds: u64,
    /// Requests answered with an error (resolution, build or evaluation
    /// failure).
    pub errors: u64,
}

impl ServeStats {
    /// Fraction of pair attachments served without a reference build.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let attached = self.cache_hits + self.builds;
        if attached == 0 {
            0.0
        } else {
            self.cache_hits as f64 / attached as f64
        }
    }
}

/// A resolved request: catalog indices plus the instantiated method.
struct Resolved {
    machine: usize,
    workload: usize,
    label: String,
    instance: MethodInstance,
}

/// The batched evaluation service. Construct with [`EvalService::new`],
/// configure with the builder methods, then feed request batches to
/// [`EvalService::serve`] (the cache persists across batches).
pub struct EvalService<'a> {
    machines: &'a [MachineModel],
    workloads: &'a [WorkloadSpec<'a>],
    opts: MethodOptions,
    threads: usize,
    cache: ProfileCache,
    /// Per-workload CFGs, built lazily (a CFG depends only on the
    /// program) and shared with every cached pair of that workload.
    cfgs: Vec<OnceLock<Arc<Cfg>>>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    builds: AtomicU64,
    errors: AtomicU64,
}

impl<'a> EvalService<'a> {
    /// A service over the given catalog: default method options, all
    /// available hardware parallelism, unbounded cache.
    #[must_use]
    pub fn new(machines: &'a [MachineModel], workloads: &'a [WorkloadSpec<'a>]) -> Self {
        Self {
            machines,
            workloads,
            opts: MethodOptions::default(),
            threads: default_threads(),
            cache: ProfileCache::unbounded(),
            cfgs: (0..workloads.len()).map(|_| OnceLock::new()).collect(),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Sets the worker-thread count; `0` restores the default (available
    /// hardware parallelism). Responses do not depend on this.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { default_threads() } else { n };
        self
    }

    /// Bounds the profile cache to `capacity` pairs (LRU eviction); `0`
    /// means unbounded. Responses do not depend on this — only build
    /// counts do.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ProfileCache::with_capacity(capacity);
        self
    }

    /// Sets the method options requests are instantiated with.
    #[must_use]
    pub fn method_options(mut self, opts: MethodOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Serves one batch of requests, returning one response per request
    /// **in request order**.
    ///
    /// Requests are sharded by `(machine, workload)` pair and shards run
    /// in parallel; each shard attaches to its pair state through the
    /// cache once and holds it for every member request, so a batch
    /// performs at most one reference build per distinct pair no matter
    /// how small the cache is.
    pub fn serve(&self, requests: &[EvalRequest]) -> Vec<EvalResponse> {
        let resolved: Vec<Result<Resolved, String>> =
            requests.iter().map(|r| self.resolve(r)).collect();

        // Shard resolvable requests by pair, in first-appearance order.
        let mut shard_of: HashMap<PairKey, usize> = HashMap::new();
        let mut shards: Vec<(PairKey, Vec<usize>)> = Vec::new();
        for (i, r) in resolved.iter().enumerate() {
            if let Ok(res) = r {
                let key = (res.machine, res.workload);
                let s = *shard_of.entry(key).or_insert_with(|| {
                    shards.push((key, Vec::new()));
                    shards.len() - 1
                });
                shards[s].1.push(i);
            }
        }

        let slots: Vec<Mutex<Option<EvalResponse>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();

        // Phase 1 — attach: one task per shard acquires (or builds) the
        // pair state through the cache, so a batch performs at most one
        // reference build per distinct pair whatever the capacity.
        let attachments: Vec<Mutex<Option<Arc<PairParts>>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();
        for_each_index(self.threads, shards.len(), |s| {
            let (key, members) = &shards[s];
            if let Some(parts) = self.attach_shard(*key, members, requests, &slots) {
                *attachments[s].lock().expect("no poisoned slots") = Some(parts);
            }
        });

        // Phase 2 — evaluate: one task per *request*, so skewed traffic
        // (many requests on one hot pair) still spreads across every
        // worker instead of serializing inside its shard.
        let tasks: Vec<(usize, usize)> = shards
            .iter()
            .enumerate()
            .filter(|(s, _)| {
                attachments[*s].lock().expect("no poisoned slots").is_some()
            })
            .flat_map(|(s, (_, members))| members.iter().map(move |&i| (s, i)))
            .collect();
        for_each_index(self.threads, tasks.len(), |t| {
            let (s, i) = tasks[t];
            let parts = attachments[s]
                .lock()
                .expect("no poisoned slots")
                .clone()
                .expect("attached shards only");
            let key = shards[s].0;
            let res = resolved[i].as_ref().expect("sharded requests resolved");
            let response = self.evaluate_request(&requests[i], res, key, &parts);
            *slots[i].lock().expect("no poisoned slots") = Some(response);
        });

        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        // Reassemble in request order; requests that never reached a
        // shard failed resolution.
        requests
            .iter()
            .zip(resolved)
            .zip(slots)
            .map(|((request, resolution), slot)| {
                match slot.into_inner().expect("no poisoned slots") {
                    Some(response) => response,
                    None => {
                        let error =
                            resolution.err().expect("unfilled slots are unresolved");
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        EvalResponse::err(request.clone(), error)
                    }
                }
            })
            .collect()
    }

    /// Serves a single request — batching degenerates gracefully, and the
    /// cache still amortizes builds across calls.
    pub fn serve_one(&self, request: &EvalRequest) -> EvalResponse {
        self.serve(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Serves a batch and serializes each response as one JSON line —
    /// the byte-identity unit of the determinism contract.
    pub fn serve_jsonl(&self, requests: &[EvalRequest]) -> String {
        let mut out = String::new();
        for response in self.serve(requests) {
            out.push_str(
                &serde_json::to_string(&response).expect("responses always serialize"),
            );
            out.push('\n');
        }
        out
    }

    /// A snapshot of the cumulative per-request counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the underlying cache counters (per-shard lookups,
    /// evictions, residency).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Attaches one pair shard to its (cached or freshly built) pair
    /// state, recording per-request hit/build accounting. On build
    /// failure, fills every member's slot with an error response and
    /// returns `None`.
    fn attach_shard(
        &self,
        key: PairKey,
        members: &[usize],
        requests: &[EvalRequest],
        slots: &[Mutex<Option<EvalResponse>>],
    ) -> Option<Arc<PairParts>> {
        let machine = &self.machines[key.0];
        let workload = &self.workloads[key.1];
        let built = self.cache.get_or_build(key, || {
            PairParts::collect(
                machine,
                workload.program,
                workload.run_config,
                self.workload_cfg(key.1),
            )
        });
        let (parts, hit) = match built {
            Ok(ok) => ok,
            Err(e) => {
                self.errors.fetch_add(members.len() as u64, Ordering::Relaxed);
                for &i in members {
                    *slots[i].lock().expect("no poisoned slots") = Some(EvalResponse::err(
                        requests[i].clone(),
                        format!("reference collection failed: {e}"),
                    ));
                }
                return None;
            }
        };
        // Per-request accounting: the build (if any) is charged to one
        // member; every other member shared existing state.
        let hits = if hit {
            members.len() as u64
        } else {
            self.builds.fetch_add(1, Ordering::Relaxed);
            members.len() as u64 - 1
        };
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        Some(parts)
    }

    /// Evaluates one request against its shard's shared pair state.
    fn evaluate_request(
        &self,
        request: &EvalRequest,
        res: &Resolved,
        key: PairKey,
        parts: &PairParts,
    ) -> EvalResponse {
        let machine = &self.machines[key.0];
        let workload = &self.workloads[key.1];
        let mut session =
            parts.session(machine, workload.program, workload.run_config.clone());
        let seeds: Vec<u64> = (0..request.effective_runs())
            .map(|r| request_seed(request.seed, r))
            .collect();
        match evaluate_method_with_seeds(&mut session, &res.instance, &res.label, &seeds) {
            Ok(stats) => EvalResponse::ok(request.clone(), stats),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                EvalResponse::err(request.clone(), format!("evaluation failed: {e}"))
            }
        }
    }

    /// Resolves a request's names against the catalog.
    fn resolve(&self, request: &EvalRequest) -> Result<Resolved, String> {
        let machine = self
            .machines
            .iter()
            .position(|m| m.name == request.machine)
            .ok_or_else(|| format!("unknown machine `{}`", request.machine))?;
        let workload = self
            .workloads
            .iter()
            .position(|w| w.name == request.workload)
            .ok_or_else(|| format!("unknown workload `{}`", request.workload))?;
        let kind = MethodKind::from_label(&request.method)
            .ok_or_else(|| format!("unknown method `{}`", request.method))?;
        let instance = kind.instantiate(&self.machines[machine], &self.opts).ok_or_else(|| {
            format!(
                "method `{}` unavailable on {}",
                request.method, self.machines[machine].name
            )
        })?;
        Ok(Resolved {
            machine,
            workload,
            label: request.method.clone(),
            instance,
        })
    }

    /// The workload's CFG, built on first use and shared thereafter.
    fn workload_cfg(&self, w: usize) -> Arc<Cfg> {
        self.cfgs[w]
            .get_or_init(|| Arc::new(Cfg::build(self.workloads[w].program)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_isa::asm::assemble;
    use ct_isa::Program;
    use ct_sim::RunConfig;

    fn kernel(n: u64) -> Program {
        assemble(
            "k",
            &format!(
                r#"
                .func main
                    movi r1, {n}
                top:
                    addi r2, r2, 1
                    subi r1, r1, 1
                    brnz r1, top
                    halt
                .endfunc
            "#
            ),
        )
        .unwrap()
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let program = kernel(20_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge(), MachineModel::westmere()];
        let requests = vec![
            EvalRequest::new("Westmere (Xeon X5650)", "k", "classic", 1, 1),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "lbr", 1, 2),
            EvalRequest::new("Westmere (Xeon X5650)", "k", "precise", 2, 3),
            EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 1, 4),
        ];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(4);
        let responses = service.serve(&requests);
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(&response.request, request);
            assert!(response.is_ok(), "{:?}", response.error);
        }
        assert_eq!(responses[2].stats.as_ref().unwrap().runs.len(), 2);
        // 4 requests over 2 pairs: 2 builds, 2 hits.
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn bad_requests_become_error_responses() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::magny_cours()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .threads(2);
        let requests = vec![
            EvalRequest::new("No Such Machine", "k", "classic", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "nope", "classic", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "frobnicate", 1, 1),
            // LBR does not exist on AMD: resolvable names, unavailable method.
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "lbr", 1, 1),
            EvalRequest::new("Magny-Cours (Opteron 6164 HE)", "k", "classic", 1, 1),
        ];
        let responses = service.serve(&requests);
        assert!(responses[0].error.as_ref().unwrap().contains("unknown machine"));
        assert!(responses[1].error.as_ref().unwrap().contains("unknown workload"));
        assert!(responses[2].error.as_ref().unwrap().contains("unknown method"));
        assert!(responses[3].error.as_ref().unwrap().contains("unavailable"));
        assert!(responses[4].is_ok());
        assert_eq!(service.stats().errors, 4);
    }

    #[test]
    fn request_seeds_are_stable_and_distinct() {
        assert_eq!(request_seed(7, 0), request_seed(7, 0));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16 {
            for run in 0..8 {
                assert!(seen.insert(request_seed(seed, run)));
            }
        }
    }

    #[test]
    fn zero_runs_are_served_as_one() {
        let program = kernel(5_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::ivy_bridge()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast());
        let response =
            service.serve_one(&EvalRequest::new("Ivy Bridge (Xeon E3-1265L)", "k", "classic", 0, 9));
        assert_eq!(response.stats.unwrap().runs.len(), 1);
    }

    #[test]
    fn identical_requests_get_identical_responses_across_batches() {
        let program = kernel(10_000);
        let run_config = RunConfig::default();
        let workloads = [WorkloadSpec {
            name: "k",
            program: &program,
            run_config: &run_config,
        }];
        let machines = [MachineModel::westmere()];
        let service = EvalService::new(&machines, &workloads)
            .method_options(MethodOptions::fast())
            .cache_capacity(1);
        let request = EvalRequest::new("Westmere (Xeon X5650)", "k", "precise+prime+rand", 3, 11);
        let a = serde_json::to_string(&service.serve_one(&request)).unwrap();
        let b = serde_json::to_string(&service.serve_one(&request)).unwrap();
        assert_eq!(a, b, "replayed request must be byte-identical");
    }
}
